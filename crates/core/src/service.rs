//! `FirehoseService` — the whole multi-user pipeline behind one object.
//!
//! The lower layers are deliberately à la carte: engines, strategies, the
//! ingest guard, checkpointing and observability each stand alone. A real
//! deployment always wires the same five pieces together, so this module
//! packages them behind a builder-constructed facade that owns the author
//! graph, the subscription table, the chosen M-SPSD strategy, an optional
//! [`IngestGuard`], an optional [`CheckpointManager`] and optional metric
//! registration:
//!
//! ```
//! use firehose_core::prelude::*;
//! use firehose_graph::UndirectedGraph;
//! use firehose_stream::Post;
//!
//! let graph = UndirectedGraph::from_edges(3, [(0, 1)]);
//! let subs = Subscriptions::new(3, [vec![0, 1]]).unwrap();
//!
//! let mut service = FirehoseService::builder(&graph, subs)
//!     .strategy(StrategyKind::Shared)
//!     .build()
//!     .unwrap();
//!
//! let mut delivered = Vec::new();
//! service
//!     .process(Post::new(1, 0, 0, "hello".into()), |post, decision| {
//!         if !decision.delivered_to.is_empty() {
//!             delivered.push(post.id);
//!         }
//!     })
//!     .unwrap();
//! service.subscribe(0, 2).unwrap(); // live churn: no rebuild, no restart
//! assert_eq!(delivered, [1]);
//! ```
//!
//! [`process`](FirehoseService::process) is the service entry point: posts
//! pass through the guard (when configured), every admitted post is offered
//! to the strategy with a reused decision buffer, and checkpoints are taken
//! at the configured cadence. The churn operations forward to the strategy's
//! live [`MultiDiversifier`] churn API, and [`ChurnOp`] gives those
//! operations a text form so traces can be recorded, replayed
//! (`firehose run --churn-trace`) and generated (`firehose_datagen::churn`).

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use firehose_graph::UndirectedGraph;
use firehose_stream::{
    AuthorId, GuardConfig, IngestGuard, Post, QuarantineStats, ShardFaultPlan, Timestamp,
};

use crate::checkpoint::{
    restore_latest_valid_multi, CheckpointManager, CheckpointPolicy, Manifest, RestoreError,
};
use crate::config::{ChurnConfig, EngineConfig, MemoryMode};
use crate::engine::AlgorithmKind;
use crate::metrics::EngineMetrics;
use crate::multi::{
    BuildError, ChurnStats, IndependentMulti, MultiDecision, MultiDiversifier, ParallelShared,
    ShardFailure, ShardedMulti, SharedMulti, SubscriptionError, Subscriptions, UserId,
};

/// Consecutive restore+replay attempts before a heal gives up. Each failed
/// attempt consumes at least one worker fault, so only a continuous crash
/// storm exhausts this.
const MAX_HEAL_ATTEMPTS: usize = 64;

// ---------------------------------------------------------------------
// Strategy selection.
// ---------------------------------------------------------------------

/// Which M-SPSD strategy the service runs (Section 5's `M_*` / `S_*`, plus
/// the sharded parallel extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// One engine per user ([`IndependentMulti`], `M_*`).
    Independent,
    /// One engine per distinct connected component ([`SharedMulti`], `S_*`).
    Shared,
    /// [`SharedMulti`]'s decomposition spread across worker threads
    /// ([`ParallelShared`], `P_*`).
    Parallel {
        /// Worker thread count (must be ≥ 1).
        threads: usize,
    },
    /// Persistent shard workers fed by SPSC ingest rings
    /// ([`ShardedMulti`], `Sh_*`): engines stay resident on their shard
    /// between posts, so single-post `process` calls parallelize too.
    Sharded {
        /// Shard worker count (must be ≥ 1).
        shards: usize,
    },
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Independent => f.write_str("independent"),
            Self::Shared => f.write_str("shared"),
            Self::Parallel { threads } => write!(f, "parallel({threads})"),
            Self::Sharded { shards } => write!(f, "sharded({shards})"),
        }
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    /// `independent` | `shared` | `parallel` | `parallel:N` | `sharded` |
    /// `sharded:N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let cores = || std::thread::available_parallelism().map_or(4, |n| n.get());
        match s {
            "independent" | "m" => Ok(Self::Independent),
            "shared" | "s" => Ok(Self::Shared),
            "parallel" | "p" => Ok(Self::Parallel { threads: cores() }),
            "sharded" | "sh" => Ok(Self::Sharded { shards: cores() }),
            other => {
                if let Some(n) = other.strip_prefix("parallel:") {
                    n.parse()
                        .map(|threads| Self::Parallel { threads })
                        .map_err(|e| format!("bad thread count in {other:?}: {e}"))
                } else if let Some(n) = other.strip_prefix("sharded:") {
                    n.parse()
                        .map(|shards| Self::Sharded { shards })
                        .map_err(|e| format!("bad shard count in {other:?}: {e}"))
                } else {
                    Err(format!(
                        "unknown strategy {other:?} (want independent|shared|parallel[:N]|sharded[:N])"
                    ))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Overload control and rate limiting.
// ---------------------------------------------------------------------

/// What the service does when an ingest burst overflows the admission
/// queue (see [`OverloadConfig`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Admit everything; the call simply takes as long as it takes, so
    /// backpressure falls on the caller. The default.
    #[default]
    Block,
    /// Drop the **oldest** queued post to make room for the new one:
    /// freshness wins, which matches the diversification model (an old
    /// uncovered post is less valuable than a fresh one). Shed posts are
    /// counted in [`OverloadStats::shed`].
    ShedOldest,
    /// Refuse the new post with [`ServiceError::Overloaded`]; the caller
    /// decides whether to retry, buffer, or drop.
    Reject,
}

impl std::fmt::Display for OverloadPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Block => f.write_str("block"),
            Self::ShedOldest => f.write_str("shed"),
            Self::Reject => f.write_str("reject"),
        }
    }
}

impl std::str::FromStr for OverloadPolicy {
    type Err = String;

    /// `block` | `shed` (or `shed-oldest`) | `reject`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(Self::Block),
            "shed" | "shed-oldest" => Ok(Self::ShedOldest),
            "reject" => Ok(Self::Reject),
            other => Err(format!(
                "unknown overload policy {other:?} (want block|shed|reject)"
            )),
        }
    }
}

/// Admission-queue configuration: every post entering
/// [`FirehoseService::process`] / [`process_batch`](FirehoseService::process_batch)
/// passes through a bounded queue ahead of the strategy; `policy` decides
/// what happens when one call's burst exceeds `capacity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Ring-full behavior.
    pub policy: OverloadPolicy,
    /// Maximum queued posts per ingest burst.
    pub capacity: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            policy: OverloadPolicy::Block,
            capacity: 4096,
        }
    }
}

/// Per-author token-bucket rate limit, measured in **stream time** (post
/// timestamps), so admission decisions are deterministic and replayable —
/// the same stream always sheds the same posts regardless of wall-clock
/// speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Sustained tokens-per-second refill rate.
    pub posts_per_sec: f64,
    /// Bucket depth: the largest instantaneous burst admitted.
    pub burst: f64,
}

impl RateLimitConfig {
    /// A limit of `posts_per_sec` sustained with a 2-second burst
    /// allowance (at least one post).
    pub fn per_author(posts_per_sec: f64) -> Self {
        Self {
            posts_per_sec,
            burst: (2.0 * posts_per_sec).max(1.0),
        }
    }
}

/// Counters for posts the service refused to hand to the strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadStats {
    /// Queued posts dropped by [`OverloadPolicy::ShedOldest`].
    pub shed: u64,
    /// Posts refused by [`OverloadPolicy::Reject`].
    pub rejected: u64,
    /// Posts dropped by the per-author rate limiter.
    pub rate_limited: u64,
}

/// Deterministic stream-time token bucket per author.
struct RateLimiter {
    config: RateLimitConfig,
    buckets: HashMap<AuthorId, Bucket>,
}

struct Bucket {
    tokens: f64,
    last: Timestamp,
}

impl RateLimiter {
    fn new(config: RateLimitConfig) -> Self {
        Self {
            config,
            buckets: HashMap::new(),
        }
    }

    /// Spend one token for `author` at stream time `now`; `false` means the
    /// post is over the limit. Out-of-order timestamps refill nothing but
    /// never panic (the guard, when configured, enforces ordering anyway).
    fn admit(&mut self, author: AuthorId, now: Timestamp) -> bool {
        let bucket = self.buckets.entry(author).or_insert(Bucket {
            tokens: self.config.burst,
            last: now,
        });
        let elapsed_ms = now.saturating_sub(bucket.last);
        bucket.tokens = (bucket.tokens + elapsed_ms as f64 / 1000.0 * self.config.posts_per_sec)
            .min(self.config.burst);
        bucket.last = bucket.last.max(now);
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Cumulative failure-recovery counters for a supervised service; see
/// [`FirehoseService::resilience_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Shard-worker respawns (the strategy's lifetime total).
    pub restarts: u64,
    /// Completed restore+replay recovery episodes.
    pub recoveries: u64,
    /// In-flight offer/sweep requests that died with workers.
    pub lost_offers: u64,
    /// Posts whose original offers were cut short by a failure (all were
    /// subsequently replayed when supervision is on).
    pub lost_posts: u64,
    /// Posts re-offered from the replay log during recoveries.
    pub replayed_posts: u64,
}

/// One entry of the since-last-checkpoint replay log.
enum ReplayEntry {
    Post(Post),
    Churn(ChurnOp),
}

// ---------------------------------------------------------------------
// Churn operations and traces.
// ---------------------------------------------------------------------

/// One live subscription-management operation, with a stable text form for
/// trace files (`subscribe 3 17`, `add-user 1,5,9`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// `subscribe <user> <author>`.
    Subscribe(UserId, AuthorId),
    /// `unsubscribe <user> <author>`.
    Unsubscribe(UserId, AuthorId),
    /// `add-user <a1,a2,...>` (or `add-user -` for an empty set).
    AddUser(Vec<AuthorId>),
    /// `remove-user <user>`.
    RemoveUser(UserId),
}

impl std::fmt::Display for ChurnOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Subscribe(u, a) => write!(f, "subscribe\t{u}\t{a}"),
            Self::Unsubscribe(u, a) => write!(f, "unsubscribe\t{u}\t{a}"),
            Self::AddUser(authors) if authors.is_empty() => f.write_str("add-user\t-"),
            Self::AddUser(authors) => {
                f.write_str("add-user\t")?;
                for (i, a) in authors.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Self::RemoveUser(u) => write!(f, "remove-user\t{u}"),
        }
    }
}

impl std::str::FromStr for ChurnOp {
    type Err = String;

    /// Parse the [`Display`](std::fmt::Display) form; fields split on any
    /// run of tabs or spaces.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut fields = s.split_ascii_whitespace();
        let op = fields.next().ok_or("empty churn op")?;
        let mut arg = |name: &str| {
            fields
                .next()
                .ok_or_else(|| format!("{op}: missing <{name}>"))
        };
        let parsed = match op {
            "subscribe" | "unsubscribe" => {
                let u = parse_num(arg("user")?, "user")?;
                let a = parse_num(arg("author")?, "author")?;
                if op == "subscribe" {
                    Self::Subscribe(u, a)
                } else {
                    Self::Unsubscribe(u, a)
                }
            }
            "add-user" => {
                let list = arg("authors")?;
                let authors = if list == "-" {
                    Vec::new()
                } else {
                    list.split(',')
                        .map(|a| parse_num(a, "author"))
                        .collect::<Result<_, _>>()?
                };
                Self::AddUser(authors)
            }
            "remove-user" => Self::RemoveUser(parse_num(arg("user")?, "user")?),
            other => return Err(format!("unknown churn op {other:?}")),
        };
        match fields.next() {
            Some(extra) => Err(format!("{op}: unexpected trailing field {extra:?}")),
            None => Ok(parsed),
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad <{name}> {s:?}: {e}"))
}

/// A churn operation scheduled at a stream position: apply `op` once
/// `after_posts` posts have been offered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedOp {
    /// Apply after this many posts of the (admitted) stream.
    pub after_posts: u64,
    /// The operation.
    pub op: ChurnOp,
}

impl std::fmt::Display for TracedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\t{}", self.after_posts, self.op)
    }
}

/// Parse a churn-trace file: one [`TracedOp`] per line (`<after_posts>
/// <op> <args...>`), `#` comments and blank lines ignored. Ops are returned
/// sorted by position (stable, so same-position ops keep file order).
pub fn read_churn_trace(reader: impl BufRead) -> Result<Vec<TracedOp>, String> {
    let mut ops = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = (|| {
            let (pos, op) = line
                .split_once(|c: char| c.is_ascii_whitespace())
                .ok_or("missing churn op after position")?;
            Ok(TracedOp {
                after_posts: parse_num(pos, "after_posts")?,
                op: op.parse()?,
            })
        })();
        ops.push(parsed.map_err(|e: String| format!("line {}: {e}", lineno + 1))?);
    }
    ops.sort_by_key(|t| t.after_posts);
    Ok(ops)
}

/// Write a churn trace in the format [`read_churn_trace`] parses.
pub fn write_churn_trace(ops: &[TracedOp], mut w: impl Write) -> io::Result<()> {
    for op in ops {
        writeln!(w, "{op}")?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Errors constructing or operating a [`FirehoseService`].
#[derive(Debug)]
pub enum ServiceError {
    /// The strategy rejected its configuration.
    Build(BuildError),
    /// Checkpoint directory I/O failed.
    Io(io::Error),
    /// Restoring from the checkpoint directory failed.
    Restore(RestoreError),
    /// A checkpoint/restore operation was requested but the service was
    /// built without [`checkpoints`](FirehoseServiceBuilder::checkpoints).
    NoCheckpointDir,
    /// A shard worker died (panic or watchdog-detected stall) and the
    /// service could not transparently recover — either it runs without
    /// checkpoints (nothing to replay from) or the heal loop exhausted
    /// its retry budget. The worker itself was already respawned.
    ShardFailed {
        /// The shard whose worker died first in the episode.
        shard: usize,
        /// The strategy's lifetime worker-respawn count.
        restarts: u64,
    },
    /// The admission queue is full and the overload policy is
    /// [`OverloadPolicy::Reject`].
    Overloaded {
        /// The configured queue capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "cannot build strategy: {e}"),
            Self::Io(e) => write!(f, "checkpoint I/O: {e}"),
            Self::Restore(e) => write!(f, "restore failed: {e}"),
            Self::NoCheckpointDir => f.write_str("service built without a checkpoint directory"),
            Self::ShardFailed { shard, restarts } => write!(
                f,
                "shard {shard} worker failed (respawned; {restarts} lifetime restarts); \
                 state replay unavailable"
            ),
            Self::Overloaded { capacity } => {
                write!(
                    f,
                    "admission queue full ({capacity} posts) and policy is reject"
                )
            }
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<BuildError> for ServiceError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<RestoreError> for ServiceError {
    fn from(e: RestoreError) -> Self {
        Self::Restore(e)
    }
}

// ---------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------

/// Builder for [`FirehoseService`]; start from
/// [`FirehoseService::builder`].
pub struct FirehoseServiceBuilder<'g> {
    graph: &'g UndirectedGraph,
    subscriptions: Subscriptions,
    strategy: StrategyKind,
    algorithm: AlgorithmKind,
    config: EngineConfig,
    churn: ChurnConfig,
    guard: Option<GuardConfig>,
    checkpoints: Option<(PathBuf, CheckpointPolicy)>,
    obs: Option<&'g firehose_obs::Registry>,
    overload: OverloadConfig,
    rate_limit: Option<RateLimitConfig>,
    watchdog: Option<Duration>,
    chaos: ShardFaultPlan,
}

impl<'g> FirehoseServiceBuilder<'g> {
    /// Pick the multi-user strategy (default [`StrategyKind::Shared`]).
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Shorthand for [`StrategyKind::Sharded`]: run the decomposition on
    /// `shards` persistent worker threads.
    pub fn shards(self, shards: usize) -> Self {
        self.strategy(StrategyKind::Sharded { shards })
    }

    /// Pick the per-component engine algorithm (default
    /// [`AlgorithmKind::UniBin`]).
    pub fn algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set thresholds/fingerprinting (default
    /// [`EngineConfig::paper_defaults`]).
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Pick the coverage memory mode for every component engine (default
    /// [`MemoryMode::Exact`]). Shorthand for rewriting the engine config's
    /// `memory` field.
    pub fn memory(mut self, memory: MemoryMode) -> Self {
        self.config.memory = memory;
        self
    }

    /// Set churn behavior (default [`ChurnConfig::default`]: warm starts on).
    pub fn churn_config(mut self, churn: ChurnConfig) -> Self {
        self.churn = churn;
        self
    }

    /// Screen incoming posts through an [`IngestGuard`] before they reach
    /// the strategy. The guard's author-universe check is filled in from the
    /// graph unless the config already set one.
    pub fn guard(mut self, config: GuardConfig) -> Self {
        self.guard = Some(config);
        self
    }

    /// Enable crash-safe checkpoints in `dir` at the given cadence.
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some((dir.into(), policy));
        self
    }

    /// Register latency/throughput metrics with an observability registry.
    pub fn observability(mut self, registry: &'g firehose_obs::Registry) -> Self {
        self.obs = Some(registry);
        self
    }

    /// Configure the admission queue's overload behavior (default:
    /// [`OverloadPolicy::Block`] at 4096 posts).
    pub fn overload(mut self, config: OverloadConfig) -> Self {
        self.overload = config;
        self
    }

    /// Enable the deterministic per-author token-bucket rate limiter.
    pub fn rate_limit(mut self, config: RateLimitConfig) -> Self {
        self.rate_limit = Some(config);
        self
    }

    /// Stall-watchdog deadline for [`StrategyKind::Sharded`] (forwarded to
    /// [`ShardedBuilder::watchdog`](crate::multi::ShardedBuilder::watchdog));
    /// ignored by other strategies.
    pub fn watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = Some(deadline);
        self
    }

    /// Schedule deterministic shard-worker chaos faults for
    /// [`StrategyKind::Sharded`] (forwarded to
    /// [`ShardedBuilder::chaos`](crate::multi::ShardedBuilder::chaos));
    /// ignored by other strategies. For resilience tests and benches.
    pub fn chaos(mut self, plan: ShardFaultPlan) -> Self {
        self.chaos = plan;
        self
    }

    /// Construct the service: builds the strategy, opens the checkpoint
    /// directory, and arms the guard.
    pub fn build(self) -> Result<FirehoseService, ServiceError> {
        let warm = self.churn.warm_start;
        let memory = self.config.memory;
        let mut multi: Box<dyn MultiDiversifier + Send> = match self.strategy {
            StrategyKind::Independent => {
                let mut m = IndependentMulti::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
            StrategyKind::Shared => {
                let mut m = SharedMulti::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
            StrategyKind::Parallel { threads } => {
                let mut m = ParallelShared::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .threads(threads)
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
            StrategyKind::Sharded { shards } => {
                let mut b = ShardedMulti::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .shards(shards)
                .warm_start(warm)
                .chaos(self.chaos);
                if let Some(deadline) = self.watchdog {
                    b = b.watchdog(deadline);
                }
                let mut m = b.build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
        };
        let guard = self.guard.map(|mut config| {
            if config.author_count.is_none() {
                config.author_count = Some(self.graph.node_count() as u32);
            }
            IngestGuard::new(config)
        });
        let mut manager = match self.checkpoints {
            Some((dir, policy)) => Some(CheckpointManager::new(dir, policy)?),
            None => None,
        };
        // Sharded + checkpoints = supervised: shard failures are healed by
        // restoring the last checkpoint and replaying everything since.
        // Write the baseline immediately so a failure before the first
        // cadence-driven checkpoint still has something to restore.
        let supervise = matches!(self.strategy, StrategyKind::Sharded { .. }) && manager.is_some();
        if supervise {
            if let Some(mgr) = &mut manager {
                // A chaos fault can kill a worker during the initial
                // deploys or this very save; heal (restart + rebuild from
                // the registry — no posts precede the baseline) and retry.
                let mut baseline = mgr.save_multi(multi.as_ref());
                for _ in 0..MAX_HEAL_ATTEMPTS {
                    if baseline.is_ok() || multi.take_shard_failure().is_none() {
                        break;
                    }
                    baseline = mgr.save_multi(multi.as_ref());
                }
                baseline?;
            }
        }
        Ok(FirehoseService {
            multi,
            guard,
            manager,
            strategy: self.strategy,
            memory,
            admitted: Vec::new(),
            decision: MultiDecision::default(),
            overload: self.overload,
            limiter: self.rate_limit.map(RateLimiter::new),
            overload_stats: OverloadStats::default(),
            queue: VecDeque::new(),
            supervise,
            replay: Vec::new(),
            delivered: 0,
            resilience: ResilienceStats::default(),
            recovery_ns: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------

/// One long-running diversification service: graph + subscriptions +
/// strategy + guard + checkpoints + metrics behind a single object. See the
/// [module docs](self) for the lifecycle.
pub struct FirehoseService {
    multi: Box<dyn MultiDiversifier + Send>,
    guard: Option<IngestGuard>,
    manager: Option<CheckpointManager>,
    strategy: StrategyKind,
    /// Coverage-store memory mode every component engine was built with.
    memory: MemoryMode,
    /// Guard output scratch, reused across `process` calls.
    admitted: Vec<Post>,
    /// Decision scratch, reused across `process` calls (the
    /// `offer_into` buffer-reuse path).
    decision: MultiDecision,
    /// Admission-queue overload configuration.
    overload: OverloadConfig,
    /// Optional per-author token-bucket rate limiter.
    limiter: Option<RateLimiter>,
    /// Shed / rejected / rate-limited counters.
    overload_stats: OverloadStats,
    /// Bounded admission queue between ingest and the strategy.
    queue: VecDeque<Post>,
    /// Whether shard failures are healed by checkpoint restore + replay
    /// (sharded strategy with a checkpoint directory).
    supervise: bool,
    /// Every post offered and churn op applied since the last durable
    /// checkpoint, in order; cleared when a checkpoint lands.
    replay: Vec<ReplayEntry>,
    /// How many [`ReplayEntry::Post`] entries have had their decisions
    /// delivered to a sink (replays skip these to keep exactly-once
    /// delivery).
    delivered: usize,
    /// Cumulative recovery counters.
    resilience: ResilienceStats,
    /// Wall-clock latency of each completed recovery episode.
    recovery_ns: Vec<u64>,
}

impl FirehoseService {
    /// Start building a service over an author-similarity graph and a
    /// subscription table.
    pub fn builder(
        graph: &UndirectedGraph,
        subscriptions: Subscriptions,
    ) -> FirehoseServiceBuilder<'_> {
        FirehoseServiceBuilder {
            graph,
            subscriptions,
            strategy: StrategyKind::Shared,
            algorithm: AlgorithmKind::UniBin,
            config: EngineConfig::paper_defaults(),
            churn: ChurnConfig::default(),
            guard: None,
            checkpoints: None,
            obs: None,
            overload: OverloadConfig::default(),
            rate_limit: None,
            watchdog: None,
            chaos: ShardFaultPlan::none(),
        }
    }

    /// Feed one post through the full pipeline: rate limiter, admission
    /// queue, guard (quarantine / clamp / reorder), strategy, checkpoint
    /// cadence. `sink` is called for every post the guard admits, with the
    /// per-user delivery decision — possibly zero times (rate-limited,
    /// quarantined or buffered for reorder) or several (a reorder release).
    /// The decision buffer is reused; copy out what you keep.
    ///
    /// On a supervised service (sharded strategy + checkpoints), a shard
    /// failure inside this call is healed transparently: the last
    /// checkpoint is restored and every post/churn op since is replayed,
    /// with exactly-once sink delivery. Unsupervised sharded services
    /// surface [`ServiceError::ShardFailed`] instead (the workers were
    /// still respawned; processing can continue on the degraded state).
    pub fn process(
        &mut self,
        post: Post,
        mut sink: impl FnMut(&Post, &MultiDecision),
    ) -> Result<(), ServiceError> {
        self.admit(post)?;
        self.run_queue(false, &mut sink)
    }

    /// Feed a batch of posts through the pipeline in one call. Semantically
    /// identical to calling [`process`](Self::process) per post, but the
    /// admitted posts reach the strategy via
    /// [`offer_batch`](MultiDiversifier::offer_batch), which pipelined
    /// strategies ([`StrategyKind::Sharded`]) overlap across shards, and the
    /// checkpoint cadence is polled once at the end instead of per post.
    /// The admission queue's overload policy applies across the whole
    /// burst; with [`OverloadPolicy::Reject`] the posts up to the first
    /// refusal are still processed.
    pub fn process_batch(
        &mut self,
        posts: impl IntoIterator<Item = Post>,
        mut sink: impl FnMut(&Post, &MultiDecision),
    ) -> Result<(), ServiceError> {
        let mut refused = None;
        for post in posts {
            if let Err(e) = self.admit(post) {
                refused = Some(e);
                break;
            }
        }
        self.run_queue(true, &mut sink)?;
        match refused {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Release any posts still held by the guard's reorder buffer (call at
    /// end of stream). A no-op without a reorder guard.
    pub fn flush(
        &mut self,
        mut sink: impl FnMut(&Post, &MultiDecision),
    ) -> Result<(), ServiceError> {
        if self.guard.is_none() {
            return Ok(());
        }
        let mut admitted = std::mem::take(&mut self.admitted);
        admitted.clear();
        if let Some(guard) = &mut self.guard {
            guard.flush_into(&mut admitted);
        }
        let result = self.offer_admitted(&mut admitted, false, &mut sink);
        self.admitted = admitted;
        result?;
        self.maybe_checkpoint()
    }

    /// Rate-limit and enqueue one post under the overload policy.
    fn admit(&mut self, post: Post) -> Result<(), ServiceError> {
        if let Some(limiter) = &mut self.limiter {
            if !limiter.admit(post.author, post.timestamp) {
                self.overload_stats.rate_limited += 1;
                return Ok(());
            }
        }
        if self.queue.len() >= self.overload.capacity {
            match self.overload.policy {
                // Backpressure falls on the caller: the synchronous drain
                // in `run_queue` is the "block".
                OverloadPolicy::Block => {}
                OverloadPolicy::ShedOldest => {
                    self.queue.pop_front();
                    self.overload_stats.shed += 1;
                }
                OverloadPolicy::Reject => {
                    self.overload_stats.rejected += 1;
                    return Err(ServiceError::Overloaded {
                        capacity: self.overload.capacity,
                    });
                }
            }
        }
        self.queue.push_back(post);
        Ok(())
    }

    /// Drain the admission queue through the guard and offer everything
    /// admitted, then poll the checkpoint cadence.
    fn run_queue(
        &mut self,
        batch: bool,
        sink: &mut dyn FnMut(&Post, &MultiDecision),
    ) -> Result<(), ServiceError> {
        let mut admitted = std::mem::take(&mut self.admitted);
        admitted.clear();
        while let Some(post) = self.queue.pop_front() {
            match &mut self.guard {
                None => admitted.push(post),
                Some(guard) => {
                    let author = post.author;
                    if guard.offer_into(post, &mut admitted).is_some() {
                        // Attribute the quarantine to the shard that owns
                        // the author (a per-shard gauge on sharded runs).
                        self.multi.note_quarantined(author);
                    }
                }
            }
        }
        let result = self.offer_admitted(&mut admitted, batch, sink);
        self.admitted = admitted;
        result?;
        self.maybe_checkpoint()
    }

    /// Offer admitted posts to the strategy — per post (`batch == false`,
    /// the reused-buffer latency path) or via `offer_batch` — recording the
    /// replay log and healing any shard failure before its fallout reaches
    /// the sink.
    fn offer_admitted(
        &mut self,
        admitted: &mut Vec<Post>,
        batch: bool,
        sink: &mut dyn FnMut(&Post, &MultiDecision),
    ) -> Result<(), ServiceError> {
        if self.supervise {
            for post in admitted.iter() {
                self.replay.push(ReplayEntry::Post(post.clone()));
            }
        }
        if batch {
            let decisions = self.multi.offer_batch(admitted);
            if let Some(failure) = self.multi.take_shard_failure() {
                // Some of the batch's decisions are empty placeholders for
                // posts that died mid-flight; discard them all and let the
                // replay recompute and deliver every undelivered decision.
                admitted.clear();
                return self.heal(failure, sink);
            }
            for (post, decision) in admitted.iter().zip(&decisions) {
                sink(post, decision);
            }
            if self.supervise {
                self.delivered += admitted.len();
            }
            admitted.clear();
        } else {
            for post in admitted.drain(..) {
                self.multi.offer_into(&post, &mut self.decision);
                if let Some(failure) = self.multi.take_shard_failure() {
                    // The failure may predate this post (e.g. died during
                    // churn); either way the replay recomputes and delivers
                    // this post's decision from restored state.
                    self.heal(failure, sink)?;
                    continue;
                }
                sink(&post, &self.decision);
                if self.supervise {
                    self.delivered += 1;
                }
            }
        }
        Ok(())
    }

    /// Fold one failure episode into the stats and — when supervised —
    /// restore the last checkpoint and replay everything since, delivering
    /// only decisions the sink has not yet seen. Unsupervised services get
    /// the typed error instead.
    fn heal(
        &mut self,
        failure: ShardFailure,
        sink: &mut dyn FnMut(&Post, &MultiDecision),
    ) -> Result<(), ServiceError> {
        let shard = failure.shard;
        let mut last_restarts = failure.restarts;
        self.note_failure(&failure);
        if !self.supervise {
            return Err(ServiceError::ShardFailed {
                shard,
                restarts: last_restarts,
            });
        }
        let t0 = Instant::now();
        for _ in 0..MAX_HEAL_ATTEMPTS {
            self.restore_latest()?;
            // A scheduled fault can fire during the restore's own
            // redeploy, leaving freshly rebuilt (empty) engines behind the
            // restored registry — retry from the checkpoint.
            if let Some(f) = self.multi.take_shard_failure() {
                last_restarts = f.restarts;
                self.note_failure(&f);
                continue;
            }
            match self.replay_log(sink)? {
                Some(f) => {
                    // Another worker died mid-replay; loop back to a fresh
                    // restore (the replay log is intact, `delivered` kept
                    // everything exactly-once).
                    last_restarts = f.restarts;
                    self.note_failure(&f);
                }
                None => {
                    self.resilience.recoveries += 1;
                    self.recovery_ns.push(t0.elapsed().as_nanos() as u64);
                    return Ok(());
                }
            }
        }
        Err(ServiceError::ShardFailed {
            shard,
            restarts: last_restarts,
        })
    }

    fn note_failure(&mut self, f: &ShardFailure) {
        self.resilience.restarts = self.resilience.restarts.max(f.restarts);
        self.resilience.lost_offers += f.lost_offers;
        self.resilience.lost_posts += f.lost_posts;
    }

    /// Re-run the replay log against freshly restored state. Returns
    /// `Ok(None)` on a clean replay, `Ok(Some(failure))` if a worker died
    /// mid-replay (caller restores and retries).
    fn replay_log(
        &mut self,
        sink: &mut dyn FnMut(&Post, &MultiDecision),
    ) -> Result<Option<ShardFailure>, ServiceError> {
        let entries = std::mem::take(&mut self.replay);
        let mut post_idx = 0usize;
        let mut interrupted = None;
        for entry in &entries {
            match entry {
                ReplayEntry::Churn(op) => {
                    // The op succeeded against this same state the first
                    // time; a re-application error would mean checkpoint
                    // divergence, which load_state already validates.
                    let _ = match op {
                        ChurnOp::Subscribe(u, a) => self.multi.subscribe(*u, *a).map(|_| ()),
                        ChurnOp::Unsubscribe(u, a) => self.multi.unsubscribe(*u, *a).map(|_| ()),
                        ChurnOp::AddUser(authors) => self.multi.add_user(authors).map(|_| ()),
                        ChurnOp::RemoveUser(u) => self.multi.remove_user(*u),
                    };
                }
                ReplayEntry::Post(post) => {
                    self.multi.offer_into(post, &mut self.decision);
                    self.resilience.replayed_posts += 1;
                    if let Some(f) = self.multi.take_shard_failure() {
                        interrupted = Some(f);
                        break;
                    }
                    if post_idx >= self.delivered {
                        sink(post, &self.decision);
                        self.delivered += 1;
                    }
                    post_idx += 1;
                }
            }
        }
        self.replay = entries;
        Ok(interrupted)
    }

    /// Poll the checkpoint cadence; a completed checkpoint makes the
    /// replay log obsolete. A save refused by a shard failure heals and
    /// retries once.
    fn maybe_checkpoint(&mut self) -> Result<(), ServiceError> {
        if self.manager.is_none() {
            return Ok(());
        }
        // A shard kill can land on the checkpoint's own save requests, so
        // heal and retry until a save goes through (or the error is not a
        // shard death).
        let mut last = ShardFailure::default();
        for _ in 0..MAX_HEAL_ATTEMPTS {
            let mgr = self.manager.as_mut().expect("checked above");
            match mgr.maybe_save_multi(self.multi.as_ref()) {
                Ok(saved) => {
                    if saved.is_some() {
                        self.note_checkpointed();
                    }
                    return Ok(());
                }
                Err(e) => {
                    let Some(failure) = self.multi.take_shard_failure() else {
                        return Err(e.into());
                    };
                    last = failure;
                    // Every replay entry is already delivered at this
                    // point, so the heal's replay never re-sinks.
                    self.heal(failure, &mut |_, _| {})?;
                }
            }
        }
        Err(ServiceError::ShardFailed {
            shard: last.shard,
            restarts: self.resilience.restarts,
        })
    }

    fn note_checkpointed(&mut self) {
        if self.supervise {
            self.replay.clear();
            self.delivered = 0;
        }
    }

    /// Offer a post directly to the strategy, bypassing guard and
    /// checkpoint cadence. For pre-sanitized streams and tests.
    pub fn offer(&mut self, post: &Post) -> MultiDecision {
        self.multi.offer(post)
    }

    // --- live churn -------------------------------------------------

    /// User `user` starts following `author`; `Ok(false)` if already
    /// subscribed (a no-op).
    pub fn subscribe(&mut self, user: UserId, author: AuthorId) -> Result<bool, SubscriptionError> {
        let result = self.multi.subscribe(user, author);
        if result.is_ok() {
            self.record_churn(ChurnOp::Subscribe(user, author));
        }
        result
    }

    /// User `user` stops following `author`; `Ok(false)` if not subscribed
    /// (a no-op).
    pub fn unsubscribe(
        &mut self,
        user: UserId,
        author: AuthorId,
    ) -> Result<bool, SubscriptionError> {
        let result = self.multi.unsubscribe(user, author);
        if result.is_ok() {
            self.record_churn(ChurnOp::Unsubscribe(user, author));
        }
        result
    }

    /// Register a new user with an initial subscription set; returns her id.
    pub fn add_user(
        &mut self,
        authors: impl IntoIterator<Item = AuthorId>,
    ) -> Result<UserId, SubscriptionError> {
        let authors: Vec<AuthorId> = authors.into_iter().collect();
        let result = self.multi.add_user(&authors);
        if result.is_ok() {
            self.record_churn(ChurnOp::AddUser(authors));
        }
        result
    }

    /// Deactivate a user: her engines are released, her id never reused.
    pub fn remove_user(&mut self, user: UserId) -> Result<(), SubscriptionError> {
        let result = self.multi.remove_user(user);
        if result.is_ok() {
            self.record_churn(ChurnOp::RemoveUser(user));
        }
        result
    }

    /// Append a successful churn op to the supervised replay log. A shard
    /// death during the op already healed the topology inside the
    /// strategy; the (still pending) failure episode is picked up — and
    /// the lost window state restored — by the next `process` call.
    fn record_churn(&mut self, op: ChurnOp) {
        if self.supervise {
            self.replay.push(ReplayEntry::Churn(op));
        }
    }

    /// Apply a [`ChurnOp`] (trace replay).
    pub fn apply(&mut self, op: &ChurnOp) -> Result<(), SubscriptionError> {
        match op {
            ChurnOp::Subscribe(u, a) => self.subscribe(*u, *a).map(|_| ()),
            ChurnOp::Unsubscribe(u, a) => self.unsubscribe(*u, *a).map(|_| ()),
            ChurnOp::AddUser(authors) => self.add_user(authors.iter().copied()).map(|_| ()),
            ChurnOp::RemoveUser(u) => self.remove_user(*u),
        }
    }

    // --- checkpoints ------------------------------------------------

    /// Checkpoint the strategy now; returns the generation written.
    pub fn checkpoint_now(&mut self) -> Result<u64, ServiceError> {
        match &mut self.manager {
            Some(mgr) => {
                let generation = mgr.save_multi(self.multi.as_ref())?;
                self.note_checkpointed();
                Ok(generation)
            }
            None => Err(ServiceError::NoCheckpointDir),
        }
    }

    /// Restore the newest intact checkpoint generation into the strategy.
    /// Returns the restored manifest (`manifest.posts_processed` is the
    /// aggregated per-engine offer counter used for integrity
    /// cross-checking, *not* a stream position). Corrupt generations are
    /// skipped (and reported via the error only when *no* generation
    /// restores).
    pub fn restore_latest(&mut self) -> Result<Manifest, ServiceError> {
        let Some(mgr) = &mut self.manager else {
            return Err(ServiceError::NoCheckpointDir);
        };
        let dir = mgr.dir().to_path_buf();
        let (manifest, _skipped) = restore_latest_valid_multi(&dir, self.multi.as_mut())?;
        mgr.note_restored(&manifest);
        Ok(manifest)
    }

    // --- introspection ----------------------------------------------

    /// The configured strategy.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// Strategy display name (`"S_UniBin"`, `"P_CliqueBin(4)"`, ...).
    pub fn name(&self) -> String {
        self.multi.name()
    }

    /// Aggregated engine metrics across all component engines.
    pub fn metrics(&self) -> EngineMetrics {
        self.multi.metrics()
    }

    /// Coverage-store memory mode every component engine runs with.
    pub fn memory_mode(&self) -> MemoryMode {
        self.memory
    }

    /// Aggregated approximate-backend counters; `None` in exact mode and
    /// for thread-backed strategies (see [`MultiDiversifier::approx_stats`]).
    pub fn approx_stats(&self) -> Option<firehose_stream::ApproxStats> {
        self.multi.approx_stats()
    }

    /// Lifetime churn-operation counters.
    pub fn churn_stats(&self) -> ChurnStats {
        self.multi.churn_stats()
    }

    /// The live subscription table.
    pub fn subscriptions(&self) -> &Subscriptions {
        self.multi.subscriptions()
    }

    /// Guard counters, when a guard is configured.
    pub fn guard_stats(&self) -> Option<&QuarantineStats> {
        self.guard.as_ref().map(|g| g.stats())
    }

    /// Shed / rejected / rate-limited admission counters.
    pub fn overload_stats(&self) -> OverloadStats {
        self.overload_stats
    }

    /// Cumulative failure-recovery counters (all zero for non-sharded
    /// strategies and unfaulted runs).
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.resilience
    }

    /// Wall-clock latency of each completed recovery episode, in order.
    pub fn recovery_latencies_ns(&self) -> &[u64] {
        &self.recovery_ns
    }

    /// Direct access to the underlying strategy (escape hatch for advanced
    /// callers: snapshots, per-engine inspection).
    pub fn multi(&self) -> &dyn MultiDiversifier {
        self.multi.as_ref()
    }

    /// Mutable access to the underlying strategy.
    pub fn multi_mut(&mut self) -> &mut dyn MultiDiversifier {
        self.multi.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firehose_stream::minutes;

    fn graph() -> UndirectedGraph {
        UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)])
    }

    fn subs() -> Subscriptions {
        Subscriptions::new(6, [vec![0, 1, 3], vec![2]]).unwrap()
    }

    fn config() -> EngineConfig {
        EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap())
    }

    use crate::config::Thresholds;

    fn posts(n: u64) -> Vec<Post> {
        (0..n)
            .map(|i| {
                Post::new(
                    i + 1,
                    (i % 6) as AuthorId,
                    i * 10_000,
                    format!("content group {}", i % 4),
                )
            })
            .collect()
    }

    #[test]
    fn service_matches_bare_strategy() {
        for strategy in [
            StrategyKind::Independent,
            StrategyKind::Shared,
            StrategyKind::Parallel { threads: 2 },
            StrategyKind::Sharded { shards: 2 },
        ] {
            let mut service = FirehoseService::builder(&graph(), subs())
                .strategy(strategy)
                .engine_config(config())
                .build()
                .unwrap();
            let mut bare = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subs());
            let mut got = Vec::new();
            for post in posts(40) {
                let expected = bare.offer(&post);
                service
                    .process(post, |_, d| got.push(d.delivered_to.clone()))
                    .unwrap();
                assert_eq!(*got.last().unwrap(), expected.delivered_to, "{strategy}");
            }
            assert!(service.metrics().posts_processed > 0);
        }
    }

    #[test]
    fn guard_quarantines_before_strategy() {
        let mut service = FirehoseService::builder(&graph(), subs())
            .guard(GuardConfig::default())
            .engine_config(config())
            .build()
            .unwrap();
        let mut seen = 0;
        // Author 99 is outside the 6-author graph: quarantined, never offered.
        service
            .process(Post::new(1, 99, 0, "bad author".into()), |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 0);
        assert_eq!(service.guard_stats().unwrap().quarantined_total(), 1);
        assert_eq!(service.metrics().posts_processed, 0);

        service
            .process(Post::new(2, 0, 0, "fine".into()), |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 1);
        assert_eq!(service.metrics().posts_processed, 1);
    }

    #[test]
    fn churn_ops_apply_and_count() {
        let mut service = FirehoseService::builder(&graph(), subs())
            .strategy(StrategyKind::Shared)
            .engine_config(config())
            .build()
            .unwrap();
        let ops = [
            ChurnOp::Subscribe(1, 4),
            ChurnOp::AddUser(vec![0, 2]),
            ChurnOp::Unsubscribe(0, 3),
            ChurnOp::RemoveUser(1),
        ];
        for op in &ops {
            service.apply(op).unwrap();
        }
        assert_eq!(service.churn_stats().ops_total(), 4);
        assert!(service.subscriptions().is_subscribed(2, 2));
        assert!(!service.subscriptions().is_active(1));
        // Bad ops surface the subscription error.
        assert!(service.apply(&ChurnOp::Subscribe(1, 0)).is_err());
        assert!(service.apply(&ChurnOp::Subscribe(0, 99)).is_err());
    }

    #[test]
    fn checkpoint_and_restore_round_trip() {
        let dir = std::env::temp_dir().join(format!("fhsvc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            FirehoseService::builder(&graph(), subs())
                .strategy(StrategyKind::Shared)
                .engine_config(config())
                .checkpoints(&dir, CheckpointPolicy::default())
                .build()
                .unwrap()
        };
        let stream = posts(60);
        let mut service = build();
        let mut first = Vec::new();
        for post in stream.iter().take(30).cloned() {
            service
                .process(post, |_, d| first.push(d.delivered_to.clone()))
                .unwrap();
        }
        service.subscribe(1, 4).unwrap();
        let generation = service.checkpoint_now().unwrap();

        let mut restored = build();
        let manifest = restored.restore_latest().unwrap();
        assert_eq!(manifest.generation, generation);
        assert_eq!(manifest.posts_processed, service.metrics().posts_processed);
        // Continuations agree decision-for-decision.
        for post in stream.iter().skip(30) {
            assert_eq!(
                restored.offer(post).delivered_to,
                service.offer(post).delivered_to
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_without_dir_is_an_error() {
        let mut service = FirehoseService::builder(&graph(), subs()).build().unwrap();
        assert!(matches!(
            service.restore_latest(),
            Err(ServiceError::NoCheckpointDir)
        ));
        assert!(matches!(
            service.checkpoint_now(),
            Err(ServiceError::NoCheckpointDir)
        ));
    }

    #[test]
    fn churn_op_text_round_trips() {
        let ops = [
            ChurnOp::Subscribe(3, 17),
            ChurnOp::Unsubscribe(0, 2),
            ChurnOp::AddUser(vec![1, 5, 9]),
            ChurnOp::AddUser(vec![]),
            ChurnOp::RemoveUser(7),
        ];
        for op in &ops {
            let text = op.to_string();
            assert_eq!(text.parse::<ChurnOp>().unwrap(), *op, "{text}");
        }
        assert!("subscribe 1".parse::<ChurnOp>().is_err());
        assert!("subscribe 1 2 3".parse::<ChurnOp>().is_err());
        assert!("follow 1 2".parse::<ChurnOp>().is_err());
        assert!("add-user".parse::<ChurnOp>().is_err());
        assert!("add-user 1,x".parse::<ChurnOp>().is_err());
    }

    #[test]
    fn churn_trace_round_trips_and_sorts() {
        let trace = "# comment\n\
                     \n\
                     200\tremove-user\t1\n\
                     10 subscribe 0 4\n\
                     10\tadd-user\t2,3\n";
        let ops = read_churn_trace(trace.as_bytes()).unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].after_posts, 10);
        assert_eq!(ops[0].op, ChurnOp::Subscribe(0, 4));
        assert_eq!(ops[1].op, ChurnOp::AddUser(vec![2, 3]));
        assert_eq!(ops[2].after_posts, 200);

        let mut buf = Vec::new();
        write_churn_trace(&ops, &mut buf).unwrap();
        assert_eq!(read_churn_trace(&buf[..]).unwrap(), ops);

        assert!(read_churn_trace("nonsense".as_bytes()).is_err());
        assert!(read_churn_trace("5".as_bytes()).is_err());
    }

    #[test]
    fn strategy_kind_parses() {
        assert_eq!(
            "independent".parse::<StrategyKind>().unwrap(),
            StrategyKind::Independent
        );
        assert_eq!(
            "shared".parse::<StrategyKind>().unwrap(),
            StrategyKind::Shared
        );
        assert_eq!(
            "parallel:3".parse::<StrategyKind>().unwrap(),
            StrategyKind::Parallel { threads: 3 }
        );
        assert!(matches!(
            "parallel".parse::<StrategyKind>().unwrap(),
            StrategyKind::Parallel { .. }
        ));
        assert_eq!(
            "sharded:4".parse::<StrategyKind>().unwrap(),
            StrategyKind::Sharded { shards: 4 }
        );
        assert!(matches!(
            "sharded".parse::<StrategyKind>().unwrap(),
            StrategyKind::Sharded { .. }
        ));
        assert_eq!(
            StrategyKind::Sharded { shards: 4 }.to_string(),
            "sharded(4)"
        );
        assert!("bogus".parse::<StrategyKind>().is_err());
        assert!("parallel:x".parse::<StrategyKind>().is_err());
        assert!("sharded:x".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn overload_policies_shed_and_reject() {
        let stream = posts(40);
        // Shed-oldest: a 40-post burst through a 10-slot queue keeps the
        // newest 10 and counts 30 shed.
        let mut shed = FirehoseService::builder(&graph(), subs())
            .engine_config(config())
            .overload(OverloadConfig {
                policy: OverloadPolicy::ShedOldest,
                capacity: 10,
            })
            .build()
            .unwrap();
        let mut seen = Vec::new();
        shed.process_batch(stream.iter().cloned(), |p, _| seen.push(p.id))
            .unwrap();
        assert_eq!(seen.len(), 10);
        assert_eq!(seen, (31..=40).collect::<Vec<_>>(), "newest posts kept");
        assert_eq!(shed.overload_stats().shed, 30);

        // Reject: the burst errors at the first refusal but the admitted
        // prefix is still processed.
        let mut reject = FirehoseService::builder(&graph(), subs())
            .engine_config(config())
            .overload(OverloadConfig {
                policy: OverloadPolicy::Reject,
                capacity: 10,
            })
            .build()
            .unwrap();
        let mut seen = 0u64;
        let err = reject
            .process_batch(stream.iter().cloned(), |_, _| seen += 1)
            .expect_err("burst past capacity must be rejected");
        assert!(matches!(err, ServiceError::Overloaded { capacity: 10 }));
        assert_eq!(seen, 10);
        assert_eq!(reject.overload_stats().rejected, 1);

        // Block admits everything.
        let mut block = FirehoseService::builder(&graph(), subs())
            .engine_config(config())
            .overload(OverloadConfig {
                policy: OverloadPolicy::Block,
                capacity: 10,
            })
            .build()
            .unwrap();
        let mut seen = 0u64;
        block
            .process_batch(stream.iter().cloned(), |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 40);
        assert_eq!(block.overload_stats(), OverloadStats::default());
    }

    #[test]
    fn rate_limiter_is_deterministic_in_stream_time() {
        // Author 0 posts every 100ms; at 2 posts/sec with burst 2, the
        // bucket admits the first two then one per 500ms.
        let build = || {
            FirehoseService::builder(&graph(), subs())
                .engine_config(config())
                .rate_limit(RateLimitConfig {
                    posts_per_sec: 2.0,
                    burst: 2.0,
                })
                .build()
                .unwrap()
        };
        let stream: Vec<Post> = (0..20)
            .map(|i| Post::new(i + 1, 0, i * 100, format!("burst {i}")))
            .collect();
        let run = || {
            let mut service = build();
            let mut admitted = Vec::new();
            for post in stream.iter().cloned() {
                service.process(post, |p, _| admitted.push(p.id)).unwrap();
            }
            (admitted, service.overload_stats().rate_limited)
        };
        let (first, limited) = run();
        assert!(limited > 0, "a 10x-over-limit burst must be throttled");
        assert_eq!(first.len() as u64 + limited, 20);
        let (second, limited2) = run();
        assert_eq!(first, second, "stream-time limiting is deterministic");
        assert_eq!(limited, limited2);
        assert!(
            first.contains(&1) && first.contains(&2),
            "the burst allowance admits the head of the stream"
        );
    }

    #[test]
    fn overload_policy_parses() {
        assert_eq!("block".parse::<OverloadPolicy>(), Ok(OverloadPolicy::Block));
        assert_eq!(
            "shed".parse::<OverloadPolicy>(),
            Ok(OverloadPolicy::ShedOldest)
        );
        assert_eq!(
            "shed-oldest".parse::<OverloadPolicy>(),
            Ok(OverloadPolicy::ShedOldest)
        );
        assert_eq!(
            "reject".parse::<OverloadPolicy>(),
            Ok(OverloadPolicy::Reject)
        );
        assert!("drop".parse::<OverloadPolicy>().is_err());
        assert_eq!(OverloadPolicy::ShedOldest.to_string(), "shed");
    }

    #[test]
    fn supervised_service_heals_and_matches_unfaulted_run() {
        use firehose_stream::{ShardFaultKind, ShardFaultPlan};
        let dir = std::env::temp_dir().join(format!("fhsvc-heal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stream = posts(120);

        // Ground truth: unfaulted sequential run.
        let mut bare = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subs());
        let expected: Vec<Vec<UserId>> = stream
            .iter()
            .map(|p| bare.offer(p).delivered_to.clone())
            .collect();

        // Faulted sharded run under supervision: checkpoints every 20
        // offers, three seeded kills.
        let mut service = FirehoseService::builder(&graph(), subs())
            .strategy(StrategyKind::Sharded { shards: 2 })
            .engine_config(config())
            .checkpoints(
                &dir,
                CheckpointPolicy {
                    every_offers: 20,
                    every_millis: None,
                    keep: 3,
                },
            )
            .chaos(
                ShardFaultPlan::single(0, 30, ShardFaultKind::Panic)
                    .then(1, 45, ShardFaultKind::Panic)
                    .then(0, 60, ShardFaultKind::Panic),
            )
            .build()
            .unwrap();
        let mut got = Vec::new();
        for post in stream.iter().cloned() {
            service
                .process(post, |_, d| got.push(d.delivered_to.clone()))
                .unwrap();
        }
        assert_eq!(got.len(), expected.len(), "exactly-once delivery");
        assert_eq!(got, expected, "healed decisions match the unfaulted run");
        let stats = service.resilience_stats();
        assert!(
            stats.recoveries >= 1,
            "at least one heal episode: {stats:?}"
        );
        assert!(stats.restarts >= 1);
        assert!(stats.replayed_posts >= 1);
        assert_eq!(
            service.recovery_latencies_ns().len() as u64,
            stats.recoveries
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupervised_sharded_failure_is_typed() {
        use firehose_stream::{ShardFaultKind, ShardFaultPlan};
        let mut service = FirehoseService::builder(&graph(), subs())
            .strategy(StrategyKind::Sharded { shards: 2 })
            .engine_config(config())
            .chaos(ShardFaultPlan::single(0, 5, ShardFaultKind::Panic))
            .build()
            .unwrap();
        let mut failed = None;
        for post in posts(60) {
            if let Err(e) = service.process(post, |_, _| {}) {
                failed = Some(e);
                break;
            }
        }
        match failed {
            Some(ServiceError::ShardFailed { shard, restarts }) => {
                assert_eq!(shard, 0);
                assert!(restarts >= 1);
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
        // The strategy respawned its worker: the service keeps going on
        // the degraded (empty-engine) state.
        for post in posts(80).into_iter().skip(60) {
            service.process(post, |_, _| {}).unwrap();
        }
    }

    #[test]
    fn supervised_churn_survives_kills() {
        use firehose_stream::ShardFaultPlan;
        let dir = std::env::temp_dir().join(format!("fhsvc-churnheal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stream = posts(80);
        let mut bare = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subs());
        let mut service = FirehoseService::builder(&graph(), subs())
            .strategy(StrategyKind::Sharded { shards: 2 })
            .engine_config(config())
            .checkpoints(
                &dir,
                CheckpointPolicy {
                    every_offers: 15,
                    every_millis: None,
                    keep: 3,
                },
            )
            .chaos(ShardFaultPlan::seeded(42, 2, 4, 60))
            .build()
            .unwrap();
        let mut got = Vec::new();
        let mut expected = Vec::new();
        for (i, post) in stream.iter().enumerate() {
            if i == 20 {
                assert_eq!(
                    bare.subscribe(1, 4).unwrap(),
                    service.subscribe(1, 4).unwrap()
                );
            }
            if i == 50 {
                assert_eq!(
                    bare.add_user(&[2, 3]).unwrap(),
                    service.add_user([2, 3]).unwrap()
                );
            }
            expected.push(bare.offer(post).delivered_to.clone());
            service
                .process(post.clone(), |_, d| got.push(d.delivered_to.clone()))
                .unwrap();
        }
        assert_eq!(got, expected, "churn + kills still match unfaulted run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn process_batch_matches_per_post_process() {
        let stream = posts(80);
        for strategy in [
            StrategyKind::Shared,
            StrategyKind::Sharded { shards: 2 },
            StrategyKind::Sharded { shards: 4 },
        ] {
            let build = || {
                FirehoseService::builder(&graph(), subs())
                    .strategy(strategy)
                    .engine_config(config())
                    .guard(GuardConfig::default())
                    .build()
                    .unwrap()
            };
            let mut per_post = build();
            let mut expected = Vec::new();
            for post in stream.iter().cloned() {
                per_post
                    .process(post, |p, d| expected.push((p.id, d.delivered_to.clone())))
                    .unwrap();
            }
            let mut batched = build();
            let mut got = Vec::new();
            batched
                .process_batch(stream.iter().cloned(), |p, d| {
                    got.push((p.id, d.delivered_to.clone()));
                })
                .unwrap();
            assert_eq!(got, expected, "{strategy}");
            assert_eq!(
                batched.metrics().posts_processed,
                per_post.metrics().posts_processed,
                "{strategy}"
            );
        }
    }
}
