//! `FirehoseService` — the whole multi-user pipeline behind one object.
//!
//! The lower layers are deliberately à la carte: engines, strategies, the
//! ingest guard, checkpointing and observability each stand alone. A real
//! deployment always wires the same five pieces together, so this module
//! packages them behind a builder-constructed facade that owns the author
//! graph, the subscription table, the chosen M-SPSD strategy, an optional
//! [`IngestGuard`], an optional [`CheckpointManager`] and optional metric
//! registration:
//!
//! ```
//! use firehose_core::prelude::*;
//! use firehose_graph::UndirectedGraph;
//! use firehose_stream::Post;
//!
//! let graph = UndirectedGraph::from_edges(3, [(0, 1)]);
//! let subs = Subscriptions::new(3, [vec![0, 1]]).unwrap();
//!
//! let mut service = FirehoseService::builder(&graph, subs)
//!     .strategy(StrategyKind::Shared)
//!     .build()
//!     .unwrap();
//!
//! let mut delivered = Vec::new();
//! service
//!     .process(Post::new(1, 0, 0, "hello".into()), |post, decision| {
//!         if !decision.delivered_to.is_empty() {
//!             delivered.push(post.id);
//!         }
//!     })
//!     .unwrap();
//! service.subscribe(0, 2).unwrap(); // live churn: no rebuild, no restart
//! assert_eq!(delivered, [1]);
//! ```
//!
//! [`process`](FirehoseService::process) is the service entry point: posts
//! pass through the guard (when configured), every admitted post is offered
//! to the strategy with a reused decision buffer, and checkpoints are taken
//! at the configured cadence. The churn operations forward to the strategy's
//! live [`MultiDiversifier`] churn API, and [`ChurnOp`] gives those
//! operations a text form so traces can be recorded, replayed
//! (`firehose run --churn-trace`) and generated (`firehose_datagen::churn`).

use std::io::{self, BufRead, Write};
use std::path::PathBuf;

use firehose_graph::UndirectedGraph;
use firehose_stream::{AuthorId, GuardConfig, IngestGuard, Post, QuarantineStats};

use crate::checkpoint::{
    restore_latest_valid_multi, CheckpointManager, CheckpointPolicy, Manifest, RestoreError,
};
use crate::config::{ChurnConfig, EngineConfig};
use crate::engine::AlgorithmKind;
use crate::metrics::EngineMetrics;
use crate::multi::{
    BuildError, ChurnStats, IndependentMulti, MultiDecision, MultiDiversifier, ParallelShared,
    ShardedMulti, SharedMulti, SubscriptionError, Subscriptions, UserId,
};

// ---------------------------------------------------------------------
// Strategy selection.
// ---------------------------------------------------------------------

/// Which M-SPSD strategy the service runs (Section 5's `M_*` / `S_*`, plus
/// the sharded parallel extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// One engine per user ([`IndependentMulti`], `M_*`).
    Independent,
    /// One engine per distinct connected component ([`SharedMulti`], `S_*`).
    Shared,
    /// [`SharedMulti`]'s decomposition spread across worker threads
    /// ([`ParallelShared`], `P_*`).
    Parallel {
        /// Worker thread count (must be ≥ 1).
        threads: usize,
    },
    /// Persistent shard workers fed by SPSC ingest rings
    /// ([`ShardedMulti`], `Sh_*`): engines stay resident on their shard
    /// between posts, so single-post `process` calls parallelize too.
    Sharded {
        /// Shard worker count (must be ≥ 1).
        shards: usize,
    },
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Independent => f.write_str("independent"),
            Self::Shared => f.write_str("shared"),
            Self::Parallel { threads } => write!(f, "parallel({threads})"),
            Self::Sharded { shards } => write!(f, "sharded({shards})"),
        }
    }
}

impl std::str::FromStr for StrategyKind {
    type Err = String;

    /// `independent` | `shared` | `parallel` | `parallel:N` | `sharded` |
    /// `sharded:N`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let cores = || std::thread::available_parallelism().map_or(4, |n| n.get());
        match s {
            "independent" | "m" => Ok(Self::Independent),
            "shared" | "s" => Ok(Self::Shared),
            "parallel" | "p" => Ok(Self::Parallel { threads: cores() }),
            "sharded" | "sh" => Ok(Self::Sharded { shards: cores() }),
            other => {
                if let Some(n) = other.strip_prefix("parallel:") {
                    n.parse()
                        .map(|threads| Self::Parallel { threads })
                        .map_err(|e| format!("bad thread count in {other:?}: {e}"))
                } else if let Some(n) = other.strip_prefix("sharded:") {
                    n.parse()
                        .map(|shards| Self::Sharded { shards })
                        .map_err(|e| format!("bad shard count in {other:?}: {e}"))
                } else {
                    Err(format!(
                        "unknown strategy {other:?} (want independent|shared|parallel[:N]|sharded[:N])"
                    ))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Churn operations and traces.
// ---------------------------------------------------------------------

/// One live subscription-management operation, with a stable text form for
/// trace files (`subscribe 3 17`, `add-user 1,5,9`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnOp {
    /// `subscribe <user> <author>`.
    Subscribe(UserId, AuthorId),
    /// `unsubscribe <user> <author>`.
    Unsubscribe(UserId, AuthorId),
    /// `add-user <a1,a2,...>` (or `add-user -` for an empty set).
    AddUser(Vec<AuthorId>),
    /// `remove-user <user>`.
    RemoveUser(UserId),
}

impl std::fmt::Display for ChurnOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Subscribe(u, a) => write!(f, "subscribe\t{u}\t{a}"),
            Self::Unsubscribe(u, a) => write!(f, "unsubscribe\t{u}\t{a}"),
            Self::AddUser(authors) if authors.is_empty() => f.write_str("add-user\t-"),
            Self::AddUser(authors) => {
                f.write_str("add-user\t")?;
                for (i, a) in authors.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Self::RemoveUser(u) => write!(f, "remove-user\t{u}"),
        }
    }
}

impl std::str::FromStr for ChurnOp {
    type Err = String;

    /// Parse the [`Display`](std::fmt::Display) form; fields split on any
    /// run of tabs or spaces.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut fields = s.split_ascii_whitespace();
        let op = fields.next().ok_or("empty churn op")?;
        let mut arg = |name: &str| {
            fields
                .next()
                .ok_or_else(|| format!("{op}: missing <{name}>"))
        };
        let parsed = match op {
            "subscribe" | "unsubscribe" => {
                let u = parse_num(arg("user")?, "user")?;
                let a = parse_num(arg("author")?, "author")?;
                if op == "subscribe" {
                    Self::Subscribe(u, a)
                } else {
                    Self::Unsubscribe(u, a)
                }
            }
            "add-user" => {
                let list = arg("authors")?;
                let authors = if list == "-" {
                    Vec::new()
                } else {
                    list.split(',')
                        .map(|a| parse_num(a, "author"))
                        .collect::<Result<_, _>>()?
                };
                Self::AddUser(authors)
            }
            "remove-user" => Self::RemoveUser(parse_num(arg("user")?, "user")?),
            other => return Err(format!("unknown churn op {other:?}")),
        };
        match fields.next() {
            Some(extra) => Err(format!("{op}: unexpected trailing field {extra:?}")),
            None => Ok(parsed),
        }
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, name: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad <{name}> {s:?}: {e}"))
}

/// A churn operation scheduled at a stream position: apply `op` once
/// `after_posts` posts have been offered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracedOp {
    /// Apply after this many posts of the (admitted) stream.
    pub after_posts: u64,
    /// The operation.
    pub op: ChurnOp,
}

impl std::fmt::Display for TracedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\t{}", self.after_posts, self.op)
    }
}

/// Parse a churn-trace file: one [`TracedOp`] per line (`<after_posts>
/// <op> <args...>`), `#` comments and blank lines ignored. Ops are returned
/// sorted by position (stable, so same-position ops keep file order).
pub fn read_churn_trace(reader: impl BufRead) -> Result<Vec<TracedOp>, String> {
    let mut ops = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parsed = (|| {
            let (pos, op) = line
                .split_once(|c: char| c.is_ascii_whitespace())
                .ok_or("missing churn op after position")?;
            Ok(TracedOp {
                after_posts: parse_num(pos, "after_posts")?,
                op: op.parse()?,
            })
        })();
        ops.push(parsed.map_err(|e: String| format!("line {}: {e}", lineno + 1))?);
    }
    ops.sort_by_key(|t| t.after_posts);
    Ok(ops)
}

/// Write a churn trace in the format [`read_churn_trace`] parses.
pub fn write_churn_trace(ops: &[TracedOp], mut w: impl Write) -> io::Result<()> {
    for op in ops {
        writeln!(w, "{op}")?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------

/// Errors constructing or operating a [`FirehoseService`].
#[derive(Debug)]
pub enum ServiceError {
    /// The strategy rejected its configuration.
    Build(BuildError),
    /// Checkpoint directory I/O failed.
    Io(io::Error),
    /// Restoring from the checkpoint directory failed.
    Restore(RestoreError),
    /// A checkpoint/restore operation was requested but the service was
    /// built without [`checkpoints`](FirehoseServiceBuilder::checkpoints).
    NoCheckpointDir,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Build(e) => write!(f, "cannot build strategy: {e}"),
            Self::Io(e) => write!(f, "checkpoint I/O: {e}"),
            Self::Restore(e) => write!(f, "restore failed: {e}"),
            Self::NoCheckpointDir => f.write_str("service built without a checkpoint directory"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<BuildError> for ServiceError {
    fn from(e: BuildError) -> Self {
        Self::Build(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<RestoreError> for ServiceError {
    fn from(e: RestoreError) -> Self {
        Self::Restore(e)
    }
}

// ---------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------

/// Builder for [`FirehoseService`]; start from
/// [`FirehoseService::builder`].
pub struct FirehoseServiceBuilder<'g> {
    graph: &'g UndirectedGraph,
    subscriptions: Subscriptions,
    strategy: StrategyKind,
    algorithm: AlgorithmKind,
    config: EngineConfig,
    churn: ChurnConfig,
    guard: Option<GuardConfig>,
    checkpoints: Option<(PathBuf, CheckpointPolicy)>,
    obs: Option<&'g firehose_obs::Registry>,
}

impl<'g> FirehoseServiceBuilder<'g> {
    /// Pick the multi-user strategy (default [`StrategyKind::Shared`]).
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Shorthand for [`StrategyKind::Sharded`]: run the decomposition on
    /// `shards` persistent worker threads.
    pub fn shards(self, shards: usize) -> Self {
        self.strategy(StrategyKind::Sharded { shards })
    }

    /// Pick the per-component engine algorithm (default
    /// [`AlgorithmKind::UniBin`]).
    pub fn algorithm(mut self, algorithm: AlgorithmKind) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set thresholds/fingerprinting (default
    /// [`EngineConfig::paper_defaults`]).
    pub fn engine_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Set churn behavior (default [`ChurnConfig::default`]: warm starts on).
    pub fn churn_config(mut self, churn: ChurnConfig) -> Self {
        self.churn = churn;
        self
    }

    /// Screen incoming posts through an [`IngestGuard`] before they reach
    /// the strategy. The guard's author-universe check is filled in from the
    /// graph unless the config already set one.
    pub fn guard(mut self, config: GuardConfig) -> Self {
        self.guard = Some(config);
        self
    }

    /// Enable crash-safe checkpoints in `dir` at the given cadence.
    pub fn checkpoints(mut self, dir: impl Into<PathBuf>, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some((dir.into(), policy));
        self
    }

    /// Register latency/throughput metrics with an observability registry.
    pub fn observability(mut self, registry: &'g firehose_obs::Registry) -> Self {
        self.obs = Some(registry);
        self
    }

    /// Construct the service: builds the strategy, opens the checkpoint
    /// directory, and arms the guard.
    pub fn build(self) -> Result<FirehoseService, ServiceError> {
        let warm = self.churn.warm_start;
        let multi: Box<dyn MultiDiversifier + Send> = match self.strategy {
            StrategyKind::Independent => {
                let mut m = IndependentMulti::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
            StrategyKind::Shared => {
                let mut m = SharedMulti::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
            StrategyKind::Parallel { threads } => {
                let mut m = ParallelShared::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .threads(threads)
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
            StrategyKind::Sharded { shards } => {
                let mut m = ShardedMulti::builder(
                    self.algorithm,
                    self.config,
                    self.graph,
                    self.subscriptions,
                )
                .shards(shards)
                .warm_start(warm)
                .build()?;
                if let Some(reg) = self.obs {
                    m.attach_obs(reg);
                }
                Box::new(m)
            }
        };
        let guard = self.guard.map(|mut config| {
            if config.author_count.is_none() {
                config.author_count = Some(self.graph.node_count() as u32);
            }
            IngestGuard::new(config)
        });
        let manager = match self.checkpoints {
            Some((dir, policy)) => Some(CheckpointManager::new(dir, policy)?),
            None => None,
        };
        Ok(FirehoseService {
            multi,
            guard,
            manager,
            strategy: self.strategy,
            admitted: Vec::new(),
            decision: MultiDecision::default(),
        })
    }
}

// ---------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------

/// One long-running diversification service: graph + subscriptions +
/// strategy + guard + checkpoints + metrics behind a single object. See the
/// [module docs](self) for the lifecycle.
pub struct FirehoseService {
    multi: Box<dyn MultiDiversifier + Send>,
    guard: Option<IngestGuard>,
    manager: Option<CheckpointManager>,
    strategy: StrategyKind,
    /// Guard output scratch, reused across `process` calls.
    admitted: Vec<Post>,
    /// Decision scratch, reused across `process` calls (the
    /// `offer_into` buffer-reuse path).
    decision: MultiDecision,
}

impl FirehoseService {
    /// Start building a service over an author-similarity graph and a
    /// subscription table.
    pub fn builder(
        graph: &UndirectedGraph,
        subscriptions: Subscriptions,
    ) -> FirehoseServiceBuilder<'_> {
        FirehoseServiceBuilder {
            graph,
            subscriptions,
            strategy: StrategyKind::Shared,
            algorithm: AlgorithmKind::UniBin,
            config: EngineConfig::paper_defaults(),
            churn: ChurnConfig::default(),
            guard: None,
            checkpoints: None,
            obs: None,
        }
    }

    /// Feed one post through the full pipeline: guard (quarantine /
    /// clamp / reorder), strategy, checkpoint cadence. `sink` is called for
    /// every post the guard admits, with the per-user delivery decision —
    /// possibly zero times (quarantined or buffered for reorder) or several
    /// (a reorder release). The decision buffer is reused; copy out what you
    /// keep.
    pub fn process(
        &mut self,
        post: Post,
        mut sink: impl FnMut(&Post, &MultiDecision),
    ) -> io::Result<()> {
        match &mut self.guard {
            None => {
                self.multi.offer_into(&post, &mut self.decision);
                sink(&post, &self.decision);
            }
            Some(guard) => {
                guard.offer_into(post, &mut self.admitted);
                for post in self.admitted.drain(..) {
                    self.multi.offer_into(&post, &mut self.decision);
                    sink(&post, &self.decision);
                }
            }
        }
        if let Some(mgr) = &mut self.manager {
            mgr.maybe_save_multi(self.multi.as_ref())?;
        }
        Ok(())
    }

    /// Feed a batch of posts through the pipeline in one call. Semantically
    /// identical to calling [`process`](Self::process) per post, but the
    /// admitted posts reach the strategy via
    /// [`offer_batch`](MultiDiversifier::offer_batch), which pipelined
    /// strategies ([`StrategyKind::Sharded`]) overlap across shards, and the
    /// checkpoint cadence is polled once at the end instead of per post.
    pub fn process_batch(
        &mut self,
        posts: impl IntoIterator<Item = Post>,
        mut sink: impl FnMut(&Post, &MultiDecision),
    ) -> io::Result<()> {
        match &mut self.guard {
            None => self.admitted.extend(posts),
            Some(guard) => {
                for post in posts {
                    guard.offer_into(post, &mut self.admitted);
                }
            }
        }
        let decisions = self.multi.offer_batch(&self.admitted);
        for (post, decision) in self.admitted.iter().zip(&decisions) {
            sink(post, decision);
        }
        self.admitted.clear();
        if let Some(mgr) = &mut self.manager {
            mgr.maybe_save_multi(self.multi.as_ref())?;
        }
        Ok(())
    }

    /// Release any posts still held by the guard's reorder buffer (call at
    /// end of stream). A no-op without a reorder guard.
    pub fn flush(&mut self, mut sink: impl FnMut(&Post, &MultiDecision)) -> io::Result<()> {
        if let Some(guard) = &mut self.guard {
            guard.flush_into(&mut self.admitted);
            for post in self.admitted.drain(..) {
                self.multi.offer_into(&post, &mut self.decision);
                sink(&post, &self.decision);
            }
            if let Some(mgr) = &mut self.manager {
                mgr.maybe_save_multi(self.multi.as_ref())?;
            }
        }
        Ok(())
    }

    /// Offer a post directly to the strategy, bypassing guard and
    /// checkpoint cadence. For pre-sanitized streams and tests.
    pub fn offer(&mut self, post: &Post) -> MultiDecision {
        self.multi.offer(post)
    }

    // --- live churn -------------------------------------------------

    /// User `user` starts following `author`; `Ok(false)` if already
    /// subscribed (a no-op).
    pub fn subscribe(&mut self, user: UserId, author: AuthorId) -> Result<bool, SubscriptionError> {
        self.multi.subscribe(user, author)
    }

    /// User `user` stops following `author`; `Ok(false)` if not subscribed
    /// (a no-op).
    pub fn unsubscribe(
        &mut self,
        user: UserId,
        author: AuthorId,
    ) -> Result<bool, SubscriptionError> {
        self.multi.unsubscribe(user, author)
    }

    /// Register a new user with an initial subscription set; returns her id.
    pub fn add_user(
        &mut self,
        authors: impl IntoIterator<Item = AuthorId>,
    ) -> Result<UserId, SubscriptionError> {
        self.multi
            .add_user(&authors.into_iter().collect::<Vec<_>>())
    }

    /// Deactivate a user: her engines are released, her id never reused.
    pub fn remove_user(&mut self, user: UserId) -> Result<(), SubscriptionError> {
        self.multi.remove_user(user)
    }

    /// Apply a [`ChurnOp`] (trace replay).
    pub fn apply(&mut self, op: &ChurnOp) -> Result<(), SubscriptionError> {
        match op {
            ChurnOp::Subscribe(u, a) => self.subscribe(*u, *a).map(|_| ()),
            ChurnOp::Unsubscribe(u, a) => self.unsubscribe(*u, *a).map(|_| ()),
            ChurnOp::AddUser(authors) => self.add_user(authors.iter().copied()).map(|_| ()),
            ChurnOp::RemoveUser(u) => self.remove_user(*u),
        }
    }

    // --- checkpoints ------------------------------------------------

    /// Checkpoint the strategy now; returns the generation written.
    pub fn checkpoint_now(&mut self) -> Result<u64, ServiceError> {
        match &mut self.manager {
            Some(mgr) => Ok(mgr.save_multi(self.multi.as_ref())?),
            None => Err(ServiceError::NoCheckpointDir),
        }
    }

    /// Restore the newest intact checkpoint generation into the strategy.
    /// Returns the restored manifest (`manifest.posts_processed` is the
    /// aggregated per-engine offer counter used for integrity
    /// cross-checking, *not* a stream position). Corrupt generations are
    /// skipped (and reported via the error only when *no* generation
    /// restores).
    pub fn restore_latest(&mut self) -> Result<Manifest, ServiceError> {
        let Some(mgr) = &mut self.manager else {
            return Err(ServiceError::NoCheckpointDir);
        };
        let dir = mgr.dir().to_path_buf();
        let (manifest, _skipped) = restore_latest_valid_multi(&dir, self.multi.as_mut())?;
        mgr.note_restored(&manifest);
        Ok(manifest)
    }

    // --- introspection ----------------------------------------------

    /// The configured strategy.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// Strategy display name (`"S_UniBin"`, `"P_CliqueBin(4)"`, ...).
    pub fn name(&self) -> String {
        self.multi.name()
    }

    /// Aggregated engine metrics across all component engines.
    pub fn metrics(&self) -> EngineMetrics {
        self.multi.metrics()
    }

    /// Lifetime churn-operation counters.
    pub fn churn_stats(&self) -> ChurnStats {
        self.multi.churn_stats()
    }

    /// The live subscription table.
    pub fn subscriptions(&self) -> &Subscriptions {
        self.multi.subscriptions()
    }

    /// Guard counters, when a guard is configured.
    pub fn guard_stats(&self) -> Option<&QuarantineStats> {
        self.guard.as_ref().map(|g| g.stats())
    }

    /// Direct access to the underlying strategy (escape hatch for advanced
    /// callers: snapshots, per-engine inspection).
    pub fn multi(&self) -> &dyn MultiDiversifier {
        self.multi.as_ref()
    }

    /// Mutable access to the underlying strategy.
    pub fn multi_mut(&mut self) -> &mut dyn MultiDiversifier {
        self.multi.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firehose_stream::minutes;

    fn graph() -> UndirectedGraph {
        UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)])
    }

    fn subs() -> Subscriptions {
        Subscriptions::new(6, [vec![0, 1, 3], vec![2]]).unwrap()
    }

    fn config() -> EngineConfig {
        EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap())
    }

    use crate::config::Thresholds;

    fn posts(n: u64) -> Vec<Post> {
        (0..n)
            .map(|i| {
                Post::new(
                    i + 1,
                    (i % 6) as AuthorId,
                    i * 10_000,
                    format!("content group {}", i % 4),
                )
            })
            .collect()
    }

    #[test]
    fn service_matches_bare_strategy() {
        for strategy in [
            StrategyKind::Independent,
            StrategyKind::Shared,
            StrategyKind::Parallel { threads: 2 },
            StrategyKind::Sharded { shards: 2 },
        ] {
            let mut service = FirehoseService::builder(&graph(), subs())
                .strategy(strategy)
                .engine_config(config())
                .build()
                .unwrap();
            let mut bare = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subs());
            let mut got = Vec::new();
            for post in posts(40) {
                let expected = bare.offer(&post);
                service
                    .process(post, |_, d| got.push(d.delivered_to.clone()))
                    .unwrap();
                assert_eq!(*got.last().unwrap(), expected.delivered_to, "{strategy}");
            }
            assert!(service.metrics().posts_processed > 0);
        }
    }

    #[test]
    fn guard_quarantines_before_strategy() {
        let mut service = FirehoseService::builder(&graph(), subs())
            .guard(GuardConfig::default())
            .engine_config(config())
            .build()
            .unwrap();
        let mut seen = 0;
        // Author 99 is outside the 6-author graph: quarantined, never offered.
        service
            .process(Post::new(1, 99, 0, "bad author".into()), |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 0);
        assert_eq!(service.guard_stats().unwrap().quarantined_total(), 1);
        assert_eq!(service.metrics().posts_processed, 0);

        service
            .process(Post::new(2, 0, 0, "fine".into()), |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 1);
        assert_eq!(service.metrics().posts_processed, 1);
    }

    #[test]
    fn churn_ops_apply_and_count() {
        let mut service = FirehoseService::builder(&graph(), subs())
            .strategy(StrategyKind::Shared)
            .engine_config(config())
            .build()
            .unwrap();
        let ops = [
            ChurnOp::Subscribe(1, 4),
            ChurnOp::AddUser(vec![0, 2]),
            ChurnOp::Unsubscribe(0, 3),
            ChurnOp::RemoveUser(1),
        ];
        for op in &ops {
            service.apply(op).unwrap();
        }
        assert_eq!(service.churn_stats().ops_total(), 4);
        assert!(service.subscriptions().is_subscribed(2, 2));
        assert!(!service.subscriptions().is_active(1));
        // Bad ops surface the subscription error.
        assert!(service.apply(&ChurnOp::Subscribe(1, 0)).is_err());
        assert!(service.apply(&ChurnOp::Subscribe(0, 99)).is_err());
    }

    #[test]
    fn checkpoint_and_restore_round_trip() {
        let dir = std::env::temp_dir().join(format!("fhsvc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            FirehoseService::builder(&graph(), subs())
                .strategy(StrategyKind::Shared)
                .engine_config(config())
                .checkpoints(&dir, CheckpointPolicy::default())
                .build()
                .unwrap()
        };
        let stream = posts(60);
        let mut service = build();
        let mut first = Vec::new();
        for post in stream.iter().take(30).cloned() {
            service
                .process(post, |_, d| first.push(d.delivered_to.clone()))
                .unwrap();
        }
        service.subscribe(1, 4).unwrap();
        let generation = service.checkpoint_now().unwrap();

        let mut restored = build();
        let manifest = restored.restore_latest().unwrap();
        assert_eq!(manifest.generation, generation);
        assert_eq!(manifest.posts_processed, service.metrics().posts_processed);
        // Continuations agree decision-for-decision.
        for post in stream.iter().skip(30) {
            assert_eq!(
                restored.offer(post).delivered_to,
                service.offer(post).delivered_to
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_without_dir_is_an_error() {
        let mut service = FirehoseService::builder(&graph(), subs()).build().unwrap();
        assert!(matches!(
            service.restore_latest(),
            Err(ServiceError::NoCheckpointDir)
        ));
        assert!(matches!(
            service.checkpoint_now(),
            Err(ServiceError::NoCheckpointDir)
        ));
    }

    #[test]
    fn churn_op_text_round_trips() {
        let ops = [
            ChurnOp::Subscribe(3, 17),
            ChurnOp::Unsubscribe(0, 2),
            ChurnOp::AddUser(vec![1, 5, 9]),
            ChurnOp::AddUser(vec![]),
            ChurnOp::RemoveUser(7),
        ];
        for op in &ops {
            let text = op.to_string();
            assert_eq!(text.parse::<ChurnOp>().unwrap(), *op, "{text}");
        }
        assert!("subscribe 1".parse::<ChurnOp>().is_err());
        assert!("subscribe 1 2 3".parse::<ChurnOp>().is_err());
        assert!("follow 1 2".parse::<ChurnOp>().is_err());
        assert!("add-user".parse::<ChurnOp>().is_err());
        assert!("add-user 1,x".parse::<ChurnOp>().is_err());
    }

    #[test]
    fn churn_trace_round_trips_and_sorts() {
        let trace = "# comment\n\
                     \n\
                     200\tremove-user\t1\n\
                     10 subscribe 0 4\n\
                     10\tadd-user\t2,3\n";
        let ops = read_churn_trace(trace.as_bytes()).unwrap();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].after_posts, 10);
        assert_eq!(ops[0].op, ChurnOp::Subscribe(0, 4));
        assert_eq!(ops[1].op, ChurnOp::AddUser(vec![2, 3]));
        assert_eq!(ops[2].after_posts, 200);

        let mut buf = Vec::new();
        write_churn_trace(&ops, &mut buf).unwrap();
        assert_eq!(read_churn_trace(&buf[..]).unwrap(), ops);

        assert!(read_churn_trace("nonsense".as_bytes()).is_err());
        assert!(read_churn_trace("5".as_bytes()).is_err());
    }

    #[test]
    fn strategy_kind_parses() {
        assert_eq!(
            "independent".parse::<StrategyKind>().unwrap(),
            StrategyKind::Independent
        );
        assert_eq!(
            "shared".parse::<StrategyKind>().unwrap(),
            StrategyKind::Shared
        );
        assert_eq!(
            "parallel:3".parse::<StrategyKind>().unwrap(),
            StrategyKind::Parallel { threads: 3 }
        );
        assert!(matches!(
            "parallel".parse::<StrategyKind>().unwrap(),
            StrategyKind::Parallel { .. }
        ));
        assert_eq!(
            "sharded:4".parse::<StrategyKind>().unwrap(),
            StrategyKind::Sharded { shards: 4 }
        );
        assert!(matches!(
            "sharded".parse::<StrategyKind>().unwrap(),
            StrategyKind::Sharded { .. }
        ));
        assert_eq!(
            StrategyKind::Sharded { shards: 4 }.to_string(),
            "sharded(4)"
        );
        assert!("bogus".parse::<StrategyKind>().is_err());
        assert!("parallel:x".parse::<StrategyKind>().is_err());
        assert!("sharded:x".parse::<StrategyKind>().is_err());
    }

    #[test]
    fn process_batch_matches_per_post_process() {
        let stream = posts(80);
        for strategy in [
            StrategyKind::Shared,
            StrategyKind::Sharded { shards: 2 },
            StrategyKind::Sharded { shards: 4 },
        ] {
            let build = || {
                FirehoseService::builder(&graph(), subs())
                    .strategy(strategy)
                    .engine_config(config())
                    .guard(GuardConfig::default())
                    .build()
                    .unwrap()
            };
            let mut per_post = build();
            let mut expected = Vec::new();
            for post in stream.iter().cloned() {
                per_post
                    .process(post, |p, d| expected.push((p.id, d.delivered_to.clone())))
                    .unwrap();
            }
            let mut batched = build();
            let mut got = Vec::new();
            batched
                .process_batch(stream.iter().cloned(), |p, d| {
                    got.push((p.id, d.delivered_to.clone()));
                })
                .unwrap();
            assert_eq!(got, expected, "{strategy}");
            assert_eq!(
                batched.metrics().posts_processed,
                per_post.metrics().posts_processed,
                "{strategy}"
            );
        }
    }
}
