//! Per-post engine decisions.

use firehose_stream::PostId;

/// The engine's real-time verdict on an arriving post (Problem 1 requires
/// the decision "immediately ... at its arrival").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The post is not covered: it joins the diversified sub-stream `Z` and
    /// is pushed to the user.
    Emitted,
    /// The post is redundant: `by` is the id of the (already emitted) post
    /// that covers it in all three dimensions.
    Covered {
        /// Id of the covering post.
        by: PostId,
    },
}

impl Decision {
    /// `true` for [`Decision::Emitted`].
    pub fn is_emitted(&self) -> bool {
        matches!(self, Decision::Emitted)
    }

    /// The covering post's id, if any.
    pub fn covered_by(&self) -> Option<PostId> {
        match self {
            Decision::Emitted => None,
            Decision::Covered { by } => Some(*by),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert!(Decision::Emitted.is_emitted());
        assert_eq!(Decision::Emitted.covered_by(), None);
        let d = Decision::Covered { by: 42 };
        assert!(!d.is_emitted());
        assert_eq!(d.covered_by(), Some(42));
    }
}
