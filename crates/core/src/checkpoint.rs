//! Crash-safe checkpoints: CRC-protected sections, atomic generation
//! directories, restore-latest-valid recovery.
//!
//! The whole-file snapshots in [`crate::snapshot`] assume the bytes on disk
//! are exactly the bytes that were written. A process killed mid-write (or a
//! disk flipping bits) violates that: a torn whole-file snapshot may parse as a
//! *valid but wrong* engine state and silently change future decisions. This
//! module closes that hole:
//!
//! * **Sectioned container** (`FHCKPT01`): a manifest, the engine
//!   configuration and the engine state are stored as separate sections,
//!   each guarded by its own CRC32. Corruption is detected and reported as
//!   [`SnapshotError::Corrupt`] with the section name and byte offset —
//!   never a panic, never a wrong-but-valid restore.
//! * **Atomic generations**: each checkpoint is written to a temp directory
//!   (`.tmp-gen-XXXXXXXX`), fsynced, then atomically renamed to
//!   `gen-XXXXXXXX/`. A crash mid-checkpoint leaves only an ignored temp
//!   directory; visible generations are always complete files.
//! * **Restore-latest-valid**: [`restore_latest_valid`] walks generations
//!   newest-first, skips any that fail validation (recording *why*), and
//!   restores the newest intact one.
//!
//! Cadence is policy-driven ([`CheckpointPolicy`]): every N offers and/or
//! every T milliseconds of wall-clock (only if the engine advanced).

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use firehose_graph::{CliqueCover, UndirectedGraph};

use crate::engine::{build_cliquebin_with_cover, build_engine, AlgorithmKind, Diversifier};
use crate::multi::MultiDiversifier;
use crate::snapshot::{self, SnapshotError};

const MAGIC: &[u8; 8] = b"FHCKPT01";
const MANIFEST_VERSION: u32 = 1;
const SEC_MANIFEST: u8 = 1;
const SEC_CONFIG: u8 = 2;
const SEC_STATE: u8 = 3;
/// Per-section header: id (1) + payload length (8) + CRC32 (4).
const SECTION_HEADER: usize = 13;
/// Sanity cap on the manifest's strategy-name length.
const MAX_NAME_LEN: usize = 4096;

/// Checkpoint tag for the multi-user strategies (single-user engines use
/// their snapshot tags, see [`Diversifier::snapshot_tag`]).
pub const TAG_MULTI: u8 = 9;

/// File name of the checkpoint inside each generation directory.
pub const CHECKPOINT_FILE: &str = "engine.fhckpt";

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320) — in-tree, zero-dep.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 of `bytes` (the checksum `cksum`/zlib compute).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Container format.
// ---------------------------------------------------------------------

/// The identity section of a checkpoint: what was checkpointed, and when in
/// stream terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Engine tag (`Diversifier::snapshot_tag`, or [`TAG_MULTI`]).
    pub tag: u8,
    /// Monotonic checkpoint generation number.
    pub generation: u64,
    /// The engine's `posts_processed` counter at checkpoint time. Doubles as
    /// the resume cursor: a deterministic re-run of the input can skip this
    /// many admitted posts.
    pub posts_processed: u64,
    /// Strategy name (`"UniBin"`, `"S_CliqueBin"`, ...), cross-checked on
    /// restore for multi-user strategies.
    pub name: String,
}

fn write_manifest(out: &mut Vec<u8>, m: &Manifest) {
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    out.push(m.tag);
    out.extend_from_slice(&m.generation.to_le_bytes());
    out.extend_from_slice(&m.posts_processed.to_le_bytes());
    out.extend_from_slice(&(m.name.len() as u32).to_le_bytes());
    out.extend_from_slice(m.name.as_bytes());
}

fn parse_manifest(section: &RawSection<'_>) -> Result<Manifest, SnapshotError> {
    let offset = section.offset;
    let corrupt = || SnapshotError::Corrupt {
        section: "manifest",
        offset,
    };
    let p = section.payload;
    const FIXED: usize = 4 + 1 + 8 + 8 + 4;
    if p.len() < FIXED {
        return Err(corrupt());
    }
    let version = u32::from_le_bytes(p[0..4].try_into().unwrap());
    if version != MANIFEST_VERSION {
        return Err(corrupt());
    }
    let tag = p[4];
    let generation = u64::from_le_bytes(p[5..13].try_into().unwrap());
    let posts_processed = u64::from_le_bytes(p[13..21].try_into().unwrap());
    let name_len = u32::from_le_bytes(p[21..25].try_into().unwrap()) as usize;
    if name_len > MAX_NAME_LEN || p.len() != FIXED + name_len {
        return Err(corrupt());
    }
    let name = std::str::from_utf8(&p[FIXED..])
        .map_err(|_| corrupt())?
        .to_string();
    Ok(Manifest {
        tag,
        generation,
        posts_processed,
        name,
    })
}

fn section_name(id: u8) -> &'static str {
    match id {
        SEC_MANIFEST => "manifest",
        SEC_CONFIG => "config",
        SEC_STATE => "state",
        _ => "unknown",
    }
}

fn write_section(out: &mut Vec<u8>, id: u8, payload: &[u8]) {
    out.push(id);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

struct RawSection<'a> {
    id: u8,
    /// Byte offset of the section header within the container.
    offset: u64,
    payload: &'a [u8],
}

/// Split a checkpoint buffer into CRC-verified sections. Every length is
/// untrusted: the section count and payload lengths are bounds-checked
/// against the buffer (no length-driven allocation), payload CRCs must
/// match, and the buffer must be exactly consumed.
fn parse_sections(buf: &[u8]) -> Result<Vec<RawSection<'_>>, SnapshotError> {
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if buf.len() < MAGIC.len() + 4 {
        return Err(SnapshotError::Corrupt {
            section: "container",
            offset: buf.len() as u64,
        });
    }
    let count = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let mut pos = 12usize;
    // `count` is untrusted: grow the list as sections actually parse rather
    // than pre-allocating `count` entries.
    let mut sections = Vec::new();
    for _ in 0..count {
        let header_end = pos
            .checked_add(SECTION_HEADER)
            .filter(|&e| e <= buf.len())
            .ok_or(SnapshotError::Corrupt {
                section: "container",
                offset: pos as u64,
            })?;
        let id = buf[pos];
        let len = u64::from_le_bytes(buf[pos + 1..pos + 9].try_into().unwrap());
        let stored_crc = u32::from_le_bytes(buf[pos + 9..pos + 13].try_into().unwrap());
        let payload_end = usize::try_from(len)
            .ok()
            .and_then(|len| header_end.checked_add(len))
            .filter(|&e| e <= buf.len())
            .ok_or(SnapshotError::Corrupt {
                section: section_name(id),
                offset: pos as u64,
            })?;
        let payload = &buf[header_end..payload_end];
        if crc32(payload) != stored_crc {
            return Err(SnapshotError::Corrupt {
                section: section_name(id),
                offset: pos as u64,
            });
        }
        sections.push(RawSection {
            id,
            offset: pos as u64,
            payload,
        });
        pos = payload_end;
    }
    if pos != buf.len() {
        return Err(SnapshotError::Corrupt {
            section: "container",
            offset: pos as u64,
        });
    }
    Ok(sections)
}

fn find_section<'a, 'b>(
    sections: &'b [RawSection<'a>],
    id: u8,
) -> Result<&'b RawSection<'a>, SnapshotError> {
    sections
        .iter()
        .find(|s| s.id == id)
        .ok_or(SnapshotError::StructureMismatch(match id {
            SEC_MANIFEST => "checkpoint missing manifest section",
            SEC_CONFIG => "checkpoint missing config section",
            _ => "checkpoint missing state section",
        }))
}

// ---------------------------------------------------------------------
// Encode / decode.
// ---------------------------------------------------------------------

/// Serialize a single-user engine into a sectioned, CRC-protected
/// checkpoint buffer tagged with `generation`.
pub fn checkpoint_engine_to_vec<D: Diversifier + ?Sized>(
    engine: &D,
    generation: u64,
) -> io::Result<Vec<u8>> {
    let manifest = Manifest {
        tag: engine.snapshot_tag(),
        generation,
        posts_processed: engine.metrics().posts_processed,
        name: engine.name().to_string(),
    };
    let mut mbuf = Vec::new();
    write_manifest(&mut mbuf, &manifest);
    let mut cbuf = Vec::new();
    snapshot::write_config(&mut cbuf, engine.config())?;
    let mut sbuf = Vec::new();
    engine.save_state(&mut sbuf)?;
    Ok(assemble(&[
        (SEC_MANIFEST, &mbuf),
        (SEC_CONFIG, &cbuf),
        (SEC_STATE, &sbuf),
    ]))
}

/// Serialize a multi-user strategy into a checkpoint buffer. The manifest
/// records the strategy name; restore cross-checks it so an `S_UniBin`
/// checkpoint cannot be loaded into an `S_CliqueBin`.
pub fn checkpoint_multi_to_vec<M: MultiDiversifier + ?Sized>(
    multi: &M,
    generation: u64,
) -> io::Result<Vec<u8>> {
    let manifest = Manifest {
        tag: TAG_MULTI,
        generation,
        posts_processed: multi.metrics().posts_processed,
        name: multi.name(),
    };
    let mut mbuf = Vec::new();
    write_manifest(&mut mbuf, &manifest);
    let mut sbuf = Vec::new();
    multi.save_state(&mut sbuf)?;
    Ok(assemble(&[(SEC_MANIFEST, &mbuf), (SEC_STATE, &sbuf)]))
}

fn assemble(sections: &[(u8, &Vec<u8>)]) -> Vec<u8> {
    let payload: usize = sections.iter().map(|(_, p)| p.len()).sum();
    let mut out = Vec::with_capacity(12 + sections.len() * SECTION_HEADER + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for &(id, payload) in sections {
        write_section(&mut out, id, payload);
    }
    out
}

/// Rebuild a single-user engine from a checkpoint buffer.
///
/// The caller supplies the externally-persisted structure the checkpoint
/// does not embed: the similarity graph, and (for
/// [`AlgorithmKind::CliqueBin`]) optionally a precomputed clique cover —
/// when `None`, the greedy cover is recomputed from `graph`, which yields
/// the identical cover for the identical graph.
///
/// Every byte is validated: CRCs per section, config validation, state
/// structure checks against the supplied graph, exact-consumption checks,
/// and a manifest/state `posts_processed` cross-check. Corruption surfaces
/// as a typed [`SnapshotError`] — never a panic.
pub fn restore_engine_from_slice(
    buf: &[u8],
    kind: AlgorithmKind,
    graph: Arc<UndirectedGraph>,
    cover: Option<Arc<CliqueCover>>,
) -> Result<(Box<dyn Diversifier + Send>, Manifest), SnapshotError> {
    let sections = parse_sections(buf)?;
    let manifest = parse_manifest(find_section(&sections, SEC_MANIFEST)?)?;
    let expected = snapshot::tag_for(kind);
    if manifest.tag != expected {
        return Err(SnapshotError::WrongEngine {
            found: manifest.tag,
            expected,
        });
    }
    let config_sec = find_section(&sections, SEC_CONFIG)?;
    let mut cr: &[u8] = config_sec.payload;
    let config = snapshot::read_config(&mut cr)?;
    if !cr.is_empty() {
        return Err(SnapshotError::Corrupt {
            section: "config",
            offset: config_sec.offset,
        });
    }
    let mut engine = match (kind, cover) {
        (AlgorithmKind::CliqueBin, Some(cover)) => build_cliquebin_with_cover(config, graph, cover),
        _ => build_engine(kind, config, graph),
    };
    let state_sec = find_section(&sections, SEC_STATE)?;
    let mut sr: &[u8] = state_sec.payload;
    engine.load_state(&mut sr)?;
    if !sr.is_empty() {
        return Err(SnapshotError::Corrupt {
            section: "state",
            offset: state_sec.offset,
        });
    }
    if engine.metrics().posts_processed != manifest.posts_processed {
        return Err(SnapshotError::Corrupt {
            section: "manifest",
            offset: 12,
        });
    }
    Ok((engine, manifest))
}

/// The restore-compatibility family of a multi-strategy name. The
/// sequential shared strategy (`S_X`), its batch-parallel runner
/// (`P_X(n)`), and the persistent sharded runtime (`Sh_X(n)`) all write
/// identical FHSNAP04 state, so checkpoints move freely between them at any
/// worker/shard count. `M_X` states are keyed per user and remain their own
/// family.
fn strategy_family(name: &str) -> String {
    for prefix in ["P_", "Sh_"] {
        if let Some(rest) = name.strip_prefix(prefix) {
            let base = rest.split('(').next().unwrap_or(rest);
            return format!("S_{base}");
        }
    }
    name.to_string()
}

/// Load a multi-strategy checkpoint into an already-constructed strategy of
/// the same shape (same kind, graph and subscriptions — the runner and its
/// worker count may differ — `S_X`, `P_X(n)` and `Sh_X(n)` share one
/// restore-compatibility family). Cross-checks the
/// manifest's strategy family and `posts_processed` against the target.
///
/// On error the strategy's state is unspecified and it must be rebuilt or
/// re-restored before use.
pub fn restore_multi_from_slice<M: MultiDiversifier + ?Sized>(
    buf: &[u8],
    multi: &mut M,
) -> Result<Manifest, SnapshotError> {
    let sections = parse_sections(buf)?;
    let manifest = parse_manifest(find_section(&sections, SEC_MANIFEST)?)?;
    if manifest.tag != TAG_MULTI {
        return Err(SnapshotError::WrongEngine {
            found: manifest.tag,
            expected: TAG_MULTI,
        });
    }
    if strategy_family(&manifest.name) != strategy_family(&multi.name()) {
        return Err(SnapshotError::StructureMismatch(
            "checkpoint belongs to a different multi strategy",
        ));
    }
    let state_sec = find_section(&sections, SEC_STATE)?;
    let mut sr: &[u8] = state_sec.payload;
    multi.load_state(&mut sr)?;
    if !sr.is_empty() {
        return Err(SnapshotError::Corrupt {
            section: "state",
            offset: state_sec.offset,
        });
    }
    if multi.metrics().posts_processed != manifest.posts_processed {
        return Err(SnapshotError::Corrupt {
            section: "manifest",
            offset: 12,
        });
    }
    Ok(manifest)
}

// ---------------------------------------------------------------------
// On-disk generations.
// ---------------------------------------------------------------------

/// When to take checkpoints, and how many to retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many new offers since the last checkpoint.
    pub every_offers: u64,
    /// Also checkpoint after this much wall-clock time — but only if the
    /// engine actually advanced (an idle engine is never re-checkpointed).
    /// `None` disables the timer.
    pub every_millis: Option<u64>,
    /// Retain at most this many generations (oldest pruned first). Clamped
    /// to at least 1.
    pub keep: usize,
}

impl Default for CheckpointPolicy {
    /// Every 100k offers or 5 s, keeping 3 generations. The offer cadence is
    /// sized so that even the largest engine state (NeighborBin duplicates
    /// records per author bin) costs < 5% throughput at firehose rates; the
    /// wall-clock timer bounds staleness on slow streams.
    fn default() -> Self {
        Self {
            every_offers: 100_000,
            every_millis: Some(5_000),
            keep: 3,
        }
    }
}

/// List the complete checkpoint generations under `dir`, ascending by
/// generation number. Temp directories from interrupted writes
/// (`.tmp-gen-*`) and anything else are ignored.
pub fn list_generations(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut gens = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name.strip_prefix("gen-") else {
            continue;
        };
        let Ok(g) = num.parse::<u64>() else { continue };
        if entry.file_type()?.is_dir() {
            gens.push((g, entry.path()));
        }
    }
    gens.sort_unstable_by_key(|&(g, _)| g);
    Ok(gens)
}

/// Writes generation-numbered checkpoints atomically and prunes old ones.
pub struct CheckpointManager {
    dir: PathBuf,
    policy: CheckpointPolicy,
    next_generation: u64,
    /// `posts_processed` at the last checkpoint (cadence baseline).
    last_offers: u64,
    last_save: Instant,
}

impl CheckpointManager {
    /// Open (creating if needed) a checkpoint directory. Existing
    /// generations are respected: new checkpoints continue the numbering.
    pub fn new(dir: impl Into<PathBuf>, policy: CheckpointPolicy) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let next_generation = list_generations(&dir)?
            .last()
            .map(|&(g, _)| g + 1)
            .unwrap_or(0);
        Ok(Self {
            dir,
            policy,
            next_generation,
            last_offers: 0,
            last_save: Instant::now(),
        })
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cadence/retention policy.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// Generation number the next checkpoint will get.
    pub fn next_generation(&self) -> u64 {
        self.next_generation
    }

    /// After restoring from a checkpoint, align the cadence baseline so the
    /// next `maybe_save` measures offers since *that* checkpoint, and ensure
    /// generation numbers keep increasing past the restored one.
    pub fn note_restored(&mut self, manifest: &Manifest) {
        self.last_offers = manifest.posts_processed;
        self.next_generation = self.next_generation.max(manifest.generation + 1);
        self.last_save = Instant::now();
    }

    /// Atomically persist pre-built checkpoint bytes as the next generation:
    /// write to a temp directory, fsync the file, rename the directory into
    /// place, fsync the parent. Returns the generation written.
    pub fn save_bytes(&mut self, bytes: &[u8]) -> io::Result<u64> {
        let generation = self.next_generation;
        let final_dir = self.dir.join(format!("gen-{generation:08}"));
        let tmp_dir = self.dir.join(format!(".tmp-gen-{generation:08}"));
        if tmp_dir.exists() {
            fs::remove_dir_all(&tmp_dir)?;
        }
        fs::create_dir_all(&tmp_dir)?;
        let path = tmp_dir.join(CHECKPOINT_FILE);
        let mut file = File::create(&path)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp_dir, &final_dir)?;
        // Make the rename itself durable. Directory fsync is not supported
        // everywhere (it fails on some filesystems/platforms); the rename is
        // still atomic without it, so best-effort.
        if let Ok(parent) = File::open(&self.dir) {
            let _ = parent.sync_all();
        }
        self.next_generation = generation + 1;
        self.last_save = Instant::now();
        self.prune()?;
        Ok(generation)
    }

    fn prune(&self) -> io::Result<()> {
        let gens = list_generations(&self.dir)?;
        let keep = self.policy.keep.max(1);
        if gens.len() > keep {
            for (_, path) in &gens[..gens.len() - keep] {
                // Best-effort: a prune failure must not fail the checkpoint.
                let _ = fs::remove_dir_all(path);
            }
        }
        Ok(())
    }

    /// Unconditionally checkpoint a single-user engine now.
    pub fn save<D: Diversifier + ?Sized>(&mut self, engine: &D) -> io::Result<u64> {
        let bytes = checkpoint_engine_to_vec(engine, self.next_generation)?;
        let generation = self.save_bytes(&bytes)?;
        self.last_offers = engine.metrics().posts_processed;
        Ok(generation)
    }

    /// Checkpoint the engine if the policy says one is due; returns the
    /// generation written, if any.
    pub fn maybe_save<D: Diversifier + ?Sized>(&mut self, engine: &D) -> io::Result<Option<u64>> {
        if self.due(engine.metrics().posts_processed) {
            self.save(engine).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Unconditionally checkpoint a multi-user strategy now.
    pub fn save_multi<M: MultiDiversifier + ?Sized>(&mut self, multi: &M) -> io::Result<u64> {
        let bytes = checkpoint_multi_to_vec(multi, self.next_generation)?;
        let generation = self.save_bytes(&bytes)?;
        self.last_offers = multi.metrics().posts_processed;
        Ok(generation)
    }

    /// Checkpoint the strategy if the policy says one is due.
    pub fn maybe_save_multi<M: MultiDiversifier + ?Sized>(
        &mut self,
        multi: &M,
    ) -> io::Result<Option<u64>> {
        if self.due(multi.metrics().posts_processed) {
            self.save_multi(multi).map(Some)
        } else {
            Ok(None)
        }
    }

    fn due(&self, posts_processed: u64) -> bool {
        let advanced = posts_processed.saturating_sub(self.last_offers);
        if advanced == 0 {
            return false;
        }
        if advanced >= self.policy.every_offers {
            return true;
        }
        // Consult the wall clock only every 64 offers: `maybe_save` sits on
        // the per-offer hot path, and an unconditional clock read there is
        // measurable overhead for a timer whose resolution is seconds.
        if advanced & 63 != 0 {
            return false;
        }
        match self.policy.every_millis {
            Some(ms) => self.last_save.elapsed().as_millis() as u64 >= ms,
            None => false,
        }
    }
}

/// Drive an engine over a time-ordered stream with auto-checkpointing:
/// every post is offered, and after each offer the manager checkpoints if
/// its policy says one is due. Returns every decision.
///
/// To resume after a crash, restore with [`restore_latest_valid`], call
/// [`CheckpointManager::note_restored`], then re-run the deterministic
/// input skipping the first `manifest.posts_processed` posts.
pub fn run_with_checkpoints<D: Diversifier + ?Sized>(
    engine: &mut D,
    posts: &[firehose_stream::Post],
    manager: &mut CheckpointManager,
) -> io::Result<Vec<crate::decision::Decision>> {
    let mut decisions = Vec::with_capacity(posts.len());
    for post in posts {
        decisions.push(engine.offer(post));
        manager.maybe_save(engine)?;
    }
    Ok(decisions)
}

// ---------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------

/// A checkpoint generation that failed validation during recovery, and why.
#[derive(Debug)]
pub struct SkippedGeneration {
    /// The generation number.
    pub generation: u64,
    /// Path of the rejected checkpoint file.
    pub path: PathBuf,
    /// What was wrong with it.
    pub error: SnapshotError,
}

/// Errors from [`restore_latest_valid`] / [`restore_latest_valid_multi`].
#[derive(Debug)]
pub enum RestoreError {
    /// The checkpoint directory could not be listed.
    Io(io::Error),
    /// Every present generation failed validation (or none exist). The
    /// rejects — newest first — say what was wrong with each.
    NoValidCheckpoint {
        /// Generations examined and rejected, newest first.
        skipped: Vec<SkippedGeneration>,
    },
}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "cannot list checkpoint directory: {e}"),
            RestoreError::NoValidCheckpoint { skipped } => {
                write!(f, "no valid checkpoint ({} rejected", skipped.len())?;
                for s in skipped {
                    write!(f, "; gen {}: {}", s.generation, s.error)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// A successful recovery: the rebuilt engine, its manifest, and any newer
/// generations that had to be skipped (corrupt/truncated) to reach it.
pub struct RestoredEngine {
    /// The engine, in the exact state of the restored checkpoint.
    pub engine: Box<dyn Diversifier + Send>,
    /// The restored checkpoint's manifest.
    pub manifest: Manifest,
    /// Newer generations rejected on the way, newest first.
    pub skipped: Vec<SkippedGeneration>,
}

/// Restore the newest intact checkpoint generation under `dir`, skipping —
/// and reporting — corrupt or truncated ones.
pub fn restore_latest_valid(
    dir: &Path,
    kind: AlgorithmKind,
    graph: Arc<UndirectedGraph>,
    cover: Option<Arc<CliqueCover>>,
) -> Result<RestoredEngine, RestoreError> {
    let mut skipped = Vec::new();
    for (generation, path) in list_generations(dir)?.into_iter().rev() {
        let file = path.join(CHECKPOINT_FILE);
        let attempt = fs::read(&file)
            .map_err(SnapshotError::Io)
            .and_then(|bytes| {
                restore_engine_from_slice(&bytes, kind, Arc::clone(&graph), cover.clone())
            });
        match attempt {
            Ok((engine, manifest)) => {
                return Ok(RestoredEngine {
                    engine,
                    manifest,
                    skipped,
                })
            }
            Err(error) => skipped.push(SkippedGeneration {
                generation,
                path: file,
                error,
            }),
        }
    }
    Err(RestoreError::NoValidCheckpoint { skipped })
}

/// Multi-strategy counterpart of [`restore_latest_valid`]: loads the newest
/// intact generation into `multi` (which must be freshly constructed with
/// the same kind, graph and subscriptions). Returns the restored manifest
/// and the skipped generations.
///
/// A failed attempt may leave `multi` partially written, but a subsequent
/// successful attempt overwrites every engine's state wholesale, so the
/// returned state is always exactly the restored checkpoint's.
///
/// A sharded target can *itself* fail mid-restore (a worker dies while the
/// restored engines are redeployed, and self-healing rebuilds them empty,
/// which trips the cursor cross-check). That is a target-side fault, not
/// checkpoint corruption, so when the target reports a pending
/// [`ShardFailure`](crate::multi::ShardFailure) the same generation is
/// retried — taking the failure heals the runtime — instead of being
/// skipped for an older one.
pub fn restore_latest_valid_multi<M: MultiDiversifier + ?Sized>(
    dir: &Path,
    multi: &mut M,
) -> Result<(Manifest, Vec<SkippedGeneration>), RestoreError> {
    const MAX_TARGET_RETRIES: usize = 64;
    let mut skipped = Vec::new();
    for (generation, path) in list_generations(dir)?.into_iter().rev() {
        let file = path.join(CHECKPOINT_FILE);
        let mut retries = 0;
        loop {
            let attempt = fs::read(&file)
                .map_err(SnapshotError::Io)
                .and_then(|bytes| restore_multi_from_slice(&bytes, multi));
            match attempt {
                Ok(manifest) => return Ok((manifest, skipped)),
                Err(error) => {
                    if multi.take_shard_failure().is_some() && retries < MAX_TARGET_RETRIES {
                        retries += 1;
                        continue;
                    }
                    skipped.push(SkippedGeneration {
                        generation,
                        path: file,
                        error,
                    });
                    break;
                }
            }
        }
    }
    Err(RestoreError::NoValidCheckpoint { skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use crate::multi::{SharedMulti, Subscriptions};
    use crate::EngineConfig;
    use firehose_stream::{minutes, Post};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fhckpt-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn graph() -> Arc<UndirectedGraph> {
        Arc::new(UndirectedGraph::from_edges(
            4,
            [(0, 1), (0, 2), (1, 2), (2, 3)],
        ))
    }

    fn config() -> EngineConfig {
        EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap())
    }

    fn posts(range: std::ops::Range<u64>) -> Vec<Post> {
        range
            .map(|i| {
                Post::new(
                    i,
                    (i % 4) as u32,
                    i * 30_000,
                    format!("post body variant number {}", i % 6),
                )
            })
            .collect()
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn engine_checkpoint_roundtrip_preserves_future_decisions() {
        for kind in AlgorithmKind::ALL {
            let mut original = build_engine(kind, config(), graph());
            for p in posts(0..40) {
                original.offer(&p);
            }
            let buf = checkpoint_engine_to_vec(&original, 7).unwrap();
            let (mut restored, manifest) =
                restore_engine_from_slice(&buf, kind, graph(), None).unwrap();
            assert_eq!(manifest.generation, 7);
            assert_eq!(manifest.name, kind.to_string());
            assert_eq!(restored.metrics(), original.metrics(), "{kind}");
            for p in posts(40..80) {
                assert_eq!(
                    restored.offer(&p),
                    original.offer(&p),
                    "{kind} post {}",
                    p.id
                );
            }
        }
    }

    #[test]
    fn wrong_kind_rejected() {
        let engine = build_engine(AlgorithmKind::UniBin, config(), graph());
        let buf = checkpoint_engine_to_vec(&engine, 0).unwrap();
        assert!(matches!(
            restore_engine_from_slice(&buf, AlgorithmKind::NeighborBin, graph(), None),
            Err(SnapshotError::WrongEngine { .. })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_equivalent() {
        // Flip each byte of a checkpoint (one at a time); restore must
        // either fail with a typed error or — never — succeed with different
        // future behavior. With CRCs on every section, success is impossible
        // except for flips in dead bytes, of which this format has none.
        let mut engine = build_engine(AlgorithmKind::UniBin, config(), graph());
        for p in posts(0..12) {
            engine.offer(&p);
        }
        let buf = checkpoint_engine_to_vec(&engine, 3).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                restore_engine_from_slice(&bad, AlgorithmKind::UniBin, graph(), None).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let mut engine = build_engine(AlgorithmKind::CliqueBin, config(), graph());
        for p in posts(0..12) {
            engine.offer(&p);
        }
        let buf = checkpoint_engine_to_vec(&engine, 0).unwrap();
        for cut in 0..buf.len() {
            assert!(
                restore_engine_from_slice(&buf[..cut], AlgorithmKind::CliqueBin, graph(), None)
                    .is_err(),
                "truncation at byte {cut} went undetected"
            );
        }
    }

    #[test]
    fn manager_writes_generations_and_prunes() {
        let dir = tempdir("prune");
        let policy = CheckpointPolicy {
            every_offers: 1,
            every_millis: None,
            keep: 2,
        };
        let mut mgr = CheckpointManager::new(&dir, policy).unwrap();
        let mut engine = build_engine(AlgorithmKind::UniBin, config(), graph());
        for (i, p) in posts(0..5).iter().enumerate() {
            engine.offer(p);
            assert_eq!(mgr.maybe_save(&engine).unwrap(), Some(i as u64));
        }
        let gens = list_generations(&dir).unwrap();
        assert_eq!(
            gens.iter().map(|&(g, _)| g).collect::<Vec<_>>(),
            vec![3, 4],
            "only the newest `keep` generations remain"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manager_resumes_numbering_and_idle_engines_are_not_resaved() {
        let dir = tempdir("resume");
        let policy = CheckpointPolicy {
            every_offers: 1,
            every_millis: None,
            keep: 10,
        };
        let mut engine = build_engine(AlgorithmKind::UniBin, config(), graph());
        {
            let mut mgr = CheckpointManager::new(&dir, policy).unwrap();
            engine.offer(&posts(0..1)[0]);
            mgr.save(&engine).unwrap();
        }
        let mut mgr = CheckpointManager::new(&dir, policy).unwrap();
        assert_eq!(mgr.next_generation(), 1);
        // Same posts_processed as the manager's baseline of 0? No — a fresh
        // manager has baseline 0 and the engine has advanced, so a save is
        // due; after noting the restore point, the idle engine is not.
        mgr.note_restored(&Manifest {
            tag: snapshot::tag_for(AlgorithmKind::UniBin),
            generation: 0,
            posts_processed: engine.metrics().posts_processed,
            name: "UniBin".into(),
        });
        assert_eq!(mgr.maybe_save(&engine).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_latest_valid_skips_corrupt_generations() {
        let dir = tempdir("skip");
        let mut mgr = CheckpointManager::new(&dir, CheckpointPolicy::default()).unwrap();
        let mut engine = build_engine(AlgorithmKind::UniBin, config(), graph());
        for p in posts(0..10) {
            engine.offer(&p);
        }
        mgr.save(&engine).unwrap(); // gen 0: good
        for p in posts(10..20) {
            engine.offer(&p);
        }
        let gen1 = mgr.save(&engine).unwrap(); // gen 1: will be corrupted
        let victim = dir.join(format!("gen-{gen1:08}")).join(CHECKPOINT_FILE);
        let mut bytes = fs::read(&victim).unwrap();
        // Flip the final byte: always inside the state payload, so the
        // state section's CRC must catch it.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();

        let restored = restore_latest_valid(&dir, AlgorithmKind::UniBin, graph(), None).unwrap();
        assert_eq!(restored.manifest.generation, 0);
        assert_eq!(restored.manifest.posts_processed, 10);
        assert_eq!(restored.skipped.len(), 1);
        assert_eq!(restored.skipped[0].generation, gen1);
        assert!(matches!(
            restored.skipped[0].error,
            SnapshotError::Corrupt { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_all_corrupt_directory_reports_no_valid_checkpoint() {
        let dir = tempdir("none");
        assert!(matches!(
            restore_latest_valid(&dir, AlgorithmKind::UniBin, graph(), None),
            Err(RestoreError::NoValidCheckpoint { skipped }) if skipped.is_empty()
        ));
        // A lone torn generation: rejected, reported.
        fs::create_dir_all(dir.join("gen-00000000")).unwrap();
        fs::write(
            dir.join("gen-00000000").join(CHECKPOINT_FILE),
            b"FHCKPT01 torn garbage",
        )
        .unwrap();
        assert!(matches!(
            restore_latest_valid(&dir, AlgorithmKind::UniBin, graph(), None),
            Err(RestoreError::NoValidCheckpoint { skipped }) if skipped.len() == 1
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_tmp_dirs_are_ignored() {
        let dir = tempdir("tmp");
        let mut mgr = CheckpointManager::new(&dir, CheckpointPolicy::default()).unwrap();
        let engine = build_engine(AlgorithmKind::UniBin, config(), graph());
        mgr.save_bytes(&checkpoint_engine_to_vec(&engine, 0).unwrap())
            .unwrap();
        // Simulate a crash mid-write: a stale temp dir with garbage.
        let stale = dir.join(".tmp-gen-00000007");
        fs::create_dir_all(&stale).unwrap();
        fs::write(stale.join(CHECKPOINT_FILE), b"half a checkpoint").unwrap();
        assert_eq!(list_generations(&dir).unwrap().len(), 1);
        assert!(restore_latest_valid(&dir, AlgorithmKind::UniBin, graph(), None).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn multi_checkpoint_roundtrip() {
        let g = UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]);
        let subs = Subscriptions::new(6, vec![vec![0, 1, 3, 5], vec![0, 1, 3, 4, 5]]).unwrap();
        let stream: Vec<Post> = (0..60u64)
            .map(|i| {
                Post::new(
                    i,
                    (i % 6) as u32,
                    i * 5_000,
                    format!("content group {}", i % 9),
                )
            })
            .collect();
        let mut original = SharedMulti::new(AlgorithmKind::UniBin, config(), &g, subs.clone());
        for p in &stream[..30] {
            original.offer(p);
        }
        let buf = checkpoint_multi_to_vec(&original, 2).unwrap();
        let mut restored = SharedMulti::new(AlgorithmKind::UniBin, config(), &g, subs.clone());
        let manifest = restore_multi_from_slice(&buf, &mut restored).unwrap();
        assert_eq!(manifest.name, "S_UniBin");
        assert_eq!(restored.metrics(), original.metrics());
        for p in &stream[30..] {
            assert_eq!(restored.offer(p), original.offer(p), "post {}", p.id);
        }

        // Restoring into a different strategy shape is rejected, not UB.
        let mut wrong = SharedMulti::new(AlgorithmKind::CliqueBin, config(), &g, subs);
        assert!(matches!(
            restore_multi_from_slice(&buf, &mut wrong),
            Err(SnapshotError::StructureMismatch(_))
        ));
    }

    #[test]
    fn strategy_families_group_shared_runners() {
        assert_eq!(strategy_family("S_UniBin"), "S_UniBin");
        assert_eq!(strategy_family("P_UniBin(4)"), "S_UniBin");
        assert_eq!(strategy_family("Sh_UniBin(2)"), "S_UniBin");
        assert_eq!(strategy_family("Sh_CliqueBin(8)"), "S_CliqueBin");
        assert_eq!(strategy_family("M_UniBin"), "M_UniBin");
        assert_ne!(
            strategy_family("Sh_UniBin(2)"),
            strategy_family("S_CliqueBin")
        );
    }

    /// The sharded↔sequential compatibility matrix: a checkpoint taken by
    /// any shared-family runner restores into any other, at any shard
    /// count, and continues byte-identically.
    #[test]
    fn multi_checkpoint_crosses_runner_families() {
        let g = UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]);
        let subs = Subscriptions::new(6, vec![vec![0, 1, 3, 5], vec![0, 1, 3, 4, 5]]).unwrap();
        let stream: Vec<Post> = (0..60u64)
            .map(|i| {
                Post::new(
                    i,
                    (i % 6) as u32,
                    i * 5_000,
                    format!("content group {}", i % 9),
                )
            })
            .collect();
        let mut sharded =
            crate::multi::ShardedMulti::new(AlgorithmKind::UniBin, config(), &g, subs.clone(), 4)
                .unwrap();
        for p in &stream[..30] {
            sharded.offer(p);
        }
        let buf = checkpoint_multi_to_vec(&sharded, 1).unwrap();
        let expected: Vec<_> = stream[30..].iter().map(|p| sharded.offer(p)).collect();

        // Sharded(4) checkpoint → sequential SharedMulti.
        let mut seq = SharedMulti::new(AlgorithmKind::UniBin, config(), &g, subs.clone());
        let manifest = restore_multi_from_slice(&buf, &mut seq).unwrap();
        assert_eq!(manifest.name, "Sh_UniBin(4)");
        let got: Vec<_> = stream[30..].iter().map(|p| seq.offer(p)).collect();
        assert_eq!(got, expected);

        // Sequential checkpoint → sharded(2).
        let mut seq2 = SharedMulti::new(AlgorithmKind::UniBin, config(), &g, subs.clone());
        for p in &stream[..30] {
            seq2.offer(p);
        }
        let seq_buf = checkpoint_multi_to_vec(&seq2, 1).unwrap();
        let mut sharded2 =
            crate::multi::ShardedMulti::new(AlgorithmKind::UniBin, config(), &g, subs.clone(), 2)
                .unwrap();
        restore_multi_from_slice(&seq_buf, &mut sharded2).unwrap();
        let got: Vec<_> = stream[30..].iter().map(|p| sharded2.offer(p)).collect();
        assert_eq!(got, expected);

        // A different kind is still rejected across families.
        let mut wrong =
            crate::multi::ShardedMulti::new(AlgorithmKind::CliqueBin, config(), &g, subs, 2)
                .unwrap();
        assert!(matches!(
            restore_multi_from_slice(&buf, &mut wrong),
            Err(SnapshotError::StructureMismatch(_))
        ));
    }
}
