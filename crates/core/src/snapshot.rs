//! Engine state snapshot / restore.
//!
//! A diversification engine is a long-running stateful stream processor;
//! restarting one cold silently re-emits every post the previous incarnation
//! already showed (nothing is in the window). These functions serialize an
//! engine's bins, counters and configuration so a restarted process resumes
//! with exactly the same future decisions.
//!
//! The similarity graph / clique cover are *not* embedded — they are large
//! shared artifacts with their own persistence (`firehose_graph::io`); the
//! caller supplies them on restore, and structural mismatches are rejected.
//!
//! Format (little-endian): magic `FHSNAP04`, engine tag, the full
//! [`EngineConfig`], the [`EngineMetrics`] counters, then the bins — a
//! deduplicated unique-record table plus per-bin index lists for the
//! multi-bin engines (a record lives in ~`degree` bins, so this shrinks
//! state by that factor). The magic doubles as the format version
//! (`FHSNAP01` lacked `expected_rate`, `FHSNAP02` duplicated records per
//! bin), so old snapshots are rejected rather than misparsed.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

use firehose_graph::{CliqueCover, UndirectedGraph};
use firehose_simhash::SimHashOptions;
use firehose_stream::{AuthorId, PostRecord};
use firehose_text::tokenize::TokenWeights;
use firehose_text::NormalizeOptions;

use crate::backend::CoverageBackend;
use crate::config::{ApproxConfig, EngineConfig, MemoryMode, Thresholds};
use crate::engine::{CliqueBin, Diversifier, NeighborBin, UniBin};
use crate::metrics::EngineMetrics;

const MAGIC: &[u8; 8] = b"FHSNAP04";
/// The previous single-engine format: identical wire layout, older magic.
/// Readers accept both so snapshots taken before the churn release restore.
const MAGIC_V3: &[u8; 8] = b"FHSNAP03";
pub(crate) const TAG_UNIBIN: u8 = 1;
pub(crate) const TAG_NEIGHBORBIN: u8 = 2;
pub(crate) const TAG_CLIQUEBIN: u8 = 3;

/// Marker prefixing an optional memory-mode section in the config header.
/// It occupies the `λc` position and can never collide with a real `λc`
/// (validated ≤ 64), so exact-mode snapshots stay byte-identical to the
/// pre-approx format and legacy readers' configs parse unchanged.
const MEMORY_MODE_SENTINEL: u32 = 0xFFFF_FFFF;

/// Snapshot/checkpoint tag identifying an [`AlgorithmKind`].
pub(crate) fn tag_for(kind: crate::engine::AlgorithmKind) -> u8 {
    match kind {
        crate::engine::AlgorithmKind::UniBin => TAG_UNIBIN,
        crate::engine::AlgorithmKind::NeighborBin => TAG_NEIGHBORBIN,
        crate::engine::AlgorithmKind::CliqueBin => TAG_CLIQUEBIN,
    }
}

/// Cap on length-prefix-driven pre-allocation while deserializing. A corrupt
/// or hostile length field must cost at most ~tens of MB of reservation, not
/// an abort inside the allocator; genuine larger collections still load —
/// they just grow by doubling past the reservation.
pub(crate) const MAX_PREALLOC: usize = 1 << 20;

/// Errors from the `restore_*` functions.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot file.
    BadMagic,
    /// The snapshot holds a different engine kind than requested.
    WrongEngine {
        /// Tag found in the snapshot.
        found: u8,
        /// Tag the caller asked to restore.
        expected: u8,
    },
    /// The supplied graph/cover does not match the snapshot's structure.
    StructureMismatch(&'static str),
    /// The stored configuration fails validation.
    BadConfig(crate::config::ConfigError),
    /// The bytes are structurally invalid — detected corruption (CRC
    /// mismatch, impossible length, trailing garbage) rather than a clean
    /// version/kind mismatch.
    Corrupt {
        /// Which section / structure the corruption was found in.
        section: &'static str,
        /// Byte offset of the corrupt structure within its container.
        offset: u64,
    },
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a firehose snapshot"),
            SnapshotError::WrongEngine { found, expected } => {
                write!(f, "snapshot holds engine tag {found}, expected {expected}")
            }
            SnapshotError::StructureMismatch(what) => {
                write!(f, "snapshot does not match supplied structure: {what}")
            }
            SnapshotError::BadConfig(e) => write!(f, "invalid stored config: {e}"),
            SnapshotError::Corrupt { section, offset } => {
                write!(f, "corrupt {section} section at byte {offset}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

fn w_u32<W: Write + ?Sized>(w: &mut W, x: u32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}
fn w_u64<W: Write + ?Sized>(w: &mut W, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}
fn w_f64<W: Write + ?Sized>(w: &mut W, x: f64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}
fn r_u32<R: Read + ?Sized>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64<R: Read + ?Sized>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f64<R: Read + ?Sized>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}
fn w_bool<W: Write + ?Sized>(w: &mut W, x: bool) -> io::Result<()> {
    w.write_all(&[u8::from(x)])
}
fn r_bool<R: Read + ?Sized>(r: &mut R) -> io::Result<bool> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0] != 0)
}

pub(crate) fn write_config<W: Write + ?Sized>(w: &mut W, c: &EngineConfig) -> io::Result<()> {
    if let MemoryMode::Approx(approx) = c.memory {
        w_u32(w, MEMORY_MODE_SENTINEL)?;
        w_u32(w, approx.probes())?;
        w_u32(w, approx.bucket_budget())?;
        w_u32(w, approx.granularity())?;
    }
    w_u32(w, c.thresholds.lambda_c)?;
    w_u64(w, c.thresholds.lambda_t)?;
    w_f64(w, c.thresholds.lambda_a)?;
    let n = c.simhash.normalize;
    w_bool(w, n.lowercase)?;
    w_bool(w, n.collapse_whitespace)?;
    w_bool(w, n.strip_non_alphanumeric)?;
    w_bool(w, n.keep_social_sigils)?;
    let weights = c.simhash.weights;
    w_f64(w, weights.word)?;
    w_f64(w, weights.hashtag)?;
    w_f64(w, weights.mention)?;
    w_f64(w, weights.url)?;
    w_u32(w, c.simhash.ngram as u32)?;
    w_f64(w, c.expected_rate)
}

pub(crate) fn read_config<R: Read + ?Sized>(r: &mut R) -> Result<EngineConfig, SnapshotError> {
    let first = r_u32(r)?;
    let (memory, lambda_c) = if first == MEMORY_MODE_SENTINEL {
        let probes = r_u32(r)?;
        let bucket_budget = r_u32(r)?;
        let granularity = r_u32(r)?;
        let approx = ApproxConfig::new(probes, bucket_budget, granularity)
            .map_err(SnapshotError::BadConfig)?;
        (MemoryMode::Approx(approx), r_u32(r)?)
    } else {
        (MemoryMode::Exact, first)
    };
    let lambda_t = r_u64(r)?;
    let lambda_a = r_f64(r)?;
    let thresholds =
        Thresholds::new(lambda_c, lambda_t, lambda_a).map_err(SnapshotError::BadConfig)?;
    let normalize = NormalizeOptions {
        lowercase: r_bool(r)?,
        collapse_whitespace: r_bool(r)?,
        strip_non_alphanumeric: r_bool(r)?,
        keep_social_sigils: r_bool(r)?,
    };
    let weights = TokenWeights {
        word: r_f64(r)?,
        hashtag: r_f64(r)?,
        mention: r_f64(r)?,
        url: r_f64(r)?,
    };
    let ngram = r_u32(r)? as usize;
    let expected_rate = r_f64(r)?;
    Ok(EngineConfig {
        thresholds,
        simhash: SimHashOptions {
            normalize,
            weights,
            ngram,
        },
        expected_rate,
        memory,
    })
}

fn write_metrics<W: Write + ?Sized>(w: &mut W, m: &EngineMetrics) -> io::Result<()> {
    for x in [
        m.posts_processed,
        m.posts_emitted,
        m.comparisons,
        m.insertions,
        m.evictions,
        m.copies_stored,
        m.peak_copies,
        m.peak_memory_bytes,
    ] {
        w_u64(w, x)?;
    }
    Ok(())
}

fn read_metrics<R: Read + ?Sized>(r: &mut R) -> io::Result<EngineMetrics> {
    Ok(EngineMetrics {
        posts_processed: r_u64(r)?,
        posts_emitted: r_u64(r)?,
        comparisons: r_u64(r)?,
        insertions: r_u64(r)?,
        evictions: r_u64(r)?,
        copies_stored: r_u64(r)?,
        peak_copies: r_u64(r)?,
        peak_memory_bytes: r_u64(r)?,
    })
}

fn write_bin<W: Write + ?Sized>(w: &mut W, bin: &CoverageBackend) -> io::Result<()> {
    w_u32(w, bin.len() as u32)?;
    let mut err = None;
    bin.for_each_record(|record| {
        if err.is_some() {
            return;
        }
        err = [
            w_u64(w, record.id),
            w_u32(w, record.author),
            w_u64(w, record.timestamp),
            w_u64(w, record.fingerprint),
        ]
        .into_iter()
        .find_map(Result::err);
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn read_bin<R: Read + ?Sized>(
    r: &mut R,
    config: &EngineConfig,
) -> Result<CoverageBackend, SnapshotError> {
    let len = r_u32(r)?;
    // Reserve at most MAX_PREALLOC records up front: `len` is untrusted
    // (a flipped bit in a length field must not become a multi-GB
    // allocation); a lying length fails the per-record reads instead.
    let mut bin = CoverageBackend::for_config(config, (len as usize).min(MAX_PREALLOC));
    let mut prev = 0u64;
    for _ in 0..len {
        let record = PostRecord {
            id: r_u64(r)?,
            author: r_u32(r)?,
            timestamp: r_u64(r)?,
            fingerprint: r_u64(r)?,
        };
        if record.timestamp < prev {
            return Err(SnapshotError::StructureMismatch(
                "bin records out of time order",
            ));
        }
        prev = record.timestamp;
        // Re-inserting the saved suffix cannot displace: the saved contents
        // already satisfied the retention caps they are restored under.
        bin.push(record);
    }
    Ok(bin)
}

/// Serialize a family of bins that share record copies (NeighborBin stores
/// each record once per similar-author bin, CliqueBin once per covering
/// clique — on average `degree`-many copies). The wire format stores each
/// unique record once (first-seen order, keyed by post id) followed by one
/// `u32` index list per bin, shrinking the state by roughly the average
/// degree — which is what makes the default checkpoint cadence cheap.
fn write_bins_dedup<W: Write + ?Sized>(w: &mut W, bins: &[&CoverageBackend]) -> io::Result<()> {
    let mut index_of: HashMap<u64, u32> = HashMap::new();
    let mut uniques: Vec<PostRecord> = Vec::new();
    for bin in bins {
        bin.for_each_record(|record| {
            index_of.entry(record.id).or_insert_with(|| {
                uniques.push(record);
                (uniques.len() - 1) as u32
            });
        });
    }
    w_u32(w, uniques.len() as u32)?;
    for record in &uniques {
        w_u64(w, record.id)?;
        w_u32(w, record.author)?;
        w_u64(w, record.timestamp)?;
        w_u64(w, record.fingerprint)?;
    }
    for bin in bins {
        w_u32(w, bin.len() as u32)?;
        let mut err = None;
        bin.for_each_record(|record| {
            if err.is_none() {
                err = w_u32(w, index_of[&record.id]).err();
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(())
}

/// Inverse of [`write_bins_dedup`]: rebuild `bin_count` bins. Every length,
/// index and record field is untrusted — out-of-range indices, authors
/// beyond `author_count` and out-of-time-order bins are rejected.
fn read_bins_dedup<R: Read + ?Sized>(
    r: &mut R,
    config: &EngineConfig,
    bin_count: usize,
    author_count: usize,
) -> Result<Vec<CoverageBackend>, SnapshotError> {
    let unique_count = r_u32(r)? as usize;
    let mut uniques = Vec::with_capacity(unique_count.min(MAX_PREALLOC));
    for _ in 0..unique_count {
        let record = PostRecord {
            id: r_u64(r)?,
            author: r_u32(r)?,
            timestamp: r_u64(r)?,
            fingerprint: r_u64(r)?,
        };
        if record.author as usize >= author_count {
            return Err(SnapshotError::StructureMismatch(
                "record author outside graph",
            ));
        }
        uniques.push(record);
    }
    let mut bins = Vec::with_capacity(bin_count.min(MAX_PREALLOC));
    for _ in 0..bin_count {
        let len = r_u32(r)? as usize;
        let mut bin = CoverageBackend::for_config(config, len.min(MAX_PREALLOC));
        let mut prev = 0u64;
        for _ in 0..len {
            let idx = r_u32(r)? as usize;
            let record = *uniques.get(idx).ok_or(SnapshotError::StructureMismatch(
                "bin references a record outside the unique table",
            ))?;
            if record.timestamp < prev {
                return Err(SnapshotError::StructureMismatch(
                    "bin records out of time order",
                ));
            }
            prev = record.timestamp;
            bin.push(record);
        }
        bins.push(bin);
    }
    Ok(bins)
}

fn read_header<R: Read + ?Sized>(
    r: &mut R,
    expected_tag: u8,
) -> Result<EngineConfig, SnapshotError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC && &magic != MAGIC_V3 {
        return Err(SnapshotError::BadMagic);
    }
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    if tag[0] != expected_tag {
        return Err(SnapshotError::WrongEngine {
            found: tag[0],
            expected: expected_tag,
        });
    }
    read_config(r)
}

// ---------------------------------------------------------------------
// Engine *state* (metrics + bins, no header/config): the payload shared by
// whole-file snapshots below and the sectioned checkpoints in
// `crate::checkpoint`, via `Diversifier::{save_state, load_state}`.
// ---------------------------------------------------------------------

pub(crate) fn write_state_unibin<W: Write + ?Sized>(
    w: &mut W,
    bin: &CoverageBackend,
    metrics: &EngineMetrics,
) -> io::Result<()> {
    write_metrics(w, metrics)?;
    write_bin(w, bin)
}

pub(crate) fn read_state_unibin<R: Read + ?Sized>(
    r: &mut R,
    config: &EngineConfig,
    graph: &UndirectedGraph,
) -> Result<(CoverageBackend, EngineMetrics), SnapshotError> {
    let metrics = read_metrics(r)?;
    let bin = read_bin(r, config)?;
    let mut bad_author = false;
    bin.for_each_record(|record| {
        bad_author |= record.author as usize >= graph.node_count();
    });
    if bad_author {
        return Err(SnapshotError::StructureMismatch(
            "record author outside graph",
        ));
    }
    Ok((bin, metrics))
}

pub(crate) fn write_state_neighborbin<W: Write + ?Sized>(
    w: &mut W,
    bins: &[CoverageBackend],
    metrics: &EngineMetrics,
) -> io::Result<()> {
    write_metrics(w, metrics)?;
    w_u32(w, bins.len() as u32)?;
    let refs: Vec<&CoverageBackend> = bins.iter().collect();
    write_bins_dedup(w, &refs)
}

pub(crate) fn read_state_neighborbin<R: Read + ?Sized>(
    r: &mut R,
    config: &EngineConfig,
    graph: &UndirectedGraph,
) -> Result<(Vec<CoverageBackend>, EngineMetrics), SnapshotError> {
    let metrics = read_metrics(r)?;
    let count = r_u32(r)? as usize;
    if count != graph.node_count() {
        return Err(SnapshotError::StructureMismatch(
            "bin count != author count",
        ));
    }
    let bins = read_bins_dedup(r, config, count, graph.node_count())?;
    Ok((bins, metrics))
}

#[allow(clippy::type_complexity)]
pub(crate) fn write_state_cliquebin<W: Write + ?Sized>(
    w: &mut W,
    clique_bins: &[CoverageBackend],
    self_bins: &HashMap<AuthorId, CoverageBackend>,
    metrics: &EngineMetrics,
) -> io::Result<()> {
    write_metrics(w, metrics)?;
    w_u32(w, clique_bins.len() as u32)?;
    w_u32(w, self_bins.len() as u32)?;
    let mut authors: Vec<AuthorId> = self_bins.keys().copied().collect();
    authors.sort_unstable();
    for &author in &authors {
        w_u32(w, author)?;
    }
    // One unique table shared by clique bins and self bins: a record lives
    // in every covering clique *and* its author's self bin.
    let mut refs: Vec<&CoverageBackend> = clique_bins.iter().collect();
    refs.extend(authors.iter().map(|a| &self_bins[a]));
    write_bins_dedup(w, &refs)
}

#[allow(clippy::type_complexity)]
pub(crate) fn read_state_cliquebin<R: Read + ?Sized>(
    r: &mut R,
    config: &EngineConfig,
    author_count: usize,
    cover: &CliqueCover,
) -> Result<
    (
        Vec<CoverageBackend>,
        HashMap<AuthorId, CoverageBackend>,
        EngineMetrics,
    ),
    SnapshotError,
> {
    let metrics = read_metrics(r)?;
    let clique_count = r_u32(r)? as usize;
    if clique_count != cover.count() {
        return Err(SnapshotError::StructureMismatch(
            "clique bin count != cover cliques",
        ));
    }
    let self_count = r_u32(r)? as usize;
    let mut authors = Vec::with_capacity(self_count.min(MAX_PREALLOC));
    let mut prev: Option<AuthorId> = None;
    for _ in 0..self_count {
        let author = r_u32(r)?;
        if author as usize >= author_count {
            return Err(SnapshotError::StructureMismatch(
                "self-bin author outside graph",
            ));
        }
        if prev.is_some_and(|p| p >= author) {
            return Err(SnapshotError::StructureMismatch(
                "self-bin authors not strictly ascending",
            ));
        }
        prev = Some(author);
        authors.push(author);
    }
    let mut bins = read_bins_dedup(r, config, clique_count + self_count, author_count)?;
    let self_bins: HashMap<AuthorId, CoverageBackend> = authors
        .into_iter()
        .zip(bins.drain(clique_count..))
        .collect();
    Ok((bins, self_bins, metrics))
}

// ---------------------------------------------------------------------
// Whole-file snapshots: magic + tag + config header, then the state.
// ---------------------------------------------------------------------

/// Snapshot a [`UniBin`].
pub fn snapshot_unibin<W: Write>(engine: &UniBin, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[TAG_UNIBIN])?;
    write_config(w, engine.config())?;
    let (bin, metrics) = engine.parts();
    write_state_unibin(w, bin, metrics)
}

/// Restore a [`UniBin`] over the (externally persisted) similarity graph.
pub fn restore_unibin<R: Read>(
    r: &mut R,
    graph: Arc<UndirectedGraph>,
) -> Result<UniBin, SnapshotError> {
    let config = read_header(r, TAG_UNIBIN)?;
    let (bin, metrics) = read_state_unibin(r, &config, &graph)?;
    Ok(UniBin::from_parts(config, graph, bin, metrics))
}

/// Snapshot a [`NeighborBin`].
pub fn snapshot_neighborbin<W: Write>(engine: &NeighborBin, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[TAG_NEIGHBORBIN])?;
    write_config(w, engine.config())?;
    let (bins, metrics) = engine.parts();
    write_state_neighborbin(w, bins, metrics)
}

/// Restore a [`NeighborBin`]; `graph` must have the same author count the
/// snapshot was taken with.
pub fn restore_neighborbin<R: Read>(
    r: &mut R,
    graph: Arc<UndirectedGraph>,
) -> Result<NeighborBin, SnapshotError> {
    let config = read_header(r, TAG_NEIGHBORBIN)?;
    let (bins, metrics) = read_state_neighborbin(r, &config, &graph)?;
    Ok(NeighborBin::from_parts(config, graph, bins, metrics))
}

/// Snapshot a [`CliqueBin`].
pub fn snapshot_cliquebin<W: Write>(engine: &CliqueBin, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[TAG_CLIQUEBIN])?;
    write_config(w, engine.config())?;
    let (clique_bins, self_bins, metrics) = engine.parts();
    write_state_cliquebin(w, clique_bins, self_bins, metrics)
}

/// Restore a [`CliqueBin`]; `graph` and `cover` must structurally match the
/// snapshot (same author count and clique count).
pub fn restore_cliquebin<R: Read>(
    r: &mut R,
    graph: Arc<UndirectedGraph>,
    cover: Arc<CliqueCover>,
) -> Result<CliqueBin, SnapshotError> {
    let config = read_header(r, TAG_CLIQUEBIN)?;
    let (clique_bins, self_bins, metrics) =
        read_state_cliquebin(r, &config, graph.node_count(), &cover)?;
    Ok(CliqueBin::from_parts(
        config,
        graph,
        cover,
        clique_bins,
        self_bins,
        metrics,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Diversifier;
    use firehose_graph::greedy_clique_cover;
    use firehose_stream::{minutes, Post};

    fn graph() -> Arc<UndirectedGraph> {
        Arc::new(UndirectedGraph::from_edges(
            4,
            [(0, 1), (0, 2), (1, 2), (2, 3)],
        ))
    }

    fn posts(range: std::ops::Range<u64>) -> Vec<Post> {
        range
            .map(|i| {
                Post::new(
                    i,
                    (i % 4) as u32,
                    i * 30_000,
                    format!("post body variant number {}", i % 6),
                )
            })
            .collect()
    }

    fn config() -> EngineConfig {
        EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap())
    }

    /// Snapshot after the first half of the stream; the restored engine and
    /// the original must make identical decisions (and counters) on the rest.
    #[test]
    fn unibin_roundtrip_preserves_future_decisions() {
        let mut original = UniBin::new(config(), graph());
        for p in posts(0..40) {
            original.offer(&p);
        }
        let mut buf = Vec::new();
        snapshot_unibin(&original, &mut buf).unwrap();
        let mut restored = restore_unibin(&mut buf.as_slice(), graph()).unwrap();
        assert_eq!(restored.metrics(), original.metrics());

        for p in posts(40..80) {
            assert_eq!(restored.offer(&p), original.offer(&p), "post {}", p.id);
        }
        assert_eq!(restored.metrics(), original.metrics());
    }

    #[test]
    fn neighborbin_roundtrip() {
        let mut original = NeighborBin::new(config(), graph());
        for p in posts(0..40) {
            original.offer(&p);
        }
        let mut buf = Vec::new();
        snapshot_neighborbin(&original, &mut buf).unwrap();
        let mut restored = restore_neighborbin(&mut buf.as_slice(), graph()).unwrap();
        for p in posts(40..80) {
            assert_eq!(restored.offer(&p), original.offer(&p), "post {}", p.id);
        }
    }

    #[test]
    fn cliquebin_roundtrip_including_self_bins() {
        // Author 4 is isolated: exercises the self-bin path.
        let g = Arc::new(UndirectedGraph::from_edges(
            5,
            [(0, 1), (0, 2), (1, 2), (2, 3)],
        ));
        let cover = Arc::new(greedy_clique_cover(&g));
        let mut original = CliqueBin::with_cover(config(), Arc::clone(&g), Arc::clone(&cover));
        for i in 0..40u64 {
            let p = Post::new(i, (i % 5) as u32, i * 30_000, format!("text {}", i % 6));
            original.offer(&p);
        }
        let mut buf = Vec::new();
        snapshot_cliquebin(&original, &mut buf).unwrap();
        let mut restored = restore_cliquebin(&mut buf.as_slice(), Arc::clone(&g), cover).unwrap();
        for i in 40..80u64 {
            let p = Post::new(i, (i % 5) as u32, i * 30_000, format!("text {}", i % 6));
            assert_eq!(restored.offer(&p), original.offer(&p), "post {i}");
        }
    }

    #[test]
    fn config_survives_roundtrip() {
        let custom = EngineConfig {
            thresholds: Thresholds::new(9, minutes(7), 0.55).unwrap(),
            simhash: SimHashOptions {
                normalize: NormalizeOptions::raw(),
                weights: TokenWeights {
                    hashtag: 2.5,
                    ..TokenWeights::uniform()
                },
                ngram: 2,
            },
            expected_rate: 12.5,
            memory: MemoryMode::Exact,
        };
        let engine = UniBin::new(custom, graph());
        let mut buf = Vec::new();
        snapshot_unibin(&engine, &mut buf).unwrap();
        let restored = restore_unibin(&mut buf.as_slice(), graph()).unwrap();
        assert_eq!(restored.config(), &custom);
    }

    #[test]
    fn approx_config_survives_roundtrip_via_sentinel() {
        let mut custom = config();
        custom.memory = MemoryMode::Approx(crate::config::ApproxConfig::new(6, 32, 12).unwrap());
        let engine = UniBin::new(custom, graph());
        let mut buf = Vec::new();
        snapshot_unibin(&engine, &mut buf).unwrap();
        let restored = restore_unibin(&mut buf.as_slice(), graph()).unwrap();
        assert_eq!(restored.config(), &custom);
    }

    #[test]
    fn exact_snapshot_layout_has_no_sentinel() {
        // Exact-mode snapshots must stay byte-identical to the pre-approx
        // format: the first config word is the real λc, not the marker.
        let engine = UniBin::new(config(), graph());
        let mut buf = Vec::new();
        snapshot_unibin(&engine, &mut buf).unwrap();
        // magic (8) + tag (1), then λc as LE u32.
        assert_eq!(u32::from_le_bytes(buf[9..13].try_into().unwrap()), 18);
    }

    #[test]
    fn approx_engines_roundtrip_preserves_future_decisions() {
        let mut cfg = config();
        cfg.memory = MemoryMode::Approx(crate::config::ApproxConfig::default());
        let mut original = UniBin::new(cfg, graph());
        for p in posts(0..40) {
            original.offer(&p);
        }
        let mut buf = Vec::new();
        snapshot_unibin(&original, &mut buf).unwrap();
        let mut restored = restore_unibin(&mut buf.as_slice(), graph()).unwrap();
        assert_eq!(restored.metrics(), original.metrics());
        for p in posts(40..80) {
            assert_eq!(restored.offer(&p), original.offer(&p), "post {}", p.id);
        }
        assert_eq!(restored.metrics(), original.metrics());

        let mut original = NeighborBin::new(cfg, graph());
        for p in posts(0..40) {
            original.offer(&p);
        }
        let mut buf = Vec::new();
        snapshot_neighborbin(&original, &mut buf).unwrap();
        let mut restored = restore_neighborbin(&mut buf.as_slice(), graph()).unwrap();
        for p in posts(40..80) {
            assert_eq!(restored.offer(&p), original.offer(&p), "post {}", p.id);
        }
    }

    #[test]
    fn wrong_engine_tag_rejected() {
        let engine = UniBin::new(config(), graph());
        let mut buf = Vec::new();
        snapshot_unibin(&engine, &mut buf).unwrap();
        assert!(matches!(
            restore_neighborbin(&mut buf.as_slice(), graph()),
            Err(SnapshotError::WrongEngine {
                found: TAG_UNIBIN,
                expected: TAG_NEIGHBORBIN
            })
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOT_SNAP_AT_ALL".to_vec();
        assert!(matches!(
            restore_unibin(&mut buf.as_slice(), graph()),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn structure_mismatch_rejected() {
        let mut engine = NeighborBin::new(config(), graph());
        engine.offer(&Post::new(1, 0, 0, "anything at all".into()));
        let mut buf = Vec::new();
        snapshot_neighborbin(&engine, &mut buf).unwrap();
        // A graph with a different author count must be rejected.
        let other = Arc::new(UndirectedGraph::new(9));
        assert!(matches!(
            restore_neighborbin(&mut buf.as_slice(), other),
            Err(SnapshotError::StructureMismatch(_))
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let mut engine = UniBin::new(config(), graph());
        for p in posts(0..10) {
            engine.offer(&p);
        }
        let mut buf = Vec::new();
        snapshot_unibin(&engine, &mut buf).unwrap();
        let cut = buf.len() - 5;
        assert!(restore_unibin(&mut &buf[..cut], graph()).is_err());
    }
}
