//! Iterator adapter: filter a post stream through a diversifier.
//!
//! SPSD is deliberately an online filter — "we cannot first view the whole
//! stream and then decide" — which maps naturally onto a lazy iterator
//! adapter: pull posts from any source, emit only the uncovered ones.

use firehose_stream::Post;

use crate::engine::Diversifier;

/// An iterator over the diversified sub-stream `Z` of an inner post stream.
///
/// Created by [`DiversifyExt::diversify`].
pub struct Diversified<I, D> {
    inner: I,
    engine: D,
}

impl<I, D> Diversified<I, D> {
    /// Recover the engine (e.g. for its metrics) after consuming the stream.
    pub fn into_engine(self) -> D {
        self.engine
    }

    /// Borrow the engine (metrics mid-stream).
    pub fn engine(&self) -> &D {
        &self.engine
    }
}

impl<I, D> Iterator for Diversified<I, D>
where
    I: Iterator<Item = Post>,
    D: Diversifier,
{
    type Item = Post;

    fn next(&mut self) -> Option<Post> {
        loop {
            let post = self.inner.next()?;
            if self.engine.offer(&post).is_emitted() {
                return Some(post);
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Everything may be covered, or nothing.
        (0, self.inner.size_hint().1)
    }
}

/// Extension trait adding [`diversify`](DiversifyExt::diversify) to any
/// time-ordered post iterator.
///
/// ```
/// use firehose_core::{DiversifyExt, EngineConfig};
/// use firehose_core::engine::UniBin;
/// use firehose_graph::UndirectedGraph;
/// use firehose_stream::Post;
/// use std::sync::Arc;
///
/// let engine = UniBin::new(EngineConfig::paper_defaults(), Arc::new(UndirectedGraph::new(1)));
/// let posts = vec![
///     Post::new(1, 0, 0, "the same exact story right here".into()),
///     Post::new(2, 0, 1_000, "the same exact story right here".into()),
///     Post::new(3, 0, 2_000, "a completely unrelated second subject".into()),
/// ];
/// let shown: Vec<u64> = posts.into_iter().diversify(engine).map(|p| p.id).collect();
/// assert_eq!(shown, vec![1, 3]);
/// ```
pub trait DiversifyExt: Iterator<Item = Post> + Sized {
    /// Filter this stream through `engine`, yielding only emitted posts.
    fn diversify<D: Diversifier>(self, engine: D) -> Diversified<Self, D> {
        Diversified {
            inner: self,
            engine,
        }
    }
}

impl<I: Iterator<Item = Post>> DiversifyExt for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EngineConfig, Thresholds};
    use crate::engine::UniBin;
    use firehose_graph::UndirectedGraph;
    use firehose_stream::minutes;
    use std::sync::Arc;

    fn engine() -> UniBin {
        UniBin::new(
            EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap()),
            Arc::new(UndirectedGraph::from_edges(2, [(0, 1)])),
        )
    }

    fn posts() -> Vec<Post> {
        vec![
            Post::new(1, 0, 0, "ferry sinks off the coast hundreds missing".into()),
            Post::new(
                2,
                1,
                60_000,
                "ferry sinks off the coast hundreds missing".into(),
            ),
            Post::new(
                3,
                0,
                120_000,
                "tech stocks rally for a third straight day".into(),
            ),
        ]
    }

    #[test]
    fn yields_only_emitted_posts() {
        let shown: Vec<u64> = posts()
            .into_iter()
            .diversify(engine())
            .map(|p| p.id)
            .collect();
        assert_eq!(shown, vec![1, 3]);
    }

    #[test]
    fn engine_recoverable_with_metrics() {
        let mut it = posts().into_iter().diversify(engine());
        while it.next().is_some() {}
        let engine = it.into_engine();
        assert_eq!(engine.metrics().posts_processed, 3);
        assert_eq!(engine.metrics().posts_emitted, 2);
    }

    #[test]
    fn empty_stream() {
        let shown: Vec<Post> = std::iter::empty().diversify(engine()).collect();
        assert!(shown.is_empty());
    }

    #[test]
    fn works_with_boxed_engines() {
        use crate::engine::{build_engine, AlgorithmKind};
        let graph = Arc::new(UndirectedGraph::from_edges(2, [(0, 1)]));
        let boxed = build_engine(
            AlgorithmKind::CliqueBin,
            EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap()),
            graph,
        );
        let shown: Vec<u64> = posts().into_iter().diversify(boxed).map(|p| p.id).collect();
        assert_eq!(shown, vec![1, 3]);
    }
}
