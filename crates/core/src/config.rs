//! Diversity thresholds and engine configuration.

use firehose_simhash::SimHashOptions;
use firehose_stream::{minutes, Timestamp};

/// The three diversity thresholds of Definition 1.
///
/// Defaults follow the paper's evaluation: `λc = 18` (the precision/recall
/// crossover of Figure 4), `λt = 30` minutes, `λa = 0.7` (authors similar iff
/// followee cosine ≥ 0.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Content: maximum SimHash Hamming distance (0..=64).
    pub lambda_c: u32,
    /// Time: maximum timestamp distance in milliseconds.
    pub lambda_t: Timestamp,
    /// Author: maximum author distance `1 − cosine` in `[0, 1]`.
    pub lambda_a: f64,
}

/// Validation errors for [`Thresholds`], [`ApproxConfig`] and
/// [`MemoryMode`] parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `λc` exceeds the fingerprint width.
    ContentThresholdTooLarge {
        /// The rejected content threshold.
        lambda_c: u32,
    },
    /// `λa` is not a probability-like distance in `[0, 1]`.
    AuthorThresholdOutOfRange {
        /// The rejected author threshold.
        lambda_a: f64,
    },
    /// Approx-mode probe count outside `1..=16` (tables = probes; key width
    /// `64 / probes` must stay ≥ 4 bits for the prefix buckets to select).
    ApproxProbesOutOfRange {
        /// The rejected probe count.
        probes: u32,
    },
    /// Approx-mode per-bucket retention budget outside
    /// `1..=`[`ApproxConfig::MAX_BUCKET_BUDGET`].
    ApproxBudgetOutOfRange {
        /// The rejected bucket budget.
        bucket_budget: u32,
    },
    /// Approx-mode sketch granularity (buckets per λt window) outside
    /// `1..=`[`ApproxConfig::MAX_GRANULARITY`].
    ApproxGranularityOutOfRange {
        /// The rejected granularity.
        granularity: u32,
    },
    /// A `--memory` style mode string that is neither `exact` nor
    /// `approx[:budget]`.
    BadMemoryMode {
        /// The rejected input.
        input: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ContentThresholdTooLarge { lambda_c } => {
                write!(f, "λc = {lambda_c} exceeds the 64-bit fingerprint width")
            }
            Self::AuthorThresholdOutOfRange { lambda_a } => {
                write!(f, "λa = {lambda_a} outside [0, 1]")
            }
            Self::ApproxProbesOutOfRange { probes } => {
                write!(f, "approx probes = {probes} outside 1..=16")
            }
            Self::ApproxBudgetOutOfRange { bucket_budget } => {
                write!(
                    f,
                    "approx bucket budget = {bucket_budget} outside 1..={}",
                    ApproxConfig::MAX_BUCKET_BUDGET
                )
            }
            Self::ApproxGranularityOutOfRange { granularity } => {
                write!(
                    f,
                    "approx granularity = {granularity} outside 1..={}",
                    ApproxConfig::MAX_GRANULARITY
                )
            }
            Self::BadMemoryMode { input } => {
                write!(f, "memory mode '{input}' is not exact | approx[:budget]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Thresholds {
    /// Validated constructor.
    pub fn new(lambda_c: u32, lambda_t: Timestamp, lambda_a: f64) -> Result<Self, ConfigError> {
        if lambda_c > 64 {
            return Err(ConfigError::ContentThresholdTooLarge { lambda_c });
        }
        if !(0.0..=1.0).contains(&lambda_a) || lambda_a.is_nan() {
            return Err(ConfigError::AuthorThresholdOutOfRange { lambda_a });
        }
        Ok(Self {
            lambda_c,
            lambda_t,
            lambda_a,
        })
    }

    /// The paper's default evaluation setting: `λc = 18`, `λt = 30 min`,
    /// `λa = 0.7`.
    pub fn paper_defaults() -> Self {
        Self {
            lambda_c: 18,
            lambda_t: minutes(30),
            lambda_a: 0.7,
        }
    }

    /// Minimum followee-cosine similarity implied by `λa`
    /// (`similarity ≥ 1 − λa`).
    pub fn min_author_similarity(&self) -> f64 {
        1.0 - self.lambda_a
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Shape of the approximate coverage backend: how many prefix tables a
/// lookup probes, and how aggressively the sliding-window sketch caps
/// retention. Construct through [`ApproxConfig::new`] (validated) or take
/// [`Default`]; the fields are read-only so an out-of-range shape can never
/// reach an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxConfig {
    probes: u32,
    bucket_budget: u32,
    granularity: u32,
}

impl ApproxConfig {
    /// Default permuted prefix tables per lookup (index distance
    /// `min(probes − 1, λc)` = 7 at the paper's `λc = 18`).
    pub const DEFAULT_PROBES: u32 = 8;
    /// Default records retained per time bucket.
    pub const DEFAULT_BUCKET_BUDGET: u32 = 8;
    /// Default time buckets per λt window.
    pub const DEFAULT_GRANULARITY: u32 = 8;
    /// Upper bound on the per-bucket budget — beyond this the "approximate"
    /// mode retains more than any realistic exact window.
    pub const MAX_BUCKET_BUDGET: u32 = 1 << 20;
    /// Upper bound on buckets per window.
    pub const MAX_GRANULARITY: u32 = 1 << 16;

    /// Validated constructor. `probes ∈ 1..=16`, `bucket_budget ≥ 1`,
    /// `granularity ≥ 1` (see the per-variant bounds on [`ConfigError`]).
    pub fn new(probes: u32, bucket_budget: u32, granularity: u32) -> Result<Self, ConfigError> {
        if !(1..=16).contains(&probes) {
            return Err(ConfigError::ApproxProbesOutOfRange { probes });
        }
        if !(1..=Self::MAX_BUCKET_BUDGET).contains(&bucket_budget) {
            return Err(ConfigError::ApproxBudgetOutOfRange { bucket_budget });
        }
        if !(1..=Self::MAX_GRANULARITY).contains(&granularity) {
            return Err(ConfigError::ApproxGranularityOutOfRange { granularity });
        }
        Ok(Self {
            probes,
            bucket_budget,
            granularity,
        })
    }

    /// Defaults with a custom per-bucket budget — the `approx:<budget>`
    /// CLI form.
    pub fn with_budget(bucket_budget: u32) -> Result<Self, ConfigError> {
        Self::new(
            Self::DEFAULT_PROBES,
            bucket_budget,
            Self::DEFAULT_GRANULARITY,
        )
    }

    /// Prefix tables probed per lookup.
    pub fn probes(&self) -> u32 {
        self.probes
    }

    /// Records retained per time bucket.
    pub fn bucket_budget(&self) -> u32 {
        self.bucket_budget
    }

    /// Time buckets per λt window.
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// Hard cap on records one approximate bin can retain: the active
    /// bucket holds up to `granularity × bucket_budget` at full fidelity,
    /// closed in-window buckets (up to `granularity`, plus one
    /// partially-expired boundary bucket) hold `bucket_budget` each —
    /// `(2 × granularity + 1) × bucket_budget` in total.
    pub fn retention_cap(&self) -> u64 {
        u64::from(2 * self.granularity + 1) * u64::from(self.bucket_budget)
    }
}

impl Default for ApproxConfig {
    fn default() -> Self {
        Self {
            probes: Self::DEFAULT_PROBES,
            bucket_budget: Self::DEFAULT_BUCKET_BUDGET,
            granularity: Self::DEFAULT_GRANULARITY,
        }
    }
}

/// Which coverage backend the engines run: the exact SoA window scan, or
/// the tiered approximate backend (bounded retention + prefix-probe
/// lookup). Exact mode is the default and keeps decisions byte-identical
/// to every prior release; approx mode trades a measured redundancy delta
/// for ≥10x less window RAM (see the quality gate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum MemoryMode {
    /// Exact sliding windows — the paper's semantics, bit for bit.
    #[default]
    Exact,
    /// Tiered approximate windows with the given shape.
    Approx(ApproxConfig),
}

impl MemoryMode {
    /// True for the approximate backend.
    pub fn is_approx(&self) -> bool {
        matches!(self, Self::Approx(_))
    }

    /// Stable lowercase label (`exact` / `approx`) for gauges and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Approx(_) => "approx",
        }
    }
}

impl std::fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exact => f.write_str("exact"),
            Self::Approx(cfg) => write!(f, "approx:{}", cfg.bucket_budget()),
        }
    }
}

impl std::str::FromStr for MemoryMode {
    type Err = ConfigError;

    /// Parse the CLI surface: `exact`, `approx`, or `approx:<budget>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(Self::Exact),
            "approx" => Ok(Self::Approx(ApproxConfig::default())),
            _ => match s.strip_prefix("approx:") {
                Some(budget) => {
                    let bucket_budget =
                        budget
                            .parse::<u32>()
                            .map_err(|_| ConfigError::BadMemoryMode {
                                input: s.to_string(),
                            })?;
                    Ok(Self::Approx(ApproxConfig::with_budget(bucket_budget)?))
                }
                None => Err(ConfigError::BadMemoryMode {
                    input: s.to_string(),
                }),
            },
        }
    }
}

/// Full engine configuration: thresholds plus fingerprinting options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineConfig {
    /// The three diversity thresholds.
    pub thresholds: Thresholds,
    /// How post text is fingerprinted (normalization, weights, n-grams).
    pub simhash: SimHashOptions,
    /// Expected stream rate in posts/second offered to this engine, used
    /// only to pre-size λt-window bins ([`window_capacity_hint`]). `0.0`
    /// (the default) means unknown: bins start empty and grow on demand.
    /// Never affects decisions or metrics.
    ///
    /// [`window_capacity_hint`]: Self::window_capacity_hint
    pub expected_rate: f64,
    /// Which coverage backend the engine runs ([`MemoryMode::Exact`] by
    /// default). Unlike `expected_rate`, this *does* affect decisions in
    /// approx mode — the measured divergence is published by the quality
    /// gate.
    pub memory: MemoryMode,
}

impl EngineConfig {
    /// Cap on [`window_capacity_hint`](Self::window_capacity_hint): 1 Mi
    /// records ≈ 32 MiB of columns. A mis-estimated rate (or `λt = ∞`)
    /// must not pre-allocate unbounded memory; beyond this the bins' own
    /// doubling takes over.
    pub const MAX_CAPACITY_HINT: usize = 1 << 20;

    /// Configuration with the given thresholds and paper-default SimHash.
    pub fn new(thresholds: Thresholds) -> Self {
        Self {
            thresholds,
            simhash: SimHashOptions::paper(),
            expected_rate: 0.0,
            memory: MemoryMode::Exact,
        }
    }

    /// Paper-default everything.
    pub fn paper_defaults() -> Self {
        Self::new(Thresholds::paper_defaults())
    }

    /// Start a builder from the given thresholds — the typed construction
    /// path for everything beyond the thresholds (rate hint, memory mode,
    /// SimHash options).
    pub fn builder(thresholds: Thresholds) -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: Self::new(thresholds),
        }
    }

    /// Expected λt-window occupancy: `expected_rate × λt`, the steady-state
    /// number of live posts a full window holds (every emitted post stays
    /// exactly λt). `0` when no rate is known — engines treat that as "no
    /// hint". Clamped to [`MAX_CAPACITY_HINT`](Self::MAX_CAPACITY_HINT).
    pub fn window_capacity_hint(&self) -> usize {
        if !self.expected_rate.is_finite() || self.expected_rate <= 0.0 {
            return 0;
        }
        let expected = self.expected_rate * (self.thresholds.lambda_t as f64 / 1_000.0);
        if expected >= Self::MAX_CAPACITY_HINT as f64 {
            Self::MAX_CAPACITY_HINT
        } else {
            expected.ceil() as usize
        }
    }
}

/// Builder for [`EngineConfig`] — the one sanctioned way to set the
/// non-threshold knobs. Every value that needs validation is validated
/// *before* it can reach the builder ([`Thresholds::new`],
/// [`ApproxConfig::new`], the `FromStr` impl on [`MemoryMode`]), so
/// [`build`](Self::build) is infallible.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Set the expected stream rate (posts/second) for bin pre-sizing.
    pub fn expected_rate(mut self, posts_per_sec: f64) -> Self {
        self.config.expected_rate = posts_per_sec;
        self
    }

    /// Select the coverage backend.
    pub fn memory(mut self, memory: MemoryMode) -> Self {
        self.config.memory = memory;
        self
    }

    /// Override the fingerprinting options.
    pub fn simhash(mut self, simhash: SimHashOptions) -> Self {
        self.config.simhash = simhash;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Live-churn behavior of the multi-user strategies.
///
/// Deliberately *not* part of [`EngineConfig`]: it never affects a single
/// engine's decisions (and must not enter the snapshot wire format) — it
/// only governs how the multi-user layer replaces engines under
/// subscription churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Warm-start engines spawned by churn from the still-in-window records
    /// of the engines they replace (default `true`). Within `λt` of a churn
    /// operation a warm-started stream may differ from a cold rebuild — the
    /// affected users keep their recently-shown posts as coverage — and is
    /// identical afterwards. Disable for cold rebuilds that match a freshly
    /// built strategy immediately.
    pub warm_start: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self { warm_start: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t = Thresholds::paper_defaults();
        assert_eq!(t.lambda_c, 18);
        assert_eq!(t.lambda_t, minutes(30));
        assert_eq!(t.lambda_a, 0.7);
        assert!((t.min_author_similarity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_oversized_lambda_c() {
        assert!(matches!(
            Thresholds::new(65, 0, 0.5),
            Err(ConfigError::ContentThresholdTooLarge { .. })
        ));
        assert!(Thresholds::new(64, 0, 0.5).is_ok());
    }

    #[test]
    fn rejects_bad_lambda_a() {
        assert!(Thresholds::new(18, 0, -0.1).is_err());
        assert!(Thresholds::new(18, 0, 1.1).is_err());
        assert!(Thresholds::new(18, 0, f64::NAN).is_err());
        assert!(Thresholds::new(18, 0, 0.0).is_ok());
        assert!(Thresholds::new(18, 0, 1.0).is_ok());
    }

    #[test]
    fn capacity_hint_is_rate_times_window() {
        let thresholds = Thresholds::new(18, minutes(30), 0.7).unwrap();
        let config = EngineConfig::new(thresholds);
        assert_eq!(config.window_capacity_hint(), 0, "no rate ⇒ no hint");
        // 10 posts/sec × 1800 s window = 18 000 expected live posts.
        let config = EngineConfig::builder(thresholds)
            .expected_rate(10.0)
            .build();
        assert_eq!(config.window_capacity_hint(), 18_000);
    }

    #[test]
    fn capacity_hint_is_clamped_and_total() {
        let infinite = Thresholds::new(18, u64::MAX, 0.7).unwrap();
        let config = EngineConfig::builder(infinite).expected_rate(1.0).build();
        assert_eq!(
            config.window_capacity_hint(),
            EngineConfig::MAX_CAPACITY_HINT
        );
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
            let config = EngineConfig::builder(Thresholds::paper_defaults())
                .expected_rate(bad)
                .build();
            assert_eq!(config.window_capacity_hint(), 0);
        }
    }

    #[test]
    fn builder_sets_all_knobs() {
        let approx = ApproxConfig::new(4, 16, 2).unwrap();
        let config = EngineConfig::builder(Thresholds::paper_defaults())
            .expected_rate(5.0)
            .memory(MemoryMode::Approx(approx))
            .build();
        assert_eq!(config.expected_rate, 5.0);
        assert_eq!(config.memory, MemoryMode::Approx(approx));
        assert_eq!(config.thresholds, Thresholds::paper_defaults());
        // The plain constructor defaults to exact mode.
        assert_eq!(EngineConfig::paper_defaults().memory, MemoryMode::Exact);
    }

    #[test]
    fn approx_config_validates() {
        assert!(ApproxConfig::new(8, 8, 8).is_ok());
        assert!(matches!(
            ApproxConfig::new(0, 8, 8),
            Err(ConfigError::ApproxProbesOutOfRange { probes: 0 })
        ));
        assert!(matches!(
            ApproxConfig::new(17, 8, 8),
            Err(ConfigError::ApproxProbesOutOfRange { probes: 17 })
        ));
        assert!(matches!(
            ApproxConfig::new(8, 0, 8),
            Err(ConfigError::ApproxBudgetOutOfRange { .. })
        ));
        assert!(matches!(
            ApproxConfig::new(8, 8, 0),
            Err(ConfigError::ApproxGranularityOutOfRange { .. })
        ));
        assert!(ApproxConfig::new(8, ApproxConfig::MAX_BUCKET_BUDGET + 1, 8).is_err());
        let cfg = ApproxConfig::new(8, 8, 8).unwrap();
        assert_eq!(cfg.retention_cap(), 17 * 8);
    }

    #[test]
    fn memory_mode_parses_cli_forms() {
        use std::str::FromStr;
        assert_eq!(MemoryMode::from_str("exact").unwrap(), MemoryMode::Exact);
        assert_eq!(
            MemoryMode::from_str("approx").unwrap(),
            MemoryMode::Approx(ApproxConfig::default())
        );
        assert_eq!(
            MemoryMode::from_str("approx:64").unwrap(),
            MemoryMode::Approx(ApproxConfig::with_budget(64).unwrap())
        );
        assert!(matches!(
            MemoryMode::from_str("approx:zillions"),
            Err(ConfigError::BadMemoryMode { .. })
        ));
        assert!(matches!(
            MemoryMode::from_str("approx:0"),
            Err(ConfigError::ApproxBudgetOutOfRange { .. })
        ));
        assert!(matches!(
            MemoryMode::from_str("fuzzy"),
            Err(ConfigError::BadMemoryMode { .. })
        ));
        // Display round-trips through FromStr.
        for s in ["exact", "approx:8", "approx:512"] {
            assert_eq!(MemoryMode::from_str(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn error_messages_render() {
        let e = Thresholds::new(99, 0, 0.5).unwrap_err();
        assert!(e.to_string().contains("99"));
        let e = Thresholds::new(18, 0, 2.0).unwrap_err();
        assert!(e.to_string().contains('2'));
        let e = ApproxConfig::new(0, 8, 8).unwrap_err();
        assert!(e.to_string().contains("probes"));
        let e = "nope".parse::<MemoryMode>().unwrap_err();
        assert!(e.to_string().contains("nope"));
    }
}
