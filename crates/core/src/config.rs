//! Diversity thresholds and engine configuration.

use firehose_simhash::SimHashOptions;
use firehose_stream::{minutes, Timestamp};

/// The three diversity thresholds of Definition 1.
///
/// Defaults follow the paper's evaluation: `λc = 18` (the precision/recall
/// crossover of Figure 4), `λt = 30` minutes, `λa = 0.7` (authors similar iff
/// followee cosine ≥ 0.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Content: maximum SimHash Hamming distance (0..=64).
    pub lambda_c: u32,
    /// Time: maximum timestamp distance in milliseconds.
    pub lambda_t: Timestamp,
    /// Author: maximum author distance `1 − cosine` in `[0, 1]`.
    pub lambda_a: f64,
}

/// Validation errors for [`Thresholds`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `λc` exceeds the fingerprint width.
    ContentThresholdTooLarge {
        /// The rejected content threshold.
        lambda_c: u32,
    },
    /// `λa` is not a probability-like distance in `[0, 1]`.
    AuthorThresholdOutOfRange {
        /// The rejected author threshold.
        lambda_a: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ContentThresholdTooLarge { lambda_c } => {
                write!(f, "λc = {lambda_c} exceeds the 64-bit fingerprint width")
            }
            Self::AuthorThresholdOutOfRange { lambda_a } => {
                write!(f, "λa = {lambda_a} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Thresholds {
    /// Validated constructor.
    pub fn new(lambda_c: u32, lambda_t: Timestamp, lambda_a: f64) -> Result<Self, ConfigError> {
        if lambda_c > 64 {
            return Err(ConfigError::ContentThresholdTooLarge { lambda_c });
        }
        if !(0.0..=1.0).contains(&lambda_a) || lambda_a.is_nan() {
            return Err(ConfigError::AuthorThresholdOutOfRange { lambda_a });
        }
        Ok(Self {
            lambda_c,
            lambda_t,
            lambda_a,
        })
    }

    /// The paper's default evaluation setting: `λc = 18`, `λt = 30 min`,
    /// `λa = 0.7`.
    pub fn paper_defaults() -> Self {
        Self {
            lambda_c: 18,
            lambda_t: minutes(30),
            lambda_a: 0.7,
        }
    }

    /// Minimum followee-cosine similarity implied by `λa`
    /// (`similarity ≥ 1 − λa`).
    pub fn min_author_similarity(&self) -> f64 {
        1.0 - self.lambda_a
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Full engine configuration: thresholds plus fingerprinting options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineConfig {
    /// The three diversity thresholds.
    pub thresholds: Thresholds,
    /// How post text is fingerprinted (normalization, weights, n-grams).
    pub simhash: SimHashOptions,
    /// Expected stream rate in posts/second offered to this engine, used
    /// only to pre-size λt-window bins ([`window_capacity_hint`]). `0.0`
    /// (the default) means unknown: bins start empty and grow on demand.
    /// Never affects decisions or metrics.
    ///
    /// [`window_capacity_hint`]: Self::window_capacity_hint
    pub expected_rate: f64,
}

impl EngineConfig {
    /// Cap on [`window_capacity_hint`](Self::window_capacity_hint): 1 Mi
    /// records ≈ 32 MiB of columns. A mis-estimated rate (or `λt = ∞`)
    /// must not pre-allocate unbounded memory; beyond this the bins' own
    /// doubling takes over.
    pub const MAX_CAPACITY_HINT: usize = 1 << 20;

    /// Configuration with the given thresholds and paper-default SimHash.
    pub fn new(thresholds: Thresholds) -> Self {
        Self {
            thresholds,
            simhash: SimHashOptions::paper(),
            expected_rate: 0.0,
        }
    }

    /// Paper-default everything.
    pub fn paper_defaults() -> Self {
        Self::new(Thresholds::paper_defaults())
    }

    /// Set the expected stream rate (posts/second) for bin pre-sizing.
    pub fn with_expected_rate(mut self, posts_per_sec: f64) -> Self {
        self.expected_rate = posts_per_sec;
        self
    }

    /// Expected λt-window occupancy: `expected_rate × λt`, the steady-state
    /// number of live posts a full window holds (every emitted post stays
    /// exactly λt). `0` when no rate is known — engines treat that as "no
    /// hint". Clamped to [`MAX_CAPACITY_HINT`](Self::MAX_CAPACITY_HINT).
    pub fn window_capacity_hint(&self) -> usize {
        if !self.expected_rate.is_finite() || self.expected_rate <= 0.0 {
            return 0;
        }
        let expected = self.expected_rate * (self.thresholds.lambda_t as f64 / 1_000.0);
        if expected >= Self::MAX_CAPACITY_HINT as f64 {
            Self::MAX_CAPACITY_HINT
        } else {
            expected.ceil() as usize
        }
    }
}

/// Live-churn behavior of the multi-user strategies.
///
/// Deliberately *not* part of [`EngineConfig`]: it never affects a single
/// engine's decisions (and must not enter the snapshot wire format) — it
/// only governs how the multi-user layer replaces engines under
/// subscription churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Warm-start engines spawned by churn from the still-in-window records
    /// of the engines they replace (default `true`). Within `λt` of a churn
    /// operation a warm-started stream may differ from a cold rebuild — the
    /// affected users keep their recently-shown posts as coverage — and is
    /// identical afterwards. Disable for cold rebuilds that match a freshly
    /// built strategy immediately.
    pub warm_start: bool,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self { warm_start: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t = Thresholds::paper_defaults();
        assert_eq!(t.lambda_c, 18);
        assert_eq!(t.lambda_t, minutes(30));
        assert_eq!(t.lambda_a, 0.7);
        assert!((t.min_author_similarity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_oversized_lambda_c() {
        assert!(matches!(
            Thresholds::new(65, 0, 0.5),
            Err(ConfigError::ContentThresholdTooLarge { .. })
        ));
        assert!(Thresholds::new(64, 0, 0.5).is_ok());
    }

    #[test]
    fn rejects_bad_lambda_a() {
        assert!(Thresholds::new(18, 0, -0.1).is_err());
        assert!(Thresholds::new(18, 0, 1.1).is_err());
        assert!(Thresholds::new(18, 0, f64::NAN).is_err());
        assert!(Thresholds::new(18, 0, 0.0).is_ok());
        assert!(Thresholds::new(18, 0, 1.0).is_ok());
    }

    #[test]
    fn capacity_hint_is_rate_times_window() {
        let config = EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap());
        assert_eq!(config.window_capacity_hint(), 0, "no rate ⇒ no hint");
        // 10 posts/sec × 1800 s window = 18 000 expected live posts.
        assert_eq!(
            config.with_expected_rate(10.0).window_capacity_hint(),
            18_000
        );
    }

    #[test]
    fn capacity_hint_is_clamped_and_total() {
        let infinite_window = EngineConfig::new(Thresholds::new(18, u64::MAX, 0.7).unwrap());
        assert_eq!(
            infinite_window
                .with_expected_rate(1.0)
                .window_capacity_hint(),
            EngineConfig::MAX_CAPACITY_HINT
        );
        let config = EngineConfig::paper_defaults();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
            assert_eq!(config.with_expected_rate(bad).window_capacity_hint(), 0);
        }
    }

    #[test]
    fn error_messages_render() {
        let e = Thresholds::new(99, 0, 0.5).unwrap_err();
        assert!(e.to_string().contains("99"));
        let e = Thresholds::new(18, 0, 2.0).unwrap_err();
        assert!(e.to_string().contains('2'));
    }
}
