//! CliqueBin (Section 4.3): one bin per clique of a clique edge cover.
//!
//! A greedy clique edge cover of `G` assigns each author to `c` cliques on
//! average; an emitted post is stored once per clique containing its author
//! (fewer copies than NeighborBin's `d + 1`), and an arrival probes exactly
//! those cliques' bins. All authors within a clique are pairwise similar, so
//! probed candidates need only the content + time check.
//!
//! Authors isolated in `G` belong to no clique; they get lazily-created
//! *self bins* so same-author coverage (author distance 0) is preserved —
//! without this the cover-based index would silently drop the author
//! dimension's reflexivity for degree-0 authors.

use std::collections::HashMap;
use std::sync::Arc;

use firehose_graph::{greedy_clique_cover, CliqueCover, UndirectedGraph};
use firehose_simhash::{active_kernel, KernelKind};
use firehose_stream::{ApproxCandidate, AuthorId, PostRecord};

use crate::backend::CoverageBackend;
use crate::config::EngineConfig;
use crate::decision::Decision;
use crate::engine::Diversifier;
use crate::metrics::EngineMetrics;
use crate::obs::EngineObs;

/// Per-clique-bin engine: the RAM/comparison middle ground (Table 3).
pub struct CliqueBin {
    config: EngineConfig,
    cover: Arc<CliqueCover>,
    /// One bin per clique id.
    clique_bins: Vec<CoverageBackend>,
    /// Lazily-created bins for authors belonging to no clique.
    self_bins: HashMap<AuthorId, CoverageBackend>,
    /// Number of authors (for the out-of-range guard).
    author_count: usize,
    /// Reusable candidate buffer for approximate-backend probes.
    scratch: Vec<ApproxCandidate>,
    /// Hamming kernel selected once at construction.
    kernel: KernelKind,
    metrics: EngineMetrics,
    obs: Option<EngineObs>,
}

impl CliqueBin {
    /// New engine; computes the greedy clique edge cover of `graph`.
    pub fn new(config: EngineConfig, graph: Arc<UndirectedGraph>) -> Self {
        let cover = Arc::new(greedy_clique_cover(&graph));
        Self::with_cover(config, graph, cover)
    }

    /// New engine over a precomputed cover (the paper computes the clique
    /// partition and `Author2Cliques` offline, like the similarity graph).
    pub fn with_cover(
        config: EngineConfig,
        graph: Arc<UndirectedGraph>,
        cover: Arc<CliqueCover>,
    ) -> Self {
        // A clique's bin receives the emitted posts of its members: size the
        // bin to the members' share of the expected window occupancy.
        let m = graph.node_count().max(1);
        let hint = config.window_capacity_hint();
        let clique_bins = (0..cover.count())
            .map(|cid| {
                CoverageBackend::for_config(&config, hint * cover.members(cid as u32).len() / m)
            })
            .collect();
        Self {
            config,
            cover,
            clique_bins,
            self_bins: HashMap::new(),
            author_count: graph.node_count(),
            scratch: Vec::new(),
            kernel: active_kernel(),
            metrics: EngineMetrics::default(),
            obs: None,
        }
    }

    /// Expected occupancy of one isolated author's self bin.
    fn self_bin_hint(&self) -> usize {
        self.config.window_capacity_hint() / self.author_count.max(1)
    }

    /// The clique edge cover in use.
    pub fn cover(&self) -> &CliqueCover {
        &self.cover
    }

    /// Snapshot internals (see `crate::snapshot`).
    pub(crate) fn parts(
        &self,
    ) -> (
        &[CoverageBackend],
        &HashMap<AuthorId, CoverageBackend>,
        &EngineMetrics,
    ) {
        (&self.clique_bins, &self.self_bins, &self.metrics)
    }

    /// Rebuild from snapshot internals (see `crate::snapshot`).
    pub(crate) fn from_parts(
        config: EngineConfig,
        graph: Arc<UndirectedGraph>,
        cover: Arc<CliqueCover>,
        clique_bins: Vec<CoverageBackend>,
        self_bins: HashMap<AuthorId, CoverageBackend>,
        metrics: EngineMetrics,
    ) -> Self {
        assert_eq!(
            clique_bins.len(),
            cover.count(),
            "bin count must match cliques"
        );
        Self {
            config,
            cover,
            clique_bins,
            self_bins,
            author_count: graph.node_count(),
            scratch: Vec::new(),
            kernel: active_kernel(),
            metrics,
            obs: None,
        }
    }

    fn offer_inner(&mut self, record: PostRecord) -> Decision {
        assert!(
            (record.author as usize) < self.author_count,
            "author {} outside the similarity graph (m = {})",
            record.author,
            self.author_count
        );
        self.metrics.posts_processed += 1;
        let t = self.config.thresholds;

        let clique_ids = self.cover.cliques_of(record.author);

        if clique_ids.is_empty() {
            // Isolated author: only her own posts can cover.
            let hint = self.self_bin_hint();
            let config = &self.config;
            let kernel = self.kernel;
            let bin = self
                .self_bins
                .entry(record.author)
                .or_insert_with(|| CoverageBackend::for_config(config, hint));
            let evicted = bin.evict_expired(record.timestamp, t.lambda_t);
            let (verdict, comparisons) =
                bin.find_newest_within(kernel, &record, &t, &mut self.scratch);
            let mut displaced = 0u64;
            if verdict.is_none() {
                displaced = bin.push(record);
            }
            self.metrics.on_evict(evicted as u64 + displaced);
            self.metrics.comparisons += comparisons;
            return if let Some(by) = verdict {
                Decision::Covered { by }
            } else {
                self.metrics.on_insert(1, PostRecord::SIZE_BYTES);
                self.metrics.posts_emitted += 1;
                Decision::Emitted
            };
        }

        // Probe every clique containing the author. Copies of the same post
        // in different shared cliques are compared once per probe — the
        // paper's accounting (its P7 example counts P6 twice). Each bin
        // lookup keeps the scalar newest-first comparison semantics on the
        // exact backend (records down to and including the covering one, or
        // the whole bin window on a miss) and charges probe verifications on
        // the approximate backend.
        let mut verdict = None;
        for &cid in clique_ids {
            let bin = &mut self.clique_bins[cid as usize];
            let evicted = bin.evict_expired(record.timestamp, t.lambda_t);
            self.metrics.on_evict(evicted as u64);
            let (found, comparisons) =
                bin.find_newest_within(self.kernel, &record, &t, &mut self.scratch);
            self.metrics.comparisons += comparisons;
            if let Some(by) = found {
                verdict = Some(by);
                break;
            }
        }
        if let Some(by) = verdict {
            return Decision::Covered { by };
        }

        // Emit: one copy per containing clique.
        let mut displaced = 0u64;
        for &cid in clique_ids {
            displaced += self.clique_bins[cid as usize].push(record);
        }
        if displaced > 0 {
            self.metrics.on_evict(displaced);
        }
        self.metrics
            .on_insert(clique_ids.len() as u64, PostRecord::SIZE_BYTES);
        self.metrics.posts_emitted += 1;
        Decision::Emitted
    }
}

impl Diversifier for CliqueBin {
    fn offer_record(&mut self, record: PostRecord) -> Decision {
        let started = self.obs.is_some().then(std::time::Instant::now);
        let before = self.metrics.comparisons;
        let decision = self.offer_inner(record);
        if let (Some(t0), Some(obs)) = (started, &self.obs) {
            obs.record_offer(t0, self.metrics.comparisons - before);
        }
        decision
    }

    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "CliqueBin"
    }

    fn evict_expired(&mut self, now: firehose_stream::Timestamp) {
        let lambda_t = self.config.thresholds.lambda_t;
        let mut evicted = 0u64;
        for bin in &mut self.clique_bins {
            evicted += bin.evict_expired(now, lambda_t) as u64;
        }
        for bin in self.self_bins.values_mut() {
            evicted += bin.evict_expired(now, lambda_t) as u64;
        }
        self.metrics.on_evict(evicted);
    }

    fn attach_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    fn save_state(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        crate::snapshot::write_state_cliquebin(w, &self.clique_bins, &self.self_bins, &self.metrics)
    }

    fn load_state(
        &mut self,
        r: &mut dyn std::io::Read,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let (clique_bins, self_bins, metrics) =
            crate::snapshot::read_state_cliquebin(r, &self.config, self.author_count, &self.cover)?;
        self.clique_bins = clique_bins;
        self.self_bins = self_bins;
        self.metrics = metrics;
        Ok(())
    }

    fn snapshot_tag(&self) -> u8 {
        crate::snapshot::TAG_CLIQUEBIN
    }

    fn window_records(&self, out: &mut Vec<PostRecord>) {
        // An emission is copied into every clique of its author (or her self
        // bin); collect everything and dedup by post id.
        let start = out.len();
        for bin in &self.clique_bins {
            bin.for_each_record(|r| out.push(r));
        }
        for bin in self.self_bins.values() {
            bin.for_each_record(|r| out.push(r));
        }
        crate::engine::order_window_records_from(out, start);
    }

    fn seed_record(&mut self, record: PostRecord) {
        let clique_ids = self.cover.cliques_of(record.author);
        if clique_ids.is_empty() {
            let hint = self.self_bin_hint();
            let config = &self.config;
            let displaced = self
                .self_bins
                .entry(record.author)
                .or_insert_with(|| CoverageBackend::for_config(config, hint))
                .push(record);
            if displaced > 0 {
                self.metrics.on_evict(displaced);
            }
            self.metrics.on_insert(1, PostRecord::SIZE_BYTES);
            return;
        }
        let mut displaced = 0u64;
        for &cid in clique_ids {
            displaced += self.clique_bins[cid as usize].push(record);
        }
        if displaced > 0 {
            self.metrics.on_evict(displaced);
        }
        self.metrics
            .on_insert(clique_ids.len() as u64, PostRecord::SIZE_BYTES);
    }

    fn approx_stats(&self) -> Option<firehose_stream::ApproxStats> {
        if !self.config.memory.is_approx() {
            return None;
        }
        let mut acc = firehose_stream::ApproxStats::default();
        for bin in &self.clique_bins {
            acc.merge(&bin.approx_stats()?);
        }
        for bin in self.self_bins.values() {
            acc.merge(&bin.approx_stats()?);
        }
        Some(acc)
    }

    fn estimated_memory_bytes(&self) -> u64 {
        let cliques: u64 = self
            .clique_bins
            .iter()
            .map(|b| b.estimated_total_bytes() as u64)
            .sum();
        let selfs: u64 = self
            .self_bins
            .values()
            .map(|b| b.estimated_total_bytes() as u64)
            .sum();
        cliques + selfs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use firehose_stream::minutes;

    fn rec(id: u64, author: u32, ts: u64, fp: u64) -> PostRecord {
        PostRecord {
            id,
            author,
            timestamp: ts,
            fingerprint: fp,
        }
    }

    fn paper_graph() -> Arc<UndirectedGraph> {
        Arc::new(UndirectedGraph::from_edges(
            4,
            [(0, 1), (0, 2), (1, 2), (2, 3)],
        ))
    }

    #[test]
    fn reproduces_figure6c() {
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = CliqueBin::new(config, paper_graph());
        // Cover = C0 {a1,a2,a3}, C1 {a3,a4} (verified in firehose-graph tests).
        let decisions: Vec<_> = [
            rec(1, 0, 0, 0b0000),
            rec(2, 1, 60_000, 0xFF00),
            rec(3, 2, 120_000, 0b0001),
            rec(4, 3, 180_000, 0x00FF),
            rec(5, 2, 240_000, 0x00FE),
        ]
        .into_iter()
        .map(|r| engine.offer_record(r))
        .collect();

        assert_eq!(decisions[0], Decision::Emitted);
        assert_eq!(decisions[1], Decision::Emitted);
        assert_eq!(decisions[2], Decision::Covered { by: 1 });
        assert_eq!(decisions[3], Decision::Emitted);
        assert_eq!(decisions[4], Decision::Covered { by: 4 });

        // Figure 6c: P1 stored once (C0), P2 once (C0), P4 once (C1).
        assert_eq!(engine.metrics().insertions, 3);
    }

    #[test]
    fn p7_example_counts_duplicate_comparisons() {
        // Section 4.3's P6/P7 example: after P5, a3 posts P6 (stored in both
        // cliques), then a4 posts P7. NeighborBin would do 2 comparisons for
        // P7; CliqueBin does 5: P1, P2, P6 in C0's bin? No — a4 is only in
        // C1, so CliqueBin scans C1's bin: P4 and P6 → but the paper counts 5
        // because its P7 probes *both* bins through a4? Re-reading: the paper
        // says CliqueBin does 5 comparisons *in total for P6 and P7*... The
        // unambiguous check: P6 (author a3, in C0 and C1) compares against
        // C0's {P1, P2} and C1's {P4} = 3 comparisons, then is inserted into
        // both bins; P7 (author a4, in C1 only) compares against C1's
        // {P4, P6} = 2 comparisons. Total 5.
        let config = EngineConfig::new(Thresholds::new(2, minutes(60), 0.7).unwrap());
        let mut engine = CliqueBin::new(config, paper_graph());
        for r in [
            rec(1, 0, 0, 0b0000),
            rec(2, 1, 60_000, 0xFF00),
            rec(3, 2, 120_000, 0b0001),
            rec(4, 3, 180_000, 0x00FF),
            rec(5, 2, 240_000, 0x00FE),
        ] {
            engine.offer_record(r);
        }
        let before = engine.metrics().comparisons;
        // P6 by a3, unique content; newest-first scan of C0 {P2, P1} misses,
        // C1 {P4} misses.
        engine.offer_record(rec(6, 2, 300_000, 0xF0F0));
        // P7 by a4, unique content; scan of C1 {P6, P4} misses.
        engine.offer_record(rec(7, 3, 360_000, 0x0F0F));
        assert_eq!(engine.metrics().comparisons - before, 5);
    }

    #[test]
    fn shared_clique_authors_cover_each_other() {
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = CliqueBin::new(config, paper_graph());
        assert!(engine.offer_record(rec(1, 3, 0, 0)).is_emitted()); // a4 -> C1
                                                                    // a3 shares C1 with a4.
        assert_eq!(
            engine.offer_record(rec(2, 2, 1_000, 0)).covered_by(),
            Some(1)
        );
    }

    #[test]
    fn isolated_author_self_coverage() {
        // Author 2 is isolated (no edges) but posts near-duplicates.
        let graph = Arc::new(UndirectedGraph::from_edges(3, [(0, 1)]));
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = CliqueBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 2, 0, 0)).is_emitted());
        assert_eq!(
            engine.offer_record(rec(2, 2, 1_000, 1)).covered_by(),
            Some(1)
        );
        // Other authors never see isolated-author posts.
        assert!(engine.offer_record(rec(3, 0, 2_000, 0)).is_emitted());
    }

    #[test]
    fn isolated_author_window_expiry() {
        let graph = Arc::new(UndirectedGraph::new(1));
        let config = EngineConfig::new(Thresholds::new(2, 1_000, 0.7).unwrap());
        let mut engine = CliqueBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 0, 0, 0)).is_emitted());
        assert!(engine.offer_record(rec(2, 0, 5_000, 0)).is_emitted());
        assert_eq!(engine.metrics().evictions, 1);
    }

    #[test]
    fn fewer_copies_than_neighborbin() {
        use crate::engine::NeighborBin;
        // K4: NeighborBin stores 4 copies per post, CliqueBin 1.
        let edges: Vec<(u32, u32)> = (0..4u32)
            .flat_map(|u| ((u + 1)..4).map(move |v| (u, v)))
            .collect();
        let graph = Arc::new(UndirectedGraph::from_edges(4, edges));
        let config = EngineConfig::new(Thresholds::new(0, minutes(60), 0.7).unwrap());
        let mut cb = CliqueBin::new(config, Arc::clone(&graph));
        let mut nb = NeighborBin::new(config, graph);
        for i in 0..8u64 {
            let r = rec(i, (i % 4) as u32, i * 1_000, 1 << i);
            cb.offer_record(r);
            nb.offer_record(r);
        }
        assert_eq!(cb.metrics().insertions, 8);
        assert_eq!(nb.metrics().insertions, 32);
    }

    #[test]
    #[should_panic(expected = "outside the similarity graph")]
    fn out_of_range_author_panics() {
        let graph = Arc::new(UndirectedGraph::new(1));
        let mut engine = CliqueBin::new(EngineConfig::paper_defaults(), graph);
        engine.offer_record(rec(1, 7, 0, 0));
    }
}
