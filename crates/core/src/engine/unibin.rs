//! UniBin (Section 4.1): one bin for everything.

use std::sync::Arc;

use firehose_graph::{AdjacencyBitsets, UndirectedGraph};
use firehose_simhash::{active_kernel, KernelKind};
use firehose_stream::PostRecord;

use crate::backend::{CoverageBackend, ScanBuffer};
use crate::config::EngineConfig;
use crate::decision::Decision;
use crate::engine::Diversifier;
use crate::metrics::EngineMetrics;
use crate::obs::EngineObs;

/// The baseline engine: every emitted post lands in one time-ordered bin and
/// each arrival is compared — newest first — against every in-window record,
/// checking content (Hamming ≤ `λc`) and author (same author or an edge of
/// the similarity graph `G`).
///
/// UniBin stores exactly one copy per emitted post, so it is the most
/// RAM-frugal engine and the best pick for low-throughput streams, very
/// small `λt`, or dense similarity graphs (Table 4).
pub struct UniBin {
    config: EngineConfig,
    graph: Arc<UndirectedGraph>,
    bin: CoverageBackend,
    /// O(1) author-similarity rows, built lazily per probed author.
    adjacency: AdjacencyBitsets,
    /// Reusable lookup-result buffer, so the hot path never allocates.
    scan: ScanBuffer,
    /// Hamming kernel selected once at construction (AVX2/NEON when the
    /// host supports it, batched scalar otherwise).
    kernel: KernelKind,
    metrics: EngineMetrics,
    obs: Option<EngineObs>,
}

impl UniBin {
    /// New engine over the author similarity graph `G`.
    pub fn new(config: EngineConfig, graph: Arc<UndirectedGraph>) -> Self {
        let bin = CoverageBackend::for_config(&config, config.window_capacity_hint());
        let adjacency = AdjacencyBitsets::new(graph.node_count());
        Self {
            config,
            graph,
            bin,
            adjacency,
            scan: ScanBuffer::new(),
            kernel: active_kernel(),
            metrics: EngineMetrics::default(),
            obs: None,
        }
    }

    /// The similarity graph this engine consults.
    pub fn graph(&self) -> &UndirectedGraph {
        &self.graph
    }

    /// Snapshot internals (see `crate::snapshot`).
    pub(crate) fn parts(&self) -> (&CoverageBackend, &EngineMetrics) {
        (&self.bin, &self.metrics)
    }

    /// Rebuild from snapshot internals (see `crate::snapshot`).
    pub(crate) fn from_parts(
        config: EngineConfig,
        graph: Arc<UndirectedGraph>,
        bin: CoverageBackend,
        metrics: EngineMetrics,
    ) -> Self {
        let adjacency = AdjacencyBitsets::new(graph.node_count());
        Self {
            config,
            graph,
            bin,
            adjacency,
            scan: ScanBuffer::new(),
            kernel: active_kernel(),
            metrics,
            obs: None,
        }
    }

    fn offer_inner(&mut self, record: PostRecord) -> Decision {
        self.metrics.posts_processed += 1;
        let t = &self.config.thresholds;

        let evicted = self.bin.evict_expired(record.timestamp, t.lambda_t);
        self.metrics.on_evict(evicted as u64);

        // Newest-first scan over the λt window (index b down to a in the
        // paper's circular-array description). The exact backend runs the
        // batched Hamming prefilter over the contiguous fingerprint column
        // (with popcount-class sub-bin pruning), the approximate backend its
        // prefix-bucket probes; either way candidates arrive newest-first
        // and the first one passing the O(1) bitset author check is exactly
        // where the scalar walk would have stopped.
        self.bin.scan_into(self.kernel, &record, t, &mut self.scan);
        let mut verdict = None;
        if !self.scan.is_empty() {
            let row = self.adjacency.row(&self.graph, record.author);
            for i in 0..self.scan.len() {
                let author = self.scan.author(i);
                if author == record.author || AdjacencyBitsets::test(row, author) {
                    verdict = Some((self.scan.id(i), i));
                    break;
                }
            }
        }
        // A "comparison" is one stored record examined: the exact arm
        // reconstructs the scalar newest-first count from the stop position,
        // the approximate arm charges its probes' candidate verifications.
        self.metrics.comparisons += self.scan.comparisons(verdict.map(|(_, i)| i));
        if let Some((by, _)) = verdict {
            return Decision::Covered { by };
        }

        let displaced = self.bin.push(record);
        if displaced > 0 {
            // Bounded-retention backends drop their oldest copies to admit
            // the new one; account those like evictions so copy/memory
            // gauges stay truthful. Exact backends never displace.
            self.metrics.on_evict(displaced);
        }
        self.metrics.on_insert(1, PostRecord::SIZE_BYTES);
        self.metrics.posts_emitted += 1;
        Decision::Emitted
    }
}

impl Diversifier for UniBin {
    fn offer_record(&mut self, record: PostRecord) -> Decision {
        let started = self.obs.is_some().then(std::time::Instant::now);
        let before = self.metrics.comparisons;
        let decision = self.offer_inner(record);
        if let (Some(t0), Some(obs)) = (started, &self.obs) {
            obs.record_offer(t0, self.metrics.comparisons - before);
        }
        decision
    }

    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "UniBin"
    }

    fn evict_expired(&mut self, now: firehose_stream::Timestamp) {
        let evicted = self.bin.evict_expired(now, self.config.thresholds.lambda_t);
        self.metrics.on_evict(evicted as u64);
    }

    fn attach_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    fn save_state(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        crate::snapshot::write_state_unibin(w, &self.bin, &self.metrics)
    }

    fn load_state(
        &mut self,
        r: &mut dyn std::io::Read,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let (bin, metrics) = crate::snapshot::read_state_unibin(r, &self.config, &self.graph)?;
        self.bin = bin;
        self.metrics = metrics;
        Ok(())
    }

    fn snapshot_tag(&self) -> u8 {
        crate::snapshot::TAG_UNIBIN
    }

    fn window_records(&self, out: &mut Vec<PostRecord>) {
        let start = out.len();
        self.bin.for_each_record(|r| out.push(r));
        crate::engine::order_window_records_from(out, start);
    }

    fn seed_record(&mut self, record: PostRecord) {
        let displaced = self.bin.push(record);
        if displaced > 0 {
            self.metrics.on_evict(displaced);
        }
        self.metrics.on_insert(1, PostRecord::SIZE_BYTES);
    }

    fn approx_stats(&self) -> Option<firehose_stream::ApproxStats> {
        self.bin.approx_stats()
    }

    fn estimated_memory_bytes(&self) -> u64 {
        self.bin.estimated_total_bytes() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use firehose_stream::minutes;

    fn rec(id: u64, author: u32, ts: u64, fp: u64) -> PostRecord {
        PostRecord {
            id,
            author,
            timestamp: ts,
            fingerprint: fp,
        }
    }

    /// Figure 5/6a reproduction: authors a1..a4 (here 0..3) with edges
    /// 0-1, 0-2, 1-2, 2-3 and the paper's post sequence P1..P5.
    fn paper_example() -> (UniBin, Vec<PostRecord>) {
        let graph = Arc::new(UndirectedGraph::from_edges(
            4,
            [(0, 1), (0, 2), (1, 2), (2, 3)],
        ));
        // λc chosen so that "similar content" = Hamming ≤ 2.
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let engine = UniBin::new(config, graph);
        // Content groups: P1,P3 similar; P4,P5 similar; P2 alone.
        let posts = vec![
            rec(1, 0, 0, 0b0000),       // P1 by a1
            rec(2, 1, 60_000, 0xFF00),  // P2 by a2 (far from P1)
            rec(3, 2, 120_000, 0b0001), // P3 by a3, covered by P1 (a1~a3)
            rec(4, 3, 180_000, 0x00FF), // P4 by a4, not covered
            rec(5, 2, 240_000, 0x00FE), // P5 by a3, covered by P4 (a3~a4)
        ];
        (engine, posts)
    }

    #[test]
    fn reproduces_figure6a() {
        let (mut engine, posts) = paper_example();
        let decisions: Vec<_> = posts.iter().map(|&r| engine.offer_record(r)).collect();
        assert_eq!(decisions[0], Decision::Emitted); // P1
        assert_eq!(decisions[1], Decision::Emitted); // P2
        assert_eq!(decisions[2], Decision::Covered { by: 1 }); // P3 by P1
        assert_eq!(decisions[3], Decision::Emitted); // P4
        assert_eq!(decisions[4], Decision::Covered { by: 4 }); // P5 by P4
        assert_eq!(engine.metrics().posts_emitted, 3);
    }

    #[test]
    fn time_window_expires_coverage() {
        let graph = Arc::new(UndirectedGraph::new(1));
        let config = EngineConfig::new(Thresholds::new(2, minutes(10), 0.7).unwrap());
        let mut engine = UniBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 0, 0, 0)).is_emitted());
        // Same author+content but 11 minutes later: out of window.
        assert!(engine.offer_record(rec(2, 0, minutes(11), 0)).is_emitted());
        // 5 minutes after that: covered by post 2.
        assert_eq!(
            engine.offer_record(rec(3, 0, minutes(16), 0)),
            Decision::Covered { by: 2 }
        );
    }

    #[test]
    fn eviction_reclaims_memory() {
        let graph = Arc::new(UndirectedGraph::new(1));
        let config = EngineConfig::new(Thresholds::new(0, 1_000, 0.0).unwrap());
        let mut engine = UniBin::new(config, graph);
        for i in 0..10u64 {
            engine.offer_record(rec(i, 0, i * 10_000, i * 12345)); // all far apart in time
        }
        // Each arrival evicts the previous one: at most 1 record stored.
        assert_eq!(engine.metrics().copies_stored, 1);
        assert_eq!(engine.metrics().evictions, 9);
        assert_eq!(engine.memory_bytes(), PostRecord::SIZE_BYTES as u64);
    }

    #[test]
    fn newest_covering_post_wins() {
        // The scan is newest-first, so the most recent covering post is the
        // one reported.
        let graph = Arc::new(UndirectedGraph::new(1));
        let config = EngineConfig::new(Thresholds::new(64, minutes(30), 1.0).unwrap());
        let mut engine = UniBin::new(config, graph);
        engine.offer_record(rec(1, 0, 0, 0));
        // Post 2 has λc=64 so it is covered by post 1 and never stored.
        assert_eq!(engine.offer_record(rec(2, 0, 1, 0)).covered_by(), Some(1));
    }

    #[test]
    fn timestamp_extremes_offer_without_panic() {
        // Regression: eviction cutoffs and window scans must saturate at the
        // clock boundaries rather than under/overflow.
        let graph = Arc::new(UndirectedGraph::new(2));
        let config = EngineConfig::new(Thresholds::new(2, u64::MAX, 0.7).unwrap());
        let mut engine = UniBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 0, 0, 0)).is_emitted());
        // λt = u64::MAX keeps post 1 in-window forever; same author + content
        // at the far end of the clock is covered, not wrapped out of range.
        assert_eq!(
            engine.offer_record(rec(2, 0, u64::MAX, 0)).covered_by(),
            Some(1)
        );
        // A finite window at the top of the clock still evicts cleanly.
        let config = EngineConfig::new(Thresholds::new(2, 1_000, 0.7).unwrap());
        let mut engine = UniBin::new(config, Arc::new(UndirectedGraph::new(2)));
        assert!(engine
            .offer_record(rec(1, 0, u64::MAX - 2_000, 0))
            .is_emitted());
        assert!(engine.offer_record(rec(2, 0, u64::MAX, 0)).is_emitted());
        assert_eq!(engine.metrics().evictions, 1);
    }

    #[test]
    fn comparison_counting_is_linear_in_bin() {
        let graph = Arc::new(UndirectedGraph::new(5));
        // Nothing ever covers (λc = 0 and all fingerprints distinct).
        let config = EngineConfig::new(Thresholds::new(0, minutes(60), 0.0).unwrap());
        let mut engine = UniBin::new(config, graph);
        for i in 0..5u64 {
            engine.offer_record(rec(i, i as u32, i, 1 << i));
        }
        // Arrival i compares against i stored posts: 0+1+2+3+4 = 10.
        assert_eq!(engine.metrics().comparisons, 10);
        assert_eq!(engine.metrics().insertions, 5);
    }
}
