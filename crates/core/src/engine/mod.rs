//! Single-user SPSD engines (Section 4).
//!
//! All three engines implement [`Diversifier`] and emit the *same*
//! diversified sub-stream `Z` for the same inputs — they differ only in how
//! posts are indexed, trading RAM for comparisons (Table 3):
//!
//! | engine | RAM | comparisons | insertions |
//! |---|---|---|---|
//! | [`UniBin`] | low | high | low |
//! | [`NeighborBin`] | high | low | high |
//! | [`CliqueBin`] | moderate | moderate | moderate |

mod cliquebin;
mod neighborbin;
mod unibin;

pub use cliquebin::CliqueBin;
pub use neighborbin::NeighborBin;
pub use unibin::UniBin;

use std::sync::Arc;

use firehose_graph::{greedy_clique_cover, CliqueCover, UndirectedGraph};
use firehose_stream::{Post, PostRecord};

use crate::config::EngineConfig;
use crate::decision::Decision;
use crate::metrics::EngineMetrics;

/// A real-time stream diversifier: decides for each arriving post whether it
/// joins the diversified sub-stream `Z` or is covered by an earlier emission.
///
/// Posts must be offered in timestamp order (the stream contract of
/// Problem 1) with author ids below the similarity graph's node count.
pub trait Diversifier {
    /// Offer a pre-fingerprinted record. This is the hot entry point: the
    /// multi-user engines fingerprint a post once and feed the record to many
    /// sub-engines.
    fn offer_record(&mut self, record: PostRecord) -> Decision;

    /// Offer a raw post; fingerprints the text with the engine's SimHash
    /// configuration, then delegates to
    /// [`offer_record`](Self::offer_record).
    fn offer(&mut self, post: &Post) -> Decision {
        let record = post.to_record(self.config().simhash);
        self.offer_record(record)
    }

    /// The engine's configuration.
    fn config(&self) -> &EngineConfig;

    /// Performance counters accumulated so far.
    fn metrics(&self) -> &EngineMetrics;

    /// Human-readable algorithm name (`"UniBin"`, ...).
    fn name(&self) -> &'static str;

    /// Evict every record that can no longer cover an arrival at `now`
    /// (timestamp older than `now − λt`) from **all** bins.
    ///
    /// Engines evict lazily on the bins they touch per offer; bins of
    /// inactive authors/cliques would otherwise retain their last window
    /// forever. Single-user deployments rarely care, but the multi-user
    /// engines host thousands of mostly-idle sub-engines and call this
    /// periodically (a timer sweep in a real deployment).
    fn evict_expired(&mut self, now: firehose_stream::Timestamp);

    /// Current record payload across all bins, in bytes.
    fn memory_bytes(&self) -> u64 {
        self.metrics().memory_bytes()
    }

    /// Total estimated heap across all bins including any approximate-index
    /// overhead (tables, metadata); equals [`memory_bytes`](Self::memory_bytes)
    /// for exact engines. Benchmarks report this so approximate-mode savings
    /// are not overstated.
    fn estimated_memory_bytes(&self) -> u64 {
        self.memory_bytes()
    }

    /// Lifetime counters of the approximate coverage backend, merged across
    /// this engine's bins; `None` when the engine runs exact.
    fn approx_stats(&self) -> Option<firehose_stream::ApproxStats> {
        None
    }

    /// Attach hot-path instruments: every subsequent
    /// [`offer_record`](Self::offer_record) records its wall-clock latency
    /// and comparison count into the histograms of `obs`. Unattached engines
    /// pay only an `Option` branch per offer.
    fn attach_obs(&mut self, obs: crate::obs::EngineObs) {
        let _ = obs;
    }

    /// Serialize the engine's mutable state — counters and bins, *not* the
    /// configuration or the graph/cover (large shared artifacts the host
    /// re-supplies on restore). The bytes round-trip through
    /// [`load_state`](Self::load_state) on an engine built with the same
    /// configuration and structure, after which both engines make identical
    /// future decisions. Checkpoints (`crate::snapshot::checkpoint`) wrap
    /// these bytes in a CRC-protected section.
    fn save_state(&self, w: &mut dyn std::io::Write) -> std::io::Result<()>;

    /// Replace this engine's mutable state with bytes previously produced
    /// by [`save_state`](Self::save_state). Validates the bytes against the
    /// engine's own graph/cover structure; on error the engine state is
    /// unspecified and the engine must be discarded.
    fn load_state(
        &mut self,
        r: &mut dyn std::io::Read,
    ) -> Result<(), crate::snapshot::SnapshotError>;

    /// The engine's tag in the snapshot/checkpoint format (stable across
    /// versions; used to reject restoring state into the wrong kind).
    fn snapshot_tag(&self) -> u8;

    /// Append every **distinct** stored record (the emitted posts whose copy
    /// is still held by some bin) to `out`, in `(timestamp, id)` order.
    /// Engines that store multiple copies per emission report each post once.
    /// Used by the multi-user layer to warm-start a re-seeded component
    /// engine after subscription churn.
    fn window_records(&self, out: &mut Vec<PostRecord>);

    /// Insert `record` into the engine's bins as if it had been emitted,
    /// **without** running the coverage check and without counting a
    /// processed/emitted post (insertion and copy counters do advance).
    /// Records must be seeded in non-decreasing timestamp order before any
    /// live post is offered. This is the warm-start primitive: a re-seeded
    /// component engine inherits its predecessors' window so recently-shown
    /// posts keep covering near-duplicates across the churn point.
    fn seed_record(&mut self, record: PostRecord);
}

impl<D: Diversifier + ?Sized> Diversifier for Box<D> {
    fn offer_record(&mut self, record: PostRecord) -> Decision {
        (**self).offer_record(record)
    }

    fn offer(&mut self, post: &Post) -> Decision {
        (**self).offer(post)
    }

    fn config(&self) -> &EngineConfig {
        (**self).config()
    }

    fn metrics(&self) -> &EngineMetrics {
        (**self).metrics()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn evict_expired(&mut self, now: firehose_stream::Timestamp) {
        (**self).evict_expired(now)
    }

    fn memory_bytes(&self) -> u64 {
        (**self).memory_bytes()
    }

    fn estimated_memory_bytes(&self) -> u64 {
        (**self).estimated_memory_bytes()
    }

    fn approx_stats(&self) -> Option<firehose_stream::ApproxStats> {
        (**self).approx_stats()
    }

    fn attach_obs(&mut self, obs: crate::obs::EngineObs) {
        (**self).attach_obs(obs)
    }

    fn save_state(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        (**self).save_state(w)
    }

    fn load_state(
        &mut self,
        r: &mut dyn std::io::Read,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        (**self).load_state(r)
    }

    fn snapshot_tag(&self) -> u8 {
        (**self).snapshot_tag()
    }

    fn window_records(&self, out: &mut Vec<PostRecord>) {
        (**self).window_records(out)
    }

    fn seed_record(&mut self, record: PostRecord) {
        (**self).seed_record(record)
    }
}

/// Canonical order for [`Diversifier::window_records`] output: dedup by post
/// id, then sort by `(timestamp, id)` — the replay order warm-start seeding
/// expects.
pub(crate) fn order_window_records(out: &mut Vec<PostRecord>) {
    order_window_records_from(out, 0);
}

/// [`order_window_records`] restricted to `out[start..]`. Engines append to
/// a caller-owned buffer; ordering only their own tail keeps the appended
/// range contiguous, which multi-engine collectors (translation of local
/// author ids back to global, cross-engine seed gathering) rely on.
pub(crate) fn order_window_records_from(out: &mut Vec<PostRecord>, start: usize) {
    let tail = &mut out[start..];
    tail.sort_unstable_by_key(|r| r.id);
    let mut w = start;
    for i in start..out.len() {
        if i == start || out[i].id != out[w - 1].id {
            out[w] = out[i];
            w += 1;
        }
    }
    out.truncate(w);
    out[start..].sort_unstable_by_key(|r| (r.timestamp, r.id));
}

/// Algorithm selector for factory construction and the advisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Single shared bin ([`UniBin`]).
    UniBin,
    /// Per-author bins ([`NeighborBin`]).
    NeighborBin,
    /// Per-clique bins ([`CliqueBin`]).
    CliqueBin,
}

impl AlgorithmKind {
    /// All three algorithms, in paper order.
    pub const ALL: [AlgorithmKind; 3] = [
        AlgorithmKind::UniBin,
        AlgorithmKind::NeighborBin,
        AlgorithmKind::CliqueBin,
    ];
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AlgorithmKind::UniBin => "UniBin",
            AlgorithmKind::NeighborBin => "NeighborBin",
            AlgorithmKind::CliqueBin => "CliqueBin",
        })
    }
}

/// Build an engine of the requested kind over the author similarity graph.
///
/// For [`AlgorithmKind::CliqueBin`] the greedy clique edge cover is computed
/// here; use [`CliqueBin::with_cover`] to share a precomputed cover.
pub fn build_engine(
    kind: AlgorithmKind,
    config: EngineConfig,
    graph: Arc<UndirectedGraph>,
) -> Box<dyn Diversifier + Send> {
    match kind {
        AlgorithmKind::UniBin => Box::new(UniBin::new(config, graph)),
        AlgorithmKind::NeighborBin => Box::new(NeighborBin::new(config, graph)),
        AlgorithmKind::CliqueBin => {
            let cover = Arc::new(greedy_clique_cover(&graph));
            Box::new(CliqueBin::with_cover(config, graph, cover))
        }
    }
}

/// Build a [`CliqueBin`] reusing a precomputed cover (M-SPSD setup shares
/// covers across users).
pub fn build_cliquebin_with_cover(
    config: EngineConfig,
    graph: Arc<UndirectedGraph>,
    cover: Arc<CliqueCover>,
) -> Box<dyn Diversifier + Send> {
    Box::new(CliqueBin::with_cover(config, graph, cover))
}

/// Run `engine` over a whole time-ordered stream, returning every decision.
pub fn diversify_stream<D: Diversifier + ?Sized>(engine: &mut D, posts: &[Post]) -> Vec<Decision> {
    posts.iter().map(|p| engine.offer(p)).collect()
}

/// Run `engine` over a stream and return only the emitted post ids — the
/// diversified sub-stream `Z`.
pub fn diversified_ids<D: Diversifier + ?Sized>(engine: &mut D, posts: &[Post]) -> Vec<u64> {
    posts
        .iter()
        .filter(|p| engine.offer(p).is_emitted())
        .map(|p| p.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use firehose_stream::minutes;

    #[test]
    fn order_window_records_from_leaves_prefix_untouched() {
        let rec = |id: u64, author: u32, ts: u64| firehose_stream::PostRecord {
            id,
            author,
            timestamp: ts,
            fingerprint: 0,
        };
        // Prefix records (already translated by an earlier engine) carry
        // author ids that would be out of range for a later engine; ids
        // interleave so whole-buffer sorting would shuffle them into the
        // tail.
        let mut out = vec![rec(1, 900, 0), rec(5, 901, 10)];
        out.extend([rec(4, 0, 7), rec(2, 1, 3), rec(4, 0, 7)]);
        order_window_records_from(&mut out, 2);
        assert_eq!(&out[..2], &[rec(1, 900, 0), rec(5, 901, 10)]);
        assert_eq!(&out[2..], &[rec(2, 1, 3), rec(4, 0, 7)]);
    }

    #[test]
    fn display_names() {
        assert_eq!(AlgorithmKind::UniBin.to_string(), "UniBin");
        assert_eq!(AlgorithmKind::NeighborBin.to_string(), "NeighborBin");
        assert_eq!(AlgorithmKind::CliqueBin.to_string(), "CliqueBin");
    }

    #[test]
    fn factory_builds_all_kinds() {
        let graph = Arc::new(UndirectedGraph::from_edges(3, [(0, 1)]));
        let config = EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap());
        for kind in AlgorithmKind::ALL {
            let engine = build_engine(kind, config, Arc::clone(&graph));
            assert_eq!(engine.name(), kind.to_string());
            assert_eq!(engine.metrics().posts_processed, 0);
        }
    }

    #[test]
    fn diversify_stream_helpers() {
        let graph = Arc::new(UndirectedGraph::new(2));
        let config = EngineConfig::paper_defaults();
        let posts = vec![
            Post::new(1, 0, 0, "alpha beta gamma delta".into()),
            Post::new(2, 0, 1_000, "alpha beta gamma delta".into()),
            Post::new(
                3,
                1,
                2_000,
                "totally different subject matter entirely".into(),
            ),
        ];
        let mut engine = build_engine(AlgorithmKind::UniBin, config, graph);
        let ids = diversified_ids(engine.as_mut(), &posts);
        assert_eq!(ids, vec![1, 3]);
    }
}
