//! NeighborBin (Section 4.2): one bin per author.
//!
//! Each author's bin holds the emitted posts *of that author and of her
//! similar authors*. An arriving post is checked only against its author's
//! bin — all candidates there are author-similar by construction, so the
//! coverage test reduces to content + time. The price: an emitted post is
//! inserted into `d + 1` bins (its author's and every neighbor's).

use std::sync::Arc;

use firehose_graph::UndirectedGraph;
use firehose_simhash::{active_kernel, KernelKind};
use firehose_stream::{ApproxCandidate, PostRecord};

use crate::backend::CoverageBackend;
use crate::config::EngineConfig;
#[cfg(debug_assertions)]
use crate::coverage::authors_similar;
use crate::decision::Decision;
use crate::engine::Diversifier;
use crate::metrics::EngineMetrics;
use crate::obs::EngineObs;

/// Per-author-bin engine: fewest comparisons, most RAM (Table 3).
pub struct NeighborBin {
    config: EngineConfig,
    graph: Arc<UndirectedGraph>,
    /// One bin per author id.
    bins: Vec<CoverageBackend>,
    /// Reusable candidate buffer for approximate-backend probes.
    scratch: Vec<ApproxCandidate>,
    /// Hamming kernel selected once at construction.
    kernel: KernelKind,
    metrics: EngineMetrics,
    obs: Option<EngineObs>,
}

impl NeighborBin {
    /// New engine over the author similarity graph `G`. Allocates one (empty)
    /// bin per author.
    pub fn new(config: EngineConfig, graph: Arc<UndirectedGraph>) -> Self {
        // Author `a`'s bin receives the posts of `a` and her neighbors: its
        // share of the window is (degree + 1) / m of the stream (assuming
        // uniform posting — a hint, not a bound).
        let m = graph.node_count();
        let hint = config.window_capacity_hint();
        let bins = (0..m)
            .map(|a| {
                CoverageBackend::for_config(&config, hint * (graph.degree(a as u32) + 1) / m.max(1))
            })
            .collect();
        Self {
            config,
            graph,
            bins,
            scratch: Vec::new(),
            kernel: active_kernel(),
            metrics: EngineMetrics::default(),
            obs: None,
        }
    }

    /// The similarity graph this engine was built from.
    pub fn graph(&self) -> &UndirectedGraph {
        &self.graph
    }

    /// Snapshot internals (see `crate::snapshot`).
    pub(crate) fn parts(&self) -> (&[CoverageBackend], &EngineMetrics) {
        (&self.bins, &self.metrics)
    }

    /// Rebuild from snapshot internals (see `crate::snapshot`).
    pub(crate) fn from_parts(
        config: EngineConfig,
        graph: Arc<UndirectedGraph>,
        bins: Vec<CoverageBackend>,
        metrics: EngineMetrics,
    ) -> Self {
        assert_eq!(
            bins.len(),
            graph.node_count(),
            "bin count must match authors"
        );
        Self {
            config,
            graph,
            bins,
            scratch: Vec::new(),
            kernel: active_kernel(),
            metrics,
            obs: None,
        }
    }

    fn offer_inner(&mut self, record: PostRecord) -> Decision {
        assert!(
            (record.author as usize) < self.bins.len(),
            "author {} outside the similarity graph (m = {})",
            record.author,
            self.bins.len()
        );
        self.metrics.posts_processed += 1;
        let t = self.config.thresholds;

        // Probe only the author's own bin.
        let bin = &mut self.bins[record.author as usize];
        let evicted = bin.evict_expired(record.timestamp, t.lambda_t);
        self.metrics.on_evict(evicted as u64);

        // All candidates in the bin are author-similar by construction, so
        // coverage reduces to the content+time lookup: the newest in-window
        // fingerprint within λc is the post the scalar walk would stop at.
        #[cfg(debug_assertions)]
        if let Some(exact) = bin.as_exact() {
            let view = exact.window(record.timestamp, t.lambda_t);
            for &author in view.authors {
                debug_assert!(
                    authors_similar(&self.graph, author, record.author),
                    "bin invariant violated: non-similar author {author} in bin {}",
                    record.author
                );
            }
        }
        let (found, comparisons) =
            bin.find_newest_within(self.kernel, &record, &t, &mut self.scratch);
        self.metrics.comparisons += comparisons;
        if let Some(by) = found {
            return Decision::Covered { by };
        }

        // Emit: store a copy in the author's bin and in each neighbor's bin.
        // Touched bins are evicted opportunistically so memory tracks the
        // λt window even for authors that rarely post.
        let mut inserted = 0u64;
        let mut lazily_evicted = 0u64;
        {
            let bin = &mut self.bins[record.author as usize];
            lazily_evicted += bin.push(record);
            inserted += 1;
        }
        for &nb in self.graph.neighbors(record.author) {
            let bin = &mut self.bins[nb as usize];
            lazily_evicted += bin.evict_expired(record.timestamp, t.lambda_t) as u64;
            lazily_evicted += bin.push(record);
            inserted += 1;
        }
        self.metrics.on_evict(lazily_evicted);
        self.metrics.on_insert(inserted, PostRecord::SIZE_BYTES);
        self.metrics.posts_emitted += 1;
        Decision::Emitted
    }
}

impl Diversifier for NeighborBin {
    fn offer_record(&mut self, record: PostRecord) -> Decision {
        let started = self.obs.is_some().then(std::time::Instant::now);
        let before = self.metrics.comparisons;
        let decision = self.offer_inner(record);
        if let (Some(t0), Some(obs)) = (started, &self.obs) {
            obs.record_offer(t0, self.metrics.comparisons - before);
        }
        decision
    }

    fn config(&self) -> &EngineConfig {
        &self.config
    }

    fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    fn name(&self) -> &'static str {
        "NeighborBin"
    }

    fn evict_expired(&mut self, now: firehose_stream::Timestamp) {
        let lambda_t = self.config.thresholds.lambda_t;
        let mut evicted = 0u64;
        for bin in &mut self.bins {
            evicted += bin.evict_expired(now, lambda_t) as u64;
        }
        self.metrics.on_evict(evicted);
    }

    fn attach_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    fn save_state(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        crate::snapshot::write_state_neighborbin(w, &self.bins, &self.metrics)
    }

    fn load_state(
        &mut self,
        r: &mut dyn std::io::Read,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        let (bins, metrics) =
            crate::snapshot::read_state_neighborbin(r, &self.config, &self.graph)?;
        self.bins = bins;
        self.metrics = metrics;
        Ok(())
    }

    fn snapshot_tag(&self) -> u8 {
        crate::snapshot::TAG_NEIGHBORBIN
    }

    fn window_records(&self, out: &mut Vec<PostRecord>) {
        // A copy lives in the author's own bin and every neighbor's; the
        // author's bin alone already holds one copy of each emission.
        let start = out.len();
        for (a, bin) in self.bins.iter().enumerate() {
            bin.for_each_record(|r| {
                if r.author as usize == a {
                    out.push(r);
                }
            });
        }
        crate::engine::order_window_records_from(out, start);
    }

    fn seed_record(&mut self, record: PostRecord) {
        let mut displaced = self.bins[record.author as usize].push(record);
        let mut inserted = 1u64;
        for &nb in self.graph.neighbors(record.author) {
            displaced += self.bins[nb as usize].push(record);
            inserted += 1;
        }
        if displaced > 0 {
            self.metrics.on_evict(displaced);
        }
        self.metrics.on_insert(inserted, PostRecord::SIZE_BYTES);
    }

    fn approx_stats(&self) -> Option<firehose_stream::ApproxStats> {
        if !self.config.memory.is_approx() {
            return None;
        }
        let mut acc = firehose_stream::ApproxStats::default();
        for bin in &self.bins {
            acc.merge(&bin.approx_stats()?);
        }
        Some(acc)
    }

    fn estimated_memory_bytes(&self) -> u64 {
        self.bins
            .iter()
            .map(|b| b.estimated_total_bytes() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Thresholds;
    use firehose_stream::minutes;

    fn rec(id: u64, author: u32, ts: u64, fp: u64) -> PostRecord {
        PostRecord {
            id,
            author,
            timestamp: ts,
            fingerprint: fp,
        }
    }

    fn paper_graph() -> Arc<UndirectedGraph> {
        // Figure 5a: a1..a4 => 0..3, edges 0-1, 0-2, 1-2, 2-3.
        Arc::new(UndirectedGraph::from_edges(
            4,
            [(0, 1), (0, 2), (1, 2), (2, 3)],
        ))
    }

    #[test]
    fn reproduces_figure6b() {
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = NeighborBin::new(config, paper_graph());
        // Same stream as the UniBin test (Figure 5b).
        let decisions: Vec<_> = [
            rec(1, 0, 0, 0b0000),
            rec(2, 1, 60_000, 0xFF00),
            rec(3, 2, 120_000, 0b0001),
            rec(4, 3, 180_000, 0x00FF),
            rec(5, 2, 240_000, 0x00FE),
        ]
        .into_iter()
        .map(|r| engine.offer_record(r))
        .collect();

        assert_eq!(decisions[0], Decision::Emitted);
        assert_eq!(decisions[1], Decision::Emitted);
        assert_eq!(decisions[2], Decision::Covered { by: 1 });
        assert_eq!(decisions[3], Decision::Emitted);
        assert_eq!(decisions[4], Decision::Covered { by: 4 });

        // Figure 6b: P1 goes to bins of a1, a2, a3 (3 copies); P2 likewise
        // (3 copies); P4 to bins of a3, a4 (2 copies). P3 and P5 are covered.
        assert_eq!(engine.metrics().insertions, 3 + 3 + 2);
    }

    #[test]
    fn p4_checks_empty_bin_without_comparisons() {
        // "When P4 comes, a4's post bin is blank and thus P4 is added ...
        // without incurring any post comparisons."
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = NeighborBin::new(config, paper_graph());
        engine.offer_record(rec(1, 0, 0, 0b0000));
        engine.offer_record(rec(2, 1, 60_000, 0xFF00));
        let before = engine.metrics().comparisons;
        engine.offer_record(rec(4, 3, 180_000, 0x00FF));
        assert_eq!(engine.metrics().comparisons, before, "a4's bin was empty");
    }

    #[test]
    fn fewer_comparisons_than_unibin() {
        use crate::engine::UniBin;
        // Star graph: hub 0 with leaves; posts from mutually non-similar leaves.
        let graph = Arc::new(UndirectedGraph::from_edges(
            5,
            [(0, 1), (0, 2), (0, 3), (0, 4)],
        ));
        let config = EngineConfig::new(Thresholds::new(0, minutes(60), 0.7).unwrap());
        let mut nb = NeighborBin::new(config, Arc::clone(&graph));
        let mut ub = UniBin::new(config, graph);
        for i in 0..20u64 {
            let r = rec(i, 1 + (i % 4) as u32, i * 1_000, 1 << (i % 60));
            nb.offer_record(r);
            ub.offer_record(r);
        }
        assert!(
            nb.metrics().comparisons < ub.metrics().comparisons,
            "NeighborBin {} vs UniBin {}",
            nb.metrics().comparisons,
            ub.metrics().comparisons
        );
        assert!(nb.metrics().insertions > ub.metrics().insertions);
    }

    #[test]
    fn neighbor_coverage_found_via_own_bin() {
        let graph = Arc::new(UndirectedGraph::from_edges(2, [(0, 1)]));
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = NeighborBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 0, 0, 0)).is_emitted());
        // Author 1's bin received a copy of post 1 (neighbor insert).
        assert_eq!(
            engine.offer_record(rec(2, 1, 1_000, 1)).covered_by(),
            Some(1)
        );
    }

    #[test]
    fn non_neighbors_never_cover() {
        let graph = Arc::new(UndirectedGraph::new(2)); // no edges
        let config = EngineConfig::new(Thresholds::new(64, minutes(30), 0.7).unwrap());
        let mut engine = NeighborBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 0, 0, 0)).is_emitted());
        assert!(engine.offer_record(rec(2, 1, 1, 0)).is_emitted());
    }

    #[test]
    fn same_author_covers_via_own_bin() {
        let graph = Arc::new(UndirectedGraph::new(1));
        let config = EngineConfig::new(Thresholds::new(2, minutes(30), 0.7).unwrap());
        let mut engine = NeighborBin::new(config, graph);
        assert!(engine.offer_record(rec(1, 0, 0, 0)).is_emitted());
        assert_eq!(engine.offer_record(rec(2, 0, 1, 0)).covered_by(), Some(1));
    }

    #[test]
    #[should_panic(expected = "outside the similarity graph")]
    fn out_of_range_author_panics() {
        let graph = Arc::new(UndirectedGraph::new(1));
        let mut engine = NeighborBin::new(EngineConfig::paper_defaults(), graph);
        engine.offer_record(rec(1, 5, 0, 0));
    }

    #[test]
    fn stale_neighbor_bins_evicted_on_insert() {
        let graph = Arc::new(UndirectedGraph::from_edges(2, [(0, 1)]));
        let config = EngineConfig::new(Thresholds::new(0, 1_000, 0.7).unwrap());
        let mut engine = NeighborBin::new(config, graph);
        engine.offer_record(rec(1, 0, 0, 0b01));
        // Far in the future, author 0 posts again: both its own bin and the
        // neighbor's bin shed the expired copies.
        engine.offer_record(rec(2, 0, 1_000_000, 0b10));
        assert_eq!(engine.metrics().evictions, 2);
        assert_eq!(engine.metrics().copies_stored, 2); // post 2 in 2 bins
    }
}
