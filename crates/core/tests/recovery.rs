//! Crash-recovery integration tests: kill the process at arbitrary points,
//! restore from the newest intact checkpoint, and prove the restored engine
//! makes **byte-identical** future decisions — under torn writes, bit
//! flips, truncation, and hostile (perturbed) input streams.

use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;

use firehose_core::checkpoint::{
    checkpoint_engine_to_vec, checkpoint_multi_to_vec, restore_engine_from_slice,
    restore_latest_valid, restore_latest_valid_multi, restore_multi_from_slice, CheckpointManager,
    CheckpointPolicy, RestoreError,
};
use firehose_core::engine::{build_engine, AlgorithmKind, Diversifier};
use firehose_core::multi::{MultiDiversifier, ParallelShared, SharedMulti, Subscriptions};
use firehose_core::snapshot::{restore_unibin, snapshot_unibin};
use firehose_core::{Decision, EngineConfig, Thresholds};
use firehose_graph::UndirectedGraph;
use firehose_stream::{
    guard_stream, minutes, ChaosWriter, FaultPlan, GuardConfig, GuardPolicy, Perturbator, Post,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fh-recover-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn graph() -> Arc<UndirectedGraph> {
    // 8 authors: a dense cluster {0..3}, a pair {4,5}, loners {6,7}.
    Arc::new(UndirectedGraph::from_edges(
        8,
        [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 5)],
    ))
}

fn config() -> EngineConfig {
    EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap())
}

/// Deterministic seeded stream: bursty timestamps, recurring text variants
/// (so some posts are covered and pruned), authors across all clusters.
fn stream(seed: u64, n: usize) -> Vec<Post> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ts: u64 = 0;
    (0..n as u64)
        .map(|i| {
            ts += rng.random_range(0..45_000u64);
            let author = rng.random_range(0..8u32);
            let text = format!(
                "variant {} of a recurring report from cluster news desk",
                rng.random_range(0..9u32)
            );
            Post::new(i, author, ts, text)
        })
        .collect()
}

/// ≥ 20 seeded crash offsets per engine: run with a tight checkpoint
/// cadence, "kill" at the offset (drop everything in memory), restore the
/// newest intact generation, replay the tail, and require the decisions to
/// be byte-identical to an uninterrupted reference run.
#[test]
fn kill_at_twenty_seeded_offsets_restores_identical_decisions() {
    let posts = stream(11, 600);
    let mut rng = StdRng::seed_from_u64(4242);
    for kind in AlgorithmKind::ALL {
        let mut reference_engine = build_engine(kind, config(), graph());
        let reference: Vec<Decision> = posts.iter().map(|p| reference_engine.offer(p)).collect();

        for trial in 0..20 {
            let crash_at = rng.random_range(1..posts.len());
            let dir = tempdir(&format!("kill-{kind}-{trial}"));
            let policy = CheckpointPolicy {
                every_offers: 25,
                every_millis: None,
                keep: 2,
            };
            let mut mgr = CheckpointManager::new(&dir, policy).unwrap();
            let mut engine = build_engine(kind, config(), graph());
            for p in &posts[..crash_at] {
                engine.offer(p);
                mgr.maybe_save(&engine).unwrap();
            }
            drop(engine); // the crash
            drop(mgr);

            match restore_latest_valid(&dir, kind, graph(), None) {
                Ok(restored) => {
                    let resumed = restored.manifest.posts_processed as usize;
                    assert!(resumed <= crash_at, "{kind}: cursor past the crash");
                    let mut engine = restored.engine;
                    for (p, want) in posts[resumed..].iter().zip(&reference[resumed..]) {
                        assert_eq!(
                            engine.offer(p),
                            *want,
                            "{kind}: decision diverged after restore at {crash_at}"
                        );
                    }
                }
                Err(RestoreError::NoValidCheckpoint { skipped }) => {
                    // Crashed before the first checkpoint: cold start is the
                    // documented recovery path, and nothing was skipped.
                    assert!(
                        crash_at < 25,
                        "{kind}: no checkpoint after {crash_at} offers"
                    );
                    assert!(skipped.is_empty());
                }
                Err(e) => panic!("{kind}: restore failed: {e}"),
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

fn subscriptions() -> Subscriptions {
    Subscriptions::new(
        8,
        vec![
            vec![0, 1, 2, 3, 6],
            vec![0, 1, 2, 3, 4, 5],
            vec![4, 5, 7],
            vec![6, 7],
        ],
    )
    .unwrap()
}

/// The multi-user counterpart: checkpoint every `k` stream posts, kill at
/// ≥ 20 seeded offsets, restore into a freshly-built strategy, replay.
/// The stream cursor is `generation * k` by construction (the multi
/// manifest's `posts_processed` is the engines' aggregate, not the stream
/// position).
#[test]
fn kill_at_twenty_seeded_offsets_multi_restores_identical_decisions() {
    let posts = stream(23, 400);
    let k = 20usize;
    let mut rng = StdRng::seed_from_u64(77);
    for kind in AlgorithmKind::ALL {
        let mut reference_multi = SharedMulti::new(kind, config(), &graph(), subscriptions());
        let reference: Vec<_> = posts.iter().map(|p| reference_multi.offer(p)).collect();

        for trial in 0..20 {
            let crash_at = rng.random_range(1..posts.len());
            let dir = tempdir(&format!("mkill-{kind}-{trial}"));
            let mut mgr = CheckpointManager::new(
                &dir,
                CheckpointPolicy {
                    every_offers: 1, // cadence driven by the loop below
                    every_millis: None,
                    keep: 2,
                },
            )
            .unwrap();
            let mut multi = SharedMulti::new(kind, config(), &graph(), subscriptions());
            for (i, p) in posts[..crash_at].iter().enumerate() {
                multi.offer(p);
                if (i + 1) % k == 0 {
                    mgr.save_multi(&multi).unwrap();
                }
            }
            drop(multi);

            let mut fresh = SharedMulti::new(kind, config(), &graph(), subscriptions());
            match restore_latest_valid_multi(&dir, &mut fresh) {
                Ok((manifest, _skipped)) => {
                    let resumed = (manifest.generation as usize + 1) * k;
                    assert!(resumed <= crash_at, "{kind}: cursor past the crash");
                    for (p, want) in posts[resumed..].iter().zip(&reference[resumed..]) {
                        assert_eq!(
                            fresh.offer(p),
                            *want,
                            "S_{kind}: delivery diverged after restore at {crash_at}"
                        );
                    }
                }
                Err(RestoreError::NoValidCheckpoint { .. }) => {
                    assert!(
                        crash_at < k,
                        "{kind}: no checkpoint after {crash_at} offers"
                    );
                }
                Err(e) => panic!("S_{kind}: restore failed: {e}"),
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

/// Torn writes through the chaos writer: whatever prefix reaches disk, the
/// restore path returns a typed error (or a complete write round-trips) —
/// never a panic, never silent corruption.
#[test]
fn torn_writes_yield_typed_errors_never_panics() {
    let posts = stream(5, 120);
    for kind in AlgorithmKind::ALL {
        let mut engine = build_engine(kind, config(), graph());
        for p in &posts {
            engine.offer(p);
        }
        let full = checkpoint_engine_to_vec(&engine, 1).unwrap();
        // 32 seeded tear points + both edges.
        let mut rng = StdRng::seed_from_u64(99);
        let mut cuts: Vec<u64> = (0..32)
            .map(|_| rng.random_range(0..full.len() as u64))
            .collect();
        cuts.push(0);
        cuts.push(full.len() as u64 - 1);
        for cut in cuts {
            let mut w = ChaosWriter::new(Vec::new(), FaultPlan::truncated_at(cut));
            let _ = w.write_all(&full); // the tear may surface as an Err here
            let torn = w.into_inner();
            assert!(torn.len() <= cut as usize + 1);
            match restore_engine_from_slice(&torn, kind, graph(), None) {
                Ok(_) => panic!("{kind}: torn write at {cut} restored successfully"),
                Err(e) => {
                    let _ = e.to_string(); // typed + displayable
                }
            }
        }
        // Seeded bit flips anywhere in the container are detected.
        for (offset, bit) in (0..32).map(|_| {
            (
                rng.random_range(0..full.len() as u64),
                rng.random_range(0..8u32) as u8,
            )
        }) {
            let mut w = ChaosWriter::new(Vec::new(), FaultPlan::bit_flip(offset, bit));
            w.write_all(&full).unwrap();
            let flipped = w.into_inner();
            assert_eq!(flipped.len(), full.len());
            assert!(
                restore_engine_from_slice(&flipped, kind, graph(), None).is_err(),
                "{kind}: bit flip at ({offset}, {bit}) went undetected"
            );
        }
    }
}

/// The multi checkpoint container rejects every truncation and every
/// byte-level flip with a typed error too.
#[test]
fn multi_container_fuzz_truncation_and_flips() {
    let posts = stream(31, 100);
    let mut multi = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subscriptions());
    for p in &posts {
        multi.offer(p);
    }
    let full = checkpoint_multi_to_vec(&multi, 0).unwrap();
    for cut in 0..full.len() {
        let mut fresh =
            SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subscriptions());
        assert!(
            restore_multi_from_slice(&full[..cut], &mut fresh).is_err(),
            "multi truncation at {cut} went undetected"
        );
    }
    for i in 0..full.len() {
        let mut bad = full.clone();
        bad[i] ^= 0x10;
        let mut fresh =
            SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subscriptions());
        assert!(
            restore_multi_from_slice(&bad, &mut fresh).is_err(),
            "multi bit flip at byte {i} went undetected"
        );
    }
}

/// The FHSNAP03 whole-file snapshot rejects every truncation with a typed
/// error as well (satellite: snapshot round-trip fuzz at every boundary).
#[test]
fn whole_file_snapshot_truncation_fuzz() {
    let posts = stream(17, 80);
    let mut engine = firehose_core::engine::UniBin::new(config(), graph());
    for p in &posts {
        engine.offer(p);
    }
    let mut full = Vec::new();
    snapshot_unibin(&engine, &mut full).unwrap();
    for cut in 0..full.len() {
        let mut r: &[u8] = &full[..cut];
        assert!(
            restore_unibin(&mut r, graph()).is_err(),
            "snapshot truncation at {cut} went undetected"
        );
    }
    let mut r: &[u8] = &full;
    restore_unibin(&mut r, graph()).unwrap();
}

/// ParallelShared serializes its state in global component order, so its
/// bytes are interchangeable with SharedMulti's regardless of shard count.
#[test]
fn parallel_state_is_byte_compatible_with_shared() {
    let posts = stream(41, 200);
    let mut shared = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subscriptions());
    for p in &posts {
        shared.offer(p);
    }
    let mut shared_bytes = Vec::new();
    shared.save_state(&mut shared_bytes).unwrap();

    // Reference future decisions: keep driving the shared strategy.
    let tail = stream(43, 40);
    let expect: Vec<_> = tail.iter().map(|p| shared.offer(p)).collect();

    for threads in [1, 3] {
        let mut par = ParallelShared::new(
            AlgorithmKind::UniBin,
            config(),
            &graph(),
            subscriptions(),
            threads,
        )
        .unwrap();
        par.process_stream(&posts);
        let mut par_bytes = Vec::new();
        par.save_state(&mut par_bytes).unwrap();
        assert_eq!(
            par_bytes, shared_bytes,
            "P({threads}) state bytes differ from S_"
        );

        // Cross-load both ways: shared state into a fresh parallel runner…
        let mut fresh = ParallelShared::new(
            AlgorithmKind::UniBin,
            config(),
            &graph(),
            subscriptions(),
            threads,
        )
        .unwrap();
        let mut r: &[u8] = &shared_bytes;
        fresh.load_state(&mut r).unwrap();
        assert_eq!(
            fresh.process_stream(&tail),
            expect,
            "P({threads}) diverged after loading S_ state"
        );
        // …and parallel state into a fresh shared strategy.
        let mut back = SharedMulti::new(AlgorithmKind::UniBin, config(), &graph(), subscriptions());
        let mut r: &[u8] = &par_bytes;
        back.load_state(&mut r).unwrap();
        let replayed: Vec<_> = tail.iter().map(|p| back.offer(p)).collect();
        assert_eq!(
            replayed, expect,
            "S_ diverged after loading P({threads}) state"
        );
    }
}

/// Heavily perturbed streams — duplicates, drops, reordering, clock skew —
/// must never panic any guard policy, and whatever the guard admits must be
/// time-ordered and safely consumable by every engine.
#[test]
fn perturbed_streams_never_panic_under_any_guard_policy() {
    let posts = stream(53, 300);
    let policies = [
        GuardPolicy::Strict,
        GuardPolicy::Clamp,
        GuardPolicy::Reorder { bound_ms: 0 },
        GuardPolicy::Reorder { bound_ms: 700 },
        GuardPolicy::Reorder { bound_ms: 120_000 },
    ];
    for seed in 0..6u64 {
        let perturbed = Perturbator::new(seed)
            .with_dup_rate(0.25)
            .with_drop_rate(0.10)
            .with_reorder_ms(90_000)
            .with_skew_ms(60_000)
            .perturb(&posts);
        for policy in policies {
            let cfg = GuardConfig::new(policy).with_author_count(8);
            let (admitted, stats) = guard_stream(cfg, perturbed.clone());
            assert_eq!(
                stats.offered(),
                perturbed.len() as u64,
                "guard lost track of offers"
            );
            for w in admitted.windows(2) {
                assert!(
                    w[0].timestamp <= w[1].timestamp,
                    "guard admitted an out-of-order post under {policy:?}"
                );
            }
            for kind in AlgorithmKind::ALL {
                let mut engine = build_engine(kind, config(), graph());
                for p in &admitted {
                    engine.offer(p);
                }
                assert_eq!(
                    engine.metrics().posts_processed,
                    admitted.len() as u64,
                    "{kind} dropped admitted posts"
                );
            }
        }
    }
}
