//! Criterion micro-benchmarks for the hot primitives and the per-post
//! engine costs.
//!
//! ```sh
//! cargo bench -p firehose-bench
//! ```

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::EngineConfig;
use firehose_datagen::{
    SocialGenConfig, SyntheticSocialGraph, TextGen, TextGenConfig, Workload, WorkloadConfig,
};
use firehose_graph::{build_similarity_graph, greedy_clique_cover, UndirectedGraph};
use firehose_simhash::{hamming_distance, simhash, HammingIndex, SimHashOptions};
use firehose_stream::{hours, Post, PostRecord, TimeWindowBin};

fn bench_simhash(c: &mut Criterion) {
    let mut textgen = TextGen::new(TextGenConfig::default(), 1);
    let tweets: Vec<String> = (0..512).map(|_| textgen.base_tweet()).collect();
    let bytes: u64 = tweets.iter().map(|t| t.len() as u64).sum();

    let mut group = c.benchmark_group("simhash");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("fingerprint_512_tweets", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in &tweets {
                acc ^= simhash(black_box(t), SimHashOptions::paper());
            }
            acc
        })
    });
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    let fps: Vec<u64> = (0..1024u64)
        .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
        .collect();
    let mut group = c.benchmark_group("hamming");
    group.throughput(Throughput::Elements(fps.len() as u64 * fps.len() as u64));
    group.bench_function("all_pairs_1024", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &a in &fps {
                for &b2 in &fps {
                    acc = acc.wrapping_add(hamming_distance(a, b2));
                }
            }
            acc
        })
    });
    group.finish();
}

/// Shared fixture: a small synthetic workload and its similarity graph.
fn engine_fixture() -> (Arc<UndirectedGraph>, Vec<Post>) {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(3),
            ..WorkloadConfig::default()
        },
    );
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    (graph, workload.posts)
}

fn bench_engines(c: &mut Criterion) {
    let (graph, posts) = engine_fixture();
    let mut group = c.benchmark_group("engine_offer");
    group.throughput(Throughput::Elements(posts.len() as u64));
    for kind in AlgorithmKind::ALL {
        group.bench_function(kind.to_string(), |b| {
            b.iter_batched(
                || build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&graph)),
                |mut engine| {
                    for post in &posts {
                        black_box(engine.offer(post));
                    }
                    engine.metrics().posts_emitted
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let similarity = build_similarity_graph(&social.graph, 0.7);

    let mut group = c.benchmark_group("graph");
    group.bench_function("build_similarity_graph_240", |b| {
        b.iter(|| build_similarity_graph(black_box(&social.graph), 0.7))
    });
    group.bench_function("greedy_clique_cover_240", |b| {
        b.iter(|| greedy_clique_cover(black_box(&similarity)))
    });
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let records: Vec<PostRecord> = (0..4_096u64)
        .map(|i| PostRecord {
            id: i,
            author: (i % 64) as u32,
            timestamp: i * 500,
            fingerprint: i.wrapping_mul(0x9E37),
        })
        .collect();
    let mut group = c.benchmark_group("window");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("push_evict_4096", |b| {
        b.iter(|| {
            let mut bin = TimeWindowBin::new();
            for &r in &records {
                bin.evict_expired(r.timestamp, 60_000);
                bin.push(r);
            }
            bin.len()
        })
    });
    group.finish();
}

fn bench_manku_index(c: &mut Criterion) {
    let mut textgen = TextGen::new(TextGenConfig::default(), 5);
    let fps: Vec<u64> = (0..4_096)
        .map(|_| simhash(&textgen.base_tweet(), SimHashOptions::paper()))
        .collect();

    let mut index = HammingIndex::new(3).expect("valid");
    for &fp in &fps {
        index.insert(fp);
    }
    let queries = &fps[..64];

    let mut group = c.benchmark_group("near_duplicate_lookup_k3");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("manku_index", |b| {
        let mut matches = Vec::new();
        b.iter(|| {
            let mut acc = 0usize;
            for &q in queries {
                index.query_into(black_box(q), &mut matches);
                acc += matches.len();
            }
            acc
        })
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in queries {
                acc += fps
                    .iter()
                    .filter(|&&fp| hamming_distance(fp, q) <= 3)
                    .count();
            }
            acc
        })
    });
    group.finish();
}

fn bench_incremental_index(c: &mut Criterion) {
    use firehose_graph::SimilarityIndex;
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());

    let mut group = c.benchmark_group("incremental_similarity");
    group.bench_function("bootstrap_240_authors", |b| {
        b.iter(|| SimilarityIndex::from_graph(black_box(&social.graph)))
    });

    let index = SimilarityIndex::from_graph(&social.graph);
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("follow_events_1000", |b| {
        b.iter_batched(
            || index.clone(),
            |mut idx| {
                for i in 0..1_000u32 {
                    let (u, f) = (i % 240, (i * 7 + 3) % 240);
                    if i % 3 == 0 {
                        idx.remove_follow(u, f);
                    } else {
                        idx.add_follow(u, f);
                    }
                }
                idx.node_count()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_persistence(c: &mut Criterion) {
    use firehose_graph::io::{read_undirected, write_undirected};
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let graph = build_similarity_graph(&social.graph, 0.7);
    let mut encoded = Vec::new();
    write_undirected(&graph, &mut encoded).expect("encode");

    let mut group = c.benchmark_group("graph_io");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("write_similarity_graph", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_undirected(black_box(&graph), &mut buf).expect("encode");
            buf.len()
        })
    });
    group.bench_function("read_similarity_graph", |b| {
        b.iter(|| read_undirected(&mut black_box(encoded.as_slice())).expect("decode"))
    });
    group.finish();
}

fn bench_corpus(c: &mut Criterion) {
    use firehose_stream::corpus::{read_posts, write_posts};
    let (_, posts) = engine_fixture();
    let mut encoded = Vec::new();
    write_posts(&posts, &mut encoded).expect("encode");

    let mut group = c.benchmark_group("corpus");
    group.throughput(Throughput::Elements(posts.len() as u64));
    group.bench_function("write_posts", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            write_posts(black_box(&posts), &mut buf).expect("encode");
            buf.len()
        })
    });
    group.bench_function("read_posts", |b| {
        b.iter(|| {
            read_posts(&mut black_box(encoded.as_slice()))
                .expect("decode")
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_simhash, bench_hamming, bench_engines, bench_graph_construction,
        bench_window, bench_manku_index, bench_incremental_index, bench_persistence,
        bench_corpus
}
criterion_main!(benches);
