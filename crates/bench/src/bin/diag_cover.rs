//! Diagnostic: clique-cover shape on the synthetic similarity graph.

use firehose_bench::{Dataset, Scale};
use firehose_graph::greedy_clique_cover;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    for lambda_a in [0.6, 0.7, 0.8] {
        let g = data.similarity_graph(lambda_a);
        let t0 = std::time::Instant::now();
        let cover = greedy_clique_cover(&g);
        let count = cover.count();
        let total = cover.total_size();
        let clique_edges: usize = cover
            .cliques()
            .iter()
            .map(|k| k.len() * (k.len() - 1) / 2)
            .sum();
        println!(
            "λa={lambda_a}: edges={} cliques={count} total_size={total} c={:.2} s={:.2} clique_edges={clique_edges} q={:.3} valid={:?} ({:.2?})",
            g.edge_count(),
            cover.avg_cliques_per_member(),
            cover.avg_clique_size(),
            g.edge_count() as f64 / clique_edges.max(1) as f64,
            cover.validate(&g).is_ok(),
            t0.elapsed()
        );
        // clique size histogram (coarse)
        let mut hist = [0usize; 8];
        for k in cover.cliques() {
            let b = match k.len() {
                0..=2 => 0,
                3..=4 => 1,
                5..=8 => 2,
                9..=16 => 3,
                17..=32 => 4,
                33..=64 => 5,
                65..=128 => 6,
                _ => 7,
            };
            hist[b] += 1;
        }
        println!(
            "  sizes ≤2:{} 3-4:{} 5-8:{} 9-16:{} 17-32:{} 33-64:{} 65-128:{} >128:{}",
            hist[0], hist[1], hist[2], hist[3], hist[4], hist[5], hist[6], hist[7]
        );
    }
}
