//! Table 1: example near-duplicate tweet pairs with their Hamming distances.
//!
//! The paper's table shows three real pairs (re-shortened URL / quote with
//! attribution suffix / truncated syndication copy) at distances 3, 8 and 13.
//! We print one generated example per mutation class, plus the paper's own
//! pairs fingerprinted by our SimHash for a direct comparison.

use firehose_datagen::{MutationClass, TextGen, TextGenConfig};
use firehose_simhash::{hamming_distance, simhash, SimHashOptions};

fn distance(a: &str, b: &str, opts: SimHashOptions) -> u32 {
    hamming_distance(simhash(a, opts), simhash(b, opts))
}

fn main() {
    let raw = SimHashOptions::raw();
    let norm = SimHashOptions::paper();

    println!("== Table 1: the paper's pairs under our SimHash ==");
    let paper_pairs = [
        (
            "Over 300 people missing after South Korean ferry sinks. (Reuters) Story: http://t.co/9w2JrurhKm",
            "Over 300 people missing after South Korean ferry sinks. (Reuters) Story: http://t.co/E1vKp9JJfe",
            3u32,
        ),
        (
            "\u{201c}In order to succeed, your desire for success should be greater than your fear of failure\u{201d} Bill Cosby",
            "In order to succeed, your desire for success should be greater than your fear of failure. #quote #success - Bill Cosby",
            8,
        ),
        (
            "Alibaba's growth accelerates, U.S. IPO filing expected next week http://t.co/mUcmLJ4cpc #Technology #Reuters",
            "Alibaba's growth accelerates, U.S. IPO filing expected next week: SAN FRANCISCO (Reuters) - Alibaba Group Hold... http://t.co/aLAV8w4gWF",
            13,
        ),
    ];
    for (i, (a, b, paper_d)) in paper_pairs.iter().enumerate() {
        println!(
            "pair {}: paper(raw)={}  ours(raw)={}  ours(normalized)={}",
            i + 1,
            paper_d,
            distance(a, b, raw),
            distance(a, b, norm)
        );
    }

    println!("\n== generated examples per mutation class ==");
    let mut textgen = TextGen::new(TextGenConfig::default(), 11);
    for class in MutationClass::ALL {
        let base = textgen.base_tweet();
        let mutated = textgen.mutate(&base, class);
        println!(
            "--- {class:?} (raw d={}, normalized d={})",
            distance(&base, &mutated, raw),
            distance(&base, &mutated, norm)
        );
        println!("  A: {base}");
        println!("  B: {mutated}");
    }
}
