//! Ablation A5: the Section 3 preprocessing variants.
//!
//! Beyond plain normalization the paper "also tried other methods of text
//! preprocessing such as expanding shortened URLs, varying the weights of
//! user mentions and hashtags (by creating artificial copies), and expanding
//! abbreviations. However, these methods had no significant impact to the
//! precision and recall." We rerun that comparison over the surrogate study:
//! each variant's crossover F1 should sit within noise of the plain
//! normalized pipeline.

use firehose_bench::{f3, Report, Scale};
use firehose_datagen::{PrecisionRecall, UserStudy, UserStudyConfig};
use firehose_simhash::SimHashOptions;
use firehose_text::{expand_abbreviations, TokenWeights};

fn crossover(curve: &[PrecisionRecall]) -> PrecisionRecall {
    *curve
        .iter()
        .min_by(|x, y| {
            (x.precision - x.recall)
                .abs()
                .partial_cmp(&(y.precision - y.recall).abs())
                .expect("finite")
        })
        .expect("non-empty")
}

fn f1(pr: PrecisionRecall) -> f64 {
    2.0 * pr.precision * pr.recall / (pr.precision + pr.recall).max(1e-9)
}

fn main() {
    let scale = Scale::from_env();
    let pairs_per_distance = if scale == Scale::Test { 15 } else { 100 };
    let study = UserStudy::generate(UserStudyConfig {
        pairs_per_distance,
        ..UserStudyConfig::default()
    });
    eprintln!("[a5] {} labeled pairs", study.len());

    let mut r = Report::new(
        "ablation_preprocessing",
        &["variant", "crossover_h", "precision", "recall", "f1"],
    );
    let mut add = |name: &str, curve: Vec<PrecisionRecall>| {
        let c = crossover(&curve);
        r.row(&[
            name.into(),
            c.threshold.to_string(),
            f3(c.precision),
            f3(c.recall),
            f3(f1(c)),
        ]);
        eprintln!("[a5] {name}: h={} F1={:.3}", c.threshold, f1(c));
    };

    add("raw", study.precision_recall(SimHashOptions::raw()));
    add(
        "normalized",
        study.precision_recall(SimHashOptions::paper()),
    );
    add(
        "normalized + abbreviations",
        study.precision_recall_with(SimHashOptions::paper(), expand_abbreviations),
    );
    let registry = study.url_registry.clone();
    add(
        "normalized + expanded URLs",
        study.precision_recall_with(SimHashOptions::paper(), |t| registry.expand_urls_in(t)),
    );
    add(
        "hashtags boosted 3x",
        study.precision_recall(SimHashOptions {
            weights: TokenWeights {
                hashtag: 3.0,
                ..TokenWeights::uniform()
            },
            ..SimHashOptions::paper()
        }),
    );
    add(
        "mentions boosted 3x",
        study.precision_recall(SimHashOptions {
            weights: TokenWeights {
                mention: 3.0,
                ..TokenWeights::uniform()
            },
            ..SimHashOptions::paper()
        }),
    );
    add(
        "urls dropped",
        study.precision_recall(SimHashOptions {
            weights: TokenWeights {
                url: 0.0,
                ..TokenWeights::uniform()
            },
            ..SimHashOptions::paper()
        }),
    );
    add(
        "word bigrams",
        study.precision_recall(SimHashOptions {
            ngram: 2,
            ..SimHashOptions::paper()
        }),
    );
    r.finish();
    println!("paper reference: only normalization moves the curves; the other variants had no significant impact");
}
