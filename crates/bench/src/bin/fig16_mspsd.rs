//! Figure 16: M-SPSD — per-user engines (`M_*`) vs shared-component engines
//! (`S_*`).
//!
//! Every author is also a user (paper Section 6.3). Subscription sets follow
//! the paper's reported statistics (mean ≈ 130, median ≈ 20 after
//! restriction to the crawled authors; see
//! `firehose_datagen::subscriptions`). Paper shape to reproduce:
//!
//! * `S_UniBin` ≈ 43% less running time and 27% less memory than `M_UniBin`;
//! * `S_NeighborBin` ≈ 8% and `S_CliqueBin` ≈ 4% faster than their `M_*`
//!   counterparts;
//! * `S_UniBin` is the best overall.

use std::time::Instant;

use firehose_bench::{f1, Dataset, Report, Scale};
use firehose_core::engine::AlgorithmKind;
use firehose_core::multi::{IndependentMulti, MultiDiversifier, SharedMulti, Subscriptions};
use firehose_core::{EngineConfig, Thresholds};

fn main() {
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let graph = data.similarity_graph(0.7);
    let config = EngineConfig::new(Thresholds::paper_defaults());

    let m = data.social.author_count();
    // Subscription sizes scale with the author count so the expected number
    // of similar pairs inside a subscription list (`K·d/m`) matches the
    // paper's: 130·113.7/20150 ≈ 0.73. At smaller scales the similarity
    // graph is relatively denser, and unscaled lists would percolate into
    // giant per-user components that no two users share — an artifact the
    // paper-scale run does not have.
    let ratio = m as f64 / 20_150.0;
    let sub_config = firehose_datagen::SubscriptionGenConfig {
        mean: (130.0 * ratio).max(6.0),
        median: (20.0 * ratio).max(3.0),
        ..Default::default()
    };
    let sets = firehose_datagen::generate_subscriptions(m, m, sub_config);
    let subs = Subscriptions::new(m, sets).expect("valid subscriptions");
    eprintln!(
        "[fig16] {} users, mean {:.1} / median {} subscriptions (paper: 130 / 20)",
        subs.user_count(),
        subs.mean_subscriptions(),
        subs.median_subscriptions()
    );

    let mut r = Report::new(
        "fig16_mspsd",
        &[
            "strategy",
            "time_ms",
            "peak_ram_mib",
            "comparisons",
            "insertions",
        ],
    );
    let mut summary: Vec<(AlgorithmKind, f64, f64)> = Vec::new();

    for kind in AlgorithmKind::ALL {
        // M_*: one engine per user.
        eprintln!("[fig16] building M_{kind} ...");
        let mut m_engine = IndependentMulti::new(kind, config, &graph, subs.clone());
        let t0 = Instant::now();
        for post in &data.workload.posts {
            m_engine.offer(post);
        }
        let m_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let m_metrics = m_engine.metrics();
        let m_ram = m_metrics.peak_memory_bytes as f64 / (1024.0 * 1024.0);
        r.row(&[
            m_engine.name(),
            f1(m_ms),
            format!("{m_ram:.2}"),
            m_metrics.comparisons.to_string(),
            m_metrics.insertions.to_string(),
        ]);
        drop(m_engine);

        // S_*: one engine per distinct connected component.
        eprintln!("[fig16] building S_{kind} ...");
        let mut s_engine = SharedMulti::new(kind, config, &graph, subs.clone());
        eprintln!(
            "[fig16] S_{kind}: {} distinct components",
            s_engine.component_count()
        );
        let t0 = Instant::now();
        for post in &data.workload.posts {
            s_engine.offer(post);
        }
        let s_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let s_metrics = s_engine.metrics();
        let s_ram = s_metrics.peak_memory_bytes as f64 / (1024.0 * 1024.0);
        r.row(&[
            s_engine.name(),
            f1(s_ms),
            format!("{s_ram:.2}"),
            s_metrics.comparisons.to_string(),
            s_metrics.insertions.to_string(),
        ]);

        summary.push((kind, 1.0 - s_ms / m_ms, 1.0 - s_ram / m_ram));
    }
    r.finish();

    let mut s = Report::new(
        "fig16_summary",
        &[
            "algorithm",
            "time_saved_pct",
            "ram_saved_pct",
            "paper_time_saved_pct",
        ],
    );
    for (kind, time_saved, ram_saved) in summary {
        let paper = match kind {
            AlgorithmKind::UniBin => "43",
            AlgorithmKind::NeighborBin => "8",
            AlgorithmKind::CliqueBin => "4",
        };
        s.row(&[
            kind.to_string(),
            f1(time_saved * 100.0),
            f1(ram_saved * 100.0),
            paper.into(),
        ]);
    }
    s.finish();
}
