//! Figure 3: precision/recall of the Hamming-threshold redundancy test on
//! **raw** tweet text, over the surrogate user study (2,000 stratified
//! pairs; see `firehose_datagen::labels` for the substitution rationale).

use firehose_bench::{f3, Report, Scale};
use firehose_datagen::{UserStudy, UserStudyConfig};
use firehose_simhash::SimHashOptions;

fn main() {
    let scale = Scale::from_env();
    let pairs_per_distance = if scale == Scale::Test { 15 } else { 100 };
    let study = UserStudy::generate(UserStudyConfig {
        pairs_per_distance,
        ..UserStudyConfig::default()
    });
    eprintln!(
        "[fig03] {} pairs, {} labeled redundant (paper: 949 of 2000)",
        study.len(),
        study.redundant_count()
    );

    let mut r = Report::new(
        "fig03_precision_recall_raw",
        &["threshold", "precision", "recall"],
    );
    for pr in study.precision_recall(SimHashOptions::raw()) {
        r.row(&[pr.threshold.to_string(), f3(pr.precision), f3(pr.recall)]);
    }
    r.finish();

    let cross = study.crossover(SimHashOptions::raw());
    println!(
        "crossover (raw): h={} P={:.3} R={:.3}",
        cross.threshold, cross.precision, cross.recall
    );
}
