//! Ablation A2: SimHash vs exact TF-cosine as the engine's content measure.
//!
//! Section 3 chooses SimHash over cosine purely for speed, reporting
//! equivalent detection quality (both achieve P≈0.96/R≈0.95 against the user
//! study). We measure (a) the per-comparison cost gap on this machine, and
//! (b) decision agreement between a Hamming-18 UniBin and a cosine-0.7
//! UniBin over the same stream.

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{f1, f3, Dataset, Report, Scale};
use firehose_core::coverage::authors_similar;
use firehose_core::Thresholds;
use firehose_graph::UndirectedGraph;
use firehose_simhash::{simhash, within_distance, SimHashOptions};
use firehose_stream::TimeWindowBin;
use firehose_text::normalize::{normalize, NormalizeOptions};
use firehose_text::TfVector;

/// A UniBin variant using exact TF-cosine over normalized text as the
/// content test (the "slow but accurate" baseline).
fn run_cosine_unibin(
    thresholds: &Thresholds,
    min_cosine: f64,
    graph: &UndirectedGraph,
    posts: &[firehose_stream::Post],
) -> (Vec<bool>, f64, u64) {
    let mut bin = TimeWindowBin::new();
    let mut vectors: Vec<TfVector> = Vec::new(); // indexed by bin record id
    let mut decisions = Vec::with_capacity(posts.len());
    let mut comparisons = 0u64;
    let t0 = Instant::now();
    for post in posts {
        let vector = TfVector::from_text(&normalize(&post.text, NormalizeOptions::paper()));
        bin.evict_expired(post.timestamp, thresholds.lambda_t);
        let mut covered = false;
        for stored in bin.iter_window(post.timestamp, thresholds.lambda_t) {
            comparisons += 1;
            if authors_similar(graph, stored.author, post.author)
                && vectors[stored.id as usize].cosine(&vector) >= min_cosine
            {
                covered = true;
                break;
            }
        }
        if !covered {
            // Store the vector under a dense id and reference it from the bin.
            let vid = vectors.len() as u64;
            vectors.push(vector);
            bin.push(firehose_stream::PostRecord {
                id: vid,
                author: post.author,
                timestamp: post.timestamp,
                fingerprint: 0,
            });
        }
        decisions.push(!covered);
    }
    (decisions, t0.elapsed().as_secs_f64() * 1_000.0, comparisons)
}

fn main() {
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let graph = data.similarity_graph(0.7);
    let thresholds = Thresholds::paper_defaults();
    // Cosine is orders of magnitude slower per comparison; cap the stream.
    let cap = match scale {
        Scale::Test => data.workload.len(),
        Scale::Bench => 20_000,
        Scale::Paper => 40_000,
    };
    let posts = &data.workload.posts[..data.workload.len().min(cap)];

    // SimHash engine.
    let simhash_stats = firehose_bench::run_spsd(
        firehose_core::AlgorithmKind::UniBin,
        thresholds,
        Arc::clone(&graph),
        posts,
    );
    let mut simhash_engine = firehose_core::engine::UniBin::new(
        firehose_core::EngineConfig::new(thresholds),
        Arc::clone(&graph),
    );
    let simhash_decisions: Vec<bool> = posts
        .iter()
        .map(|p| firehose_core::engine::Diversifier::offer(&mut simhash_engine, p).is_emitted())
        .collect();

    // Cosine engine.
    let (cosine_decisions, cosine_ms, cosine_comparisons) =
        run_cosine_unibin(&thresholds, 0.7, &graph, posts);

    let agree = simhash_decisions
        .iter()
        .zip(&cosine_decisions)
        .filter(|(a, b)| a == b)
        .count();

    // Microbenchmark the primitive comparisons.
    let fp_a = simhash(&posts[0].text, SimHashOptions::paper());
    let fp_b = simhash(&posts[1].text, SimHashOptions::paper());
    let va = TfVector::from_text(&posts[0].text);
    let vb = TfVector::from_text(&posts[1].text);
    let reps = 3_000_000u64;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..reps {
        acc += u64::from(within_distance(fp_a.wrapping_add(i), fp_b, 18));
    }
    let hamming_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;
    let reps2 = 300_000u64;
    let t0 = Instant::now();
    let mut acc2 = 0.0f64;
    for _ in 0..reps2 {
        acc2 += va.cosine(&vb);
    }
    let cosine_ns = t0.elapsed().as_secs_f64() * 1e9 / reps2 as f64;
    std::hint::black_box((acc, acc2));

    let mut r = Report::new(
        "ablation_simhash_vs_cosine",
        &["measure", "simhash", "cosine", "ratio"],
    );
    r.row(&[
        "stream ingest (ms)".into(),
        f1(simhash_stats.elapsed_ms),
        f1(cosine_ms),
        f1(cosine_ms / simhash_stats.elapsed_ms.max(1e-9)),
    ]);
    r.row(&[
        "comparisons".into(),
        simhash_stats.metrics.comparisons.to_string(),
        cosine_comparisons.to_string(),
        "-".into(),
    ]);
    r.row(&[
        "ns per content test".into(),
        f1(hamming_ns),
        f1(cosine_ns),
        f1(cosine_ns / hamming_ns.max(1e-12)),
    ]);
    r.row(&[
        "decision agreement".into(),
        f3(agree as f64 / posts.len() as f64),
        "1.000".into(),
        "-".into(),
    ]);
    r.finish();
}
