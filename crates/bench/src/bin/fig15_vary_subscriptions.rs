//! Figure 15: performance across the number of subscribed authors.
//!
//! The user follows a random author sample of varying size; the stream is
//! restricted to those authors and the similarity graph to the induced
//! subgraph. Paper shape: UniBin slightly wins at small subscription counts
//! (same low-throughput reasoning as Figure 14).

use std::sync::Arc;

use firehose_bench::{sweep_rows, Dataset, Report, Scale, SWEEP_HEADER};
use firehose_core::Thresholds;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let thresholds = Thresholds::paper_defaults();
    let m = data.social.author_count();

    let mut rng = StdRng::seed_from_u64(0xF15);
    let mut all_authors: Vec<u32> = (0..m as u32).collect();
    all_authors.shuffle(&mut rng);

    let mut r = Report::new("fig15_vary_subscriptions", &SWEEP_HEADER);
    for fraction in [16usize, 8, 4, 2, 1] {
        let count = m / fraction;
        let subscribed = &all_authors[..count];
        let posts = data.workload.filter_authors(subscribed);
        // The user's similarity graph Gi: the subgraph induced by her
        // subscriptions (kept in the full id space, so bins stay addressable).
        let gi = Arc::new(graph.induced_subgraph(subscribed));
        eprintln!(
            "[fig15] {count} authors, {} posts, {} edges in Gi",
            posts.len(),
            gi.edge_count()
        );
        let stats = firehose_bench::run_all(thresholds, &gi, &posts);
        sweep_rows(&mut r, &count.to_string(), &stats);
    }
    r.finish();
}
