//! Figure 2: distribution of SimHash Hamming distances between random tweet
//! pairs.
//!
//! The paper samples 200k tweets from the streaming API and observes "a
//! perfect normal distribution with mean value 32 ... with most of the
//! distances between 24 to 40". We regenerate the histogram from synthetic
//! tweets and report mean/stddev plus the 24–40 mass.

use firehose_bench::{f1, f3, Report, Scale};
use firehose_datagen::{TextGen, TextGenConfig};
use firehose_simhash::{hamming_distance, simhash, SimHashOptions};

fn main() {
    let scale = Scale::from_env();
    let tweets: usize = match scale {
        Scale::Test => 2_000,
        Scale::Bench => 40_000,
        Scale::Paper => 200_000,
    };
    eprintln!("[fig02] {tweets} tweets at scale {scale}");

    let opts = SimHashOptions::paper();
    let mut textgen = TextGen::new(TextGenConfig::default(), 2);
    let fingerprints: Vec<u64> = (0..tweets)
        .map(|_| simhash(&textgen.base_tweet(), opts))
        .collect();

    // Random pairs via a fixed stride (deterministic, covers the corpus).
    let mut hist = [0u64; 65];
    let mut pairs = 0u64;
    for i in 0..fingerprints.len() {
        for j in (i + 1)..fingerprints.len().min(i + 40) {
            hist[hamming_distance(fingerprints[i], fingerprints[j]) as usize] += 1;
            pairs += 1;
        }
    }

    let mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(d, &c)| d as f64 * c as f64)
        .sum::<f64>()
        / pairs as f64;
    let var: f64 = hist
        .iter()
        .enumerate()
        .map(|(d, &c)| (d as f64 - mean).powi(2) * c as f64)
        .sum::<f64>()
        / pairs as f64;
    let bulk: u64 = hist[24..=40].iter().sum();

    let mut r = Report::new(
        "fig02_hamming_distribution",
        &["distance", "pairs", "fraction"],
    );
    for (d, &c) in hist.iter().enumerate() {
        if c > 0 {
            r.row(&[d.to_string(), c.to_string(), f3(c as f64 / pairs as f64)]);
        }
    }
    r.finish();

    let mut s = Report::new(
        "fig02_summary",
        &[
            "pairs",
            "mean",
            "stddev",
            "mass_24_40",
            "paper_mean",
            "paper_bulk",
        ],
    );
    s.row(&[
        pairs.to_string(),
        f1(mean),
        f1(var.sqrt()),
        f3(bulk as f64 / pairs as f64),
        "32".into(),
        "most of 24..40".into(),
    ]);
    s.finish();
}
