//! Subscription-churn throughput: the recorded churn trajectory
//! (`BENCH_churn.json`).
//!
//! Four rows, all over the same generated workload:
//!
//! * `churn_ops` — pure churn ops/sec: a seeded, validity-preserving op
//!   trace (subscribe / unsubscribe / add-user / remove-user at the paper's
//!   8:4:1:1 mix) replayed against a *warmed* [`FirehoseService`] (a post
//!   prefix is streamed in first so spawned engines have live windows to
//!   warm-start from), per-op latency distribution included;
//! * `service_offer_steady` — multi-user offers/sec through the service
//!   facade with zero churn (the denominator for churn overhead);
//! * `service_offer_churn_1pct` — the same stream with one churn op
//!   interleaved per ~100 posts (≈1% per-offer churn), which is what a live
//!   deployment looks like;
//! * `engine_offer_steady` — the single-engine UniBin hot path, measured
//!   with the exact protocol of `hotpath_throughput` so the row is
//!   comparable to `BENCH_hotpath.json`; when that file is present its
//!   UniBin baseline and the delta against it are embedded as
//!   `delta_vs_baseline_pct` — **positive = faster than baseline** — and
//!   `delta_vs_baseline_pct` > −5 is the acceptance bar: the facade and
//!   churn plumbing must not tax the steady-state hot path;
//! * `service_offer_sharded` — one row per shard count (1/2/4 by default,
//!   plus the core count when larger; `--shards N` restricts the sweep):
//!   the same stream through a `sharded:N` service's batched entry point,
//!   decisions asserted identical to the sequential steady run, with
//!   `shards` and `speedup_vs_1shard` recorded in the row;
//! * `service_offer_sharded_scale` — a 100 000-user subscription table
//!   (2 000 under `--smoke`) over a stream prefix, the multi-user fan-out
//!   stress the paper sizes its user study against.
//!
//! Flags: `--smoke` (tiny workload, CI), `--posts <n>` (single-engine
//! stream size, default 100 000), `--shards <n>` (run the sharded row at
//! exactly one shard count), `--out <path>` (default `BENCH_churn.json`),
//! `--baseline <path>` (default `BENCH_hotpath.json`).

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{flag_value, stream_rate, BenchSummary, EngineRow};
use firehose_core::prelude::*;
use firehose_datagen::{
    generate_churn_trace, generate_subscriptions, ChurnEvent, ChurnGenConfig, ChurnTraceEntry,
    SocialGenConfig, SubscriptionGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig,
};
use firehose_graph::build_similarity_graph_parallel;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Apply one generated churn event through the service facade. Traces are
/// validity-preserving when replayed in generation order, so any rejection
/// is a bench bug worth a loud panic.
fn apply(service: &mut FirehoseService, event: &ChurnEvent) {
    match event {
        ChurnEvent::Subscribe(u, a) => {
            service.subscribe(*u as u32, *a).expect("valid subscribe");
        }
        ChurnEvent::Unsubscribe(u, a) => {
            service
                .unsubscribe(*u as u32, *a)
                .expect("valid unsubscribe");
        }
        ChurnEvent::AddUser(authors) => {
            service
                .add_user(authors.iter().copied())
                .expect("valid add-user");
        }
        ChurnEvent::RemoveUser(u) => {
            service.remove_user(*u as u32).expect("valid remove-user");
        }
    }
}

/// Pull the UniBin `offers_per_sec` out of a `BENCH_hotpath.json` without a
/// JSON parser: find the row named `"UniBin"` and read the number that
/// follows its `"offers_per_sec"` key.
fn unibin_baseline(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let row = text.split("\"name\"").find(|s| {
        s.trim_start()
            .trim_start_matches(':')
            .trim_start()
            .starts_with("\"UniBin\"")
    })?;
    let after = row.split("\"offers_per_sec\"").nth(1)?;
    let num: String = after
        .trim_start()
        .trim_start_matches(':')
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_churn.json".to_string());
    let baseline_path =
        flag_value(&args, "--baseline").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let target_posts: usize = flag_value(&args, "--posts")
        .map(|v| v.parse().expect("--posts expects a count"))
        .unwrap_or(if smoke { 2_000 } else { 100_000 });
    let shards_override: Option<usize> =
        flag_value(&args, "--shards").map(|v| v.parse().expect("--shards expects a count"));
    // Multi-user passes fan every post out across subscriber components, so
    // they run on a prefix of the stream to keep the bench under a minute.
    let (users, multi_posts, churn_ops) = if smoke {
        (40usize, 1_500usize, 300usize)
    } else {
        (800, 20_000, 3_000)
    };

    let social_config = if smoke {
        SocialGenConfig::test_scale()
    } else {
        SocialGenConfig::bench_scale()
    };
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: target_posts as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        },
    );
    eprintln!(
        "[churn] workload: {} posts from {} authors; {} users, {} churn ops",
        workload.len(),
        social.author_count(),
        users,
        churn_ops
    );
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let graph = Arc::new(build_similarity_graph_parallel(&social.graph, 0.7, threads));
    let config = EngineConfig::builder(Thresholds::paper_defaults())
        .expected_rate(stream_rate(&workload.posts))
        .build();
    let sets = generate_subscriptions(
        social.author_count(),
        users,
        SubscriptionGenConfig::default(),
    );
    let subscriptions = Subscriptions::new(social.author_count(), sets.iter().cloned()).unwrap();
    let build_service = || {
        FirehoseService::builder(&graph, subscriptions.clone())
            .engine_config(config)
            .build()
            .expect("build service")
    };
    let multi_stream = &workload.posts[..multi_posts.min(workload.len())];

    let mut summary = BenchSummary::new(
        "churn_bench",
        if smoke { "smoke" } else { "bench" },
        workload.len() as u64,
    );

    // Row 1 — pure churn throughput against a warmed service. The warm-up
    // prefix matters: against an idle service every spawned engine starts
    // from empty windows, so the registry's warm-start path (seeding merged
    // engines from live neighbor windows) never fires and the row silently
    // measures the cold path only — `warm_starts` stayed 0 across thousands
    // of spawns until the prefix was added.
    let trace = generate_churn_trace(
        social.author_count(),
        &sets,
        1,
        ChurnGenConfig {
            ops: churn_ops,
            ..ChurnGenConfig::default()
        },
    );
    let mut service = build_service();
    let warm_posts = &multi_stream[..(multi_stream.len() / 4).max(1).min(multi_stream.len())];
    for post in warm_posts {
        service.process(post.clone(), |_, _| {}).unwrap();
    }
    eprintln!(
        "[churn] churn_ops: warmed service with {} posts",
        warm_posts.len()
    );
    let mut latencies: Vec<u64> = Vec::with_capacity(trace.len());
    let t0 = Instant::now();
    for entry in &trace {
        let p0 = Instant::now();
        apply(&mut service, &entry.event);
        latencies.push(p0.elapsed().as_nanos() as u64);
    }
    let churn_per_sec = trace.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    let stats = service.churn_stats();
    eprintln!(
        "[churn] churn_ops: {churn_per_sec:.0} ops/s, p50 {} ns, p99 {} ns ({} spawned, {} retired, {} warm)",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
        stats.engines_spawned,
        stats.engines_retired,
        stats.warm_starts
    );
    summary.push_engine(
        EngineRow::new(
            "churn_ops",
            churn_per_sec,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        )
        .with_u64("ops", stats.ops_total())
        .with_u64("subscribes", stats.subscribes)
        .with_u64("unsubscribes", stats.unsubscribes)
        .with_u64("users_added", stats.users_added)
        .with_u64("users_removed", stats.users_removed)
        .with_u64("engines_initial", stats.initial_engines)
        .with_u64("engines_spawned", stats.engines_spawned)
        .with_u64("engines_retired", stats.engines_retired)
        .with_u64("warm_starts", stats.warm_starts)
        .with_u64("warmup_posts", warm_posts.len() as u64),
    );

    // Row 2 — service offers/sec, no churn (the overhead denominator). The
    // delivery vectors double as the equivalence reference for the sharded
    // rows below.
    let mut service = build_service();
    let mut latencies: Vec<u64> = Vec::with_capacity(multi_stream.len());
    let mut reference_decisions: Vec<Vec<u32>> = Vec::with_capacity(multi_stream.len());
    let t0 = Instant::now();
    for post in multi_stream {
        let p0 = Instant::now();
        service
            .process(post.clone(), |_, d| {
                reference_decisions.push(d.delivered_to.clone());
            })
            .unwrap();
        latencies.push(p0.elapsed().as_nanos() as u64);
    }
    let steady_per_sec = multi_stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    eprintln!(
        "[churn] service_offer_steady: {steady_per_sec:.0} offers/s, p50 {} ns, p99 {} ns",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99)
    );
    summary.push_engine(
        EngineRow::new(
            "service_offer_steady",
            steady_per_sec,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        )
        .with_u64("posts", multi_stream.len() as u64)
        .with_u64("posts_emitted", service.metrics().posts_emitted),
    );

    // Row 3 — the same stream with ~1% per-offer churn interleaved.
    let interleaved: Vec<ChurnTraceEntry> = generate_churn_trace(
        social.author_count(),
        &sets,
        multi_stream.len() as u64,
        ChurnGenConfig {
            ops: multi_stream.len() / 100,
            ..ChurnGenConfig::default()
        },
    );
    let mut service = build_service();
    let mut latencies: Vec<u64> = Vec::with_capacity(multi_stream.len());
    let mut next = 0;
    let t0 = Instant::now();
    for (i, post) in multi_stream.iter().enumerate() {
        while next < interleaved.len() && interleaved[next].after_posts <= i as u64 {
            apply(&mut service, &interleaved[next].event);
            next += 1;
        }
        let p0 = Instant::now();
        service.process(post.clone(), |_, _| {}).unwrap();
        latencies.push(p0.elapsed().as_nanos() as u64);
    }
    for entry in &interleaved[next..] {
        apply(&mut service, &entry.event);
    }
    let churned_per_sec = multi_stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    eprintln!(
        "[churn] service_offer_churn_1pct: {churned_per_sec:.0} offers/s ({:.1}% of steady), p50 {} ns, p99 {} ns",
        100.0 * churned_per_sec / steady_per_sec,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99)
    );
    summary.push_engine(
        EngineRow::new(
            "service_offer_churn_1pct",
            churned_per_sec,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        )
        .with_u64("posts", multi_stream.len() as u64)
        .with_u64("churn_ops", service.churn_stats().ops_total())
        .with_f64("steady_ratio", churned_per_sec / steady_per_sec),
    );

    // Sharded rows — the same steady stream through `sharded:N` services,
    // one row per shard count, fed through the batched entry point so the
    // ingest thread's fingerprinting pipelines with the shard workers'
    // coverage scans. Every run is asserted decision-identical to the
    // sequential reference before its throughput is recorded.
    let shard_counts: Vec<usize> = match shards_override {
        Some(n) => vec![n],
        None => {
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            let mut counts = vec![1usize, 2, 4];
            if cores > 4 {
                counts.push(cores);
            }
            counts
        }
    };
    const BATCH: usize = 1_024;
    let mut one_shard_rate: Option<f64> = None;
    for &shards in &shard_counts {
        let mut service = FirehoseService::builder(&graph, subscriptions.clone())
            .engine_config(config)
            .shards(shards)
            .build()
            .expect("build sharded service");
        let mut decisions: Vec<Vec<u32>> = Vec::with_capacity(multi_stream.len());
        // Per-batch wall time, amortized per post, stands in for per-post
        // latency: the pipelined path has no per-post completion point.
        let mut latencies: Vec<u64> = Vec::new();
        let t0 = Instant::now();
        for chunk in multi_stream.chunks(BATCH) {
            let c0 = Instant::now();
            service
                .process_batch(chunk.iter().cloned(), |_, d| {
                    decisions.push(d.delivered_to.clone());
                })
                .unwrap();
            latencies.push(c0.elapsed().as_nanos() as u64 / chunk.len() as u64);
        }
        let sharded_per_sec = multi_stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(
            decisions, reference_decisions,
            "sharded:{shards} diverged from the sequential service"
        );
        latencies.sort_unstable();
        let speedup = sharded_per_sec / one_shard_rate.unwrap_or(sharded_per_sec);
        if shards == 1 {
            one_shard_rate = Some(sharded_per_sec);
        }
        eprintln!(
            "[churn] service_offer_sharded[{shards}]: {sharded_per_sec:.0} offers/s \
             ({speedup:.2}x vs 1 shard, {:.1}% of sequential steady)",
            100.0 * sharded_per_sec / steady_per_sec
        );
        summary.push_engine(
            EngineRow::new(
                "service_offer_sharded",
                sharded_per_sec,
                percentile(&latencies, 0.50),
                percentile(&latencies, 0.99),
            )
            .with_u64("shards", shards as u64)
            .with_u64("posts", multi_stream.len() as u64)
            .with_f64("speedup_vs_1shard", speedup)
            .with_f64("steady_ratio", sharded_per_sec / steady_per_sec),
        );
    }

    // Scale row — a 100k-user subscription table (the paper's user-study
    // scale) over a stream prefix, through a sharded service.
    let scale_users = if smoke { 2_000 } else { 100_000 };
    let scale_posts = multi_stream.len().min(if smoke { 300 } else { 2_000 });
    let scale_shards = shards_override
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8)));
    let scale_sets = generate_subscriptions(
        social.author_count(),
        scale_users,
        SubscriptionGenConfig::default(),
    );
    let scale_subs = Subscriptions::new(social.author_count(), scale_sets.iter().cloned()).unwrap();
    let mut service = FirehoseService::builder(&graph, scale_subs)
        .engine_config(config)
        .shards(scale_shards)
        .build()
        .expect("build scale service");
    let scale_stream = &multi_stream[..scale_posts];
    let mut deliveries: u64 = 0;
    // Same per-batch amortized latency protocol as the sharded rows above;
    // this row used to publish a hardcoded zero for both percentiles.
    let mut latencies: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    for chunk in scale_stream.chunks(BATCH) {
        let c0 = Instant::now();
        service
            .process_batch(chunk.iter().cloned(), |_, d| {
                deliveries += d.delivered_to.len() as u64;
            })
            .unwrap();
        latencies.push(c0.elapsed().as_nanos() as u64 / chunk.len() as u64);
    }
    let scale_per_sec = scale_stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_unstable();
    eprintln!(
        "[churn] service_offer_sharded_scale: {scale_per_sec:.0} offers/s \
         ({scale_users} users, {scale_shards} shards, {deliveries} deliveries, \
         p50 {} ns, p99 {} ns)",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99)
    );
    summary.push_engine(
        EngineRow::new(
            "service_offer_sharded_scale",
            scale_per_sec,
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        )
        .with_u64("users", scale_users as u64)
        .with_u64("shards", scale_shards as u64)
        .with_u64("posts", scale_stream.len() as u64)
        .with_u64("deliveries", deliveries),
    );

    // Row 4 — single-engine UniBin steady state, hotpath_throughput's exact
    // protocol, with the recorded baseline alongside when available.
    let mut engine = build_engine(AlgorithmKind::UniBin, config, Arc::clone(&graph));
    let t0 = Instant::now();
    for post in &workload.posts {
        engine.offer(post);
    }
    let engine_per_sec = workload.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    let mut engine = build_engine(AlgorithmKind::UniBin, config, Arc::clone(&graph));
    let mut latencies: Vec<u64> = Vec::with_capacity(workload.len());
    for post in &workload.posts {
        let p0 = Instant::now();
        engine.offer(post);
        latencies.push(p0.elapsed().as_nanos() as u64);
    }
    latencies.sort_unstable();
    let mut row = EngineRow::new(
        "engine_offer_steady",
        engine_per_sec,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.99),
    )
    .with_u64("comparisons", engine.metrics().comparisons)
    .with_u64("posts_emitted", engine.metrics().posts_emitted);
    // A smoke run uses a different workload scale than the recorded
    // baseline, so the comparison would be meaningless noise there.
    match unibin_baseline(&baseline_path).filter(|_| !smoke) {
        Some(baseline) => {
            // Signed so the sign reads naturally: positive = this run is
            // faster than the recorded baseline, negative = a regression.
            let delta_vs_baseline_pct = 100.0 * (engine_per_sec - baseline) / baseline;
            eprintln!(
                "[churn] engine_offer_steady: {engine_per_sec:.0} offers/s vs baseline {baseline:.0} ({delta_vs_baseline_pct:+.2}% vs baseline, positive = faster)"
            );
            row = row
                .with_f64("baseline_offers_per_sec", baseline)
                .with_f64("delta_vs_baseline_pct", delta_vs_baseline_pct);
        }
        None => {
            eprintln!("[churn] engine_offer_steady: {engine_per_sec:.0} offers/s (no comparable baseline)");
        }
    }
    summary.push_engine(row);

    let path = std::path::Path::new(&out);
    summary.write(path).expect("write summary");
    // Self-check so --smoke in CI fails loudly on malformed output.
    let written = std::fs::read_to_string(path).expect("read summary back");
    assert!(
        written.starts_with('{') && written.trim_end().ends_with('}'),
        "summary is not a JSON object"
    );
    println!("{written}");
}
