//! Calibration check: does the synthetic data land on the paper's measured
//! characteristics?
//!
//! Prints, next to the paper's values:
//! * the author-similarity CCDF at 0.2 / 0.3 (Figure 9: 2.3% / 0.6%);
//! * similarity-graph topology `d`, `c`, `s` at λa = 0.6 / 0.7 / 0.8
//!   (Section 6.2.1: d 113.7→437.3, c 29→106, s 20→38 between 0.7 and 0.8);
//! * the full-model pruning ratio at default thresholds (Figure 10: ≈10%).
//!
//! Run with `FIREHOSE_SCALE=paper` for the full-size comparison.

use firehose_bench::{f1, f3, Dataset, Report, Scale};
use firehose_core::engine::AlgorithmKind;
use firehose_core::Thresholds;
use firehose_graph::{greedy_clique_cover, similarity_ccdf, GraphTopology};

fn main() {
    let scale = Scale::from_env();
    eprintln!("[calibrate] scale = {scale}");
    let data = Dataset::generate(scale);

    // Figure 9 anchor points.
    let ccdf = similarity_ccdf(&data.social.graph, &[0.2, 0.3]);
    let mut r = Report::new(
        "calibrate_ccdf",
        &["threshold", "measured_pct", "paper_pct"],
    );
    r.row(&[f3(0.2), f3(ccdf[0].1 * 100.0), "2.3".into()]);
    r.row(&[f3(0.3), f3(ccdf[1].1 * 100.0), "0.6".into()]);
    r.finish();

    // Topology at the three λa of Figure 13.
    let mut r = Report::new(
        "calibrate_topology",
        &[
            "lambda_a", "edges", "d", "c", "s", "paper_d", "paper_c", "paper_s",
        ],
    );
    for (lambda_a, pd, pc, ps) in [
        (0.6, "-", "-", "-"),
        (0.7, "113.7", "29", "20"),
        (0.8, "437.3", "106", "38"),
    ] {
        let g = data.similarity_graph(lambda_a);
        let cover = greedy_clique_cover(&g);
        let t = GraphTopology::measure(&g, &cover);
        r.row(&[
            f1(lambda_a),
            t.edges.to_string(),
            f1(t.d),
            f1(t.c),
            f1(t.s),
            pd.into(),
            pc.into(),
            ps.into(),
        ]);
    }
    r.finish();

    // Figure 10 anchor: ≈10% pruned at the default thresholds.
    let graph = data.similarity_graph(0.7);
    let stats = firehose_bench::run_spsd(
        AlgorithmKind::UniBin,
        Thresholds::paper_defaults(),
        graph,
        &data.workload.posts,
    );
    let pruned = 1.0 - stats.metrics.posts_emitted as f64 / stats.metrics.posts_processed as f64;
    let mut r = Report::new(
        "calibrate_pruning",
        &["posts", "emitted", "pruned_pct", "paper_pct"],
    );
    r.row(&[
        stats.metrics.posts_processed.to_string(),
        stats.metrics.posts_emitted.to_string(),
        f1(pruned * 100.0),
        "≈10".into(),
    ]);
    r.finish();
}
