//! Figure 9: complementary CDF of pairwise author similarity.
//!
//! The paper reports 2.3% of pairs with similarity ≥ 0.2 and 0.6% with
//! ≥ 0.3 over 20,150 authors. Because absolute pair *fractions* scale
//! inversely with the author count (the similar-neighborhood size `d` is
//! scale-invariant in our generator), the report also shows the measured
//! fractions extrapolated to the paper's 20,150 authors.

use firehose_bench::{f3, Dataset, Report, Scale};
use firehose_graph::similarity_ccdf;

fn main() {
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let m = data.social.author_count() as f64;
    let to_paper = (m - 1.0) / (20_150.0 - 1.0);

    let thresholds: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let ccdf = similarity_ccdf(&data.social.graph, &thresholds);

    let mut r = Report::new(
        "fig09_author_similarity",
        &[
            "similarity",
            "fraction_pct",
            "paper_scale_pct",
            "paper_reference",
        ],
    );
    for (t, frac) in ccdf {
        let reference = match t {
            x if (x - 0.2).abs() < 1e-9 => "2.3",
            x if (x - 0.3).abs() < 1e-9 => "0.6",
            _ => "-",
        };
        r.row(&[
            f3(t),
            f3(frac * 100.0),
            f3(frac * to_paper * 100.0),
            reference.into(),
        ]);
    }
    r.finish();
}
