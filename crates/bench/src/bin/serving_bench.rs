//! Serving-layer load generator: the recorded wire trajectory
//! (`BENCH_serving.json`).
//!
//! Boots a [`firehose_net::Server`] on an ephemeral loopback port (in a
//! thread — the server, the service and the bench share one process, so no
//! orchestration is needed) and drives a generated workload over **real
//! sockets**:
//!
//! * `serving_ingest_sustained` — batched `POST /ingest` offers/sec over the
//!   wire, p50/p99 per-post amortized request round-trip;
//! * `serving_e2e_delivery` — end-to-end delivery latency: nanoseconds from
//!   just before the ingest request is written to the moment a long-poll
//!   `/stream/<user>` reader receives the delivery line (same-process
//!   clock), measured by concurrent chunked-stream readers;
//! * `serving_connection_churn` — connect + `GET /healthz` + close cycles
//!   per second, with round-trip percentiles, plus an over-capacity probe
//!   counting connection-level 503 rejections;
//!
//! plus top-level counters: `divergent_decisions` (wire decision lines
//! versus an identically-configured in-process [`FirehoseService`] replay
//! of the same trace — **must be 0**), shed/rejected/rate-limited admission
//! counts scraped from `/healthz`, and the server's own
//! [`ServeReport`](firehose_net::ServeReport).
//!
//! Churn ops from a generated trace are replayed over `POST /churn` at the
//! same stream positions on both sides, so subscription state evolves
//! identically.
//!
//! Flags: `--smoke` (tiny workload, CI), `--posts <n>`, `--shards <n>`
//! (default 2 — the server must hold byte-identity even against the
//! pipelined sharded strategy), `--out <path>` (default
//! `BENCH_serving.json`).

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use firehose_bench::{flag_value, stream_rate, BenchSummary, EngineRow};
use firehose_core::prelude::*;
use firehose_core::service::ChurnOp;
use firehose_datagen::{
    generate_churn_trace, generate_subscriptions, ChurnGenConfig, ChurnTraceEntry, SocialGenConfig,
    SubscriptionGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig,
};
use firehose_graph::build_similarity_graph_parallel;
use firehose_net::server::decision_line;
use firehose_net::{HttpClient, Server, ServerConfig};
use firehose_obs::Registry;
use firehose_stream::corpus;

const BATCH: usize = 256;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Apply every trace entry due at `offset` posts to the in-process
/// reference service (mirrors what the wire side sends to `POST /churn`).
fn apply_due_reference(
    service: &mut FirehoseService,
    trace: &[ChurnTraceEntry],
    next_op: &mut usize,
    offset: u64,
) {
    while *next_op < trace.len() && trace[*next_op].after_posts <= offset {
        let op: ChurnOp = trace[*next_op]
            .event
            .to_string()
            .parse()
            .expect("trace event text is a valid churn op");
        service.apply(&op).expect("valid trace op");
        *next_op += 1;
    }
}

/// Render every trace entry due at `offset` as `/churn` body lines.
fn due_churn_body(trace: &[ChurnTraceEntry], next_op: &mut usize, offset: u64) -> String {
    let mut body = String::new();
    while *next_op < trace.len() && trace[*next_op].after_posts <= offset {
        body.push_str(&trace[*next_op].event.to_string());
        body.push('\n');
        *next_op += 1;
    }
    body
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serving.json".to_string());
    let shards: usize = flag_value(&args, "--shards")
        .map(|v| v.parse().expect("--shards expects a count"))
        .unwrap_or(2);
    let target_posts: usize = flag_value(&args, "--posts")
        .map(|v| v.parse().expect("--posts expects a count"))
        .unwrap_or(if smoke { 1_500 } else { 12_000 });
    let (users, churn_ops, churn_conns, readers) = if smoke {
        (40usize, 60usize, 100usize, 3usize)
    } else {
        (300, 400, 500, 4)
    };

    // ---- Workload ----------------------------------------------------
    let social_config = if smoke {
        SocialGenConfig::test_scale()
    } else {
        SocialGenConfig::bench_scale()
    };
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: target_posts as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        },
    );
    let posts = &workload.posts[..target_posts.min(workload.len())];
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let graph = Arc::new(build_similarity_graph_parallel(&social.graph, 0.7, threads));
    let config = EngineConfig::builder(Thresholds::paper_defaults())
        .expected_rate(stream_rate(&workload.posts))
        .build();
    let sets = generate_subscriptions(
        social.author_count(),
        users,
        SubscriptionGenConfig::default(),
    );
    let subscriptions = Subscriptions::new(social.author_count(), sets.iter().cloned()).unwrap();
    let trace = generate_churn_trace(
        social.author_count(),
        &sets,
        posts.len() as u64,
        ChurnGenConfig {
            ops: churn_ops,
            ..ChurnGenConfig::default()
        },
    );
    eprintln!(
        "[serving] workload: {} posts from {} authors; {} users, {} churn ops, sharded:{shards}",
        posts.len(),
        social.author_count(),
        users,
        trace.len()
    );

    // ---- In-process reference: same service config, same batch/churn
    // schedule, decisions rendered with the same wire formatter. ---------
    let mut reference = FirehoseService::builder(&graph, subscriptions.clone())
        .engine_config(config)
        .shards(shards)
        .build()
        .expect("build reference service");
    let mut expected = String::new();
    let mut expected_observed: u64 = 0; // deliveries to the streamed users
    let mut next_ref_op = 0usize;
    for (i, chunk) in posts.chunks(BATCH).enumerate() {
        apply_due_reference(&mut reference, &trace, &mut next_ref_op, (i * BATCH) as u64);
        reference
            .process_batch(chunk.iter().cloned(), |post, d| {
                expected.push_str(&decision_line(post.id, &d.delivered_to));
                expected_observed += d
                    .delivered_to
                    .iter()
                    .filter(|&&u| (u as usize) < readers)
                    .count() as u64;
            })
            .expect("reference batch");
    }

    // ---- Boot the server ---------------------------------------------
    let service = FirehoseService::builder(&graph, subscriptions.clone())
        .engine_config(config)
        .shards(shards)
        .build()
        .expect("build served service");
    let max_connections = 32 + readers + 4;
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_connections,
            stream_buffer: posts.len().max(1024),
            allow_shutdown: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let registry = Arc::new(Registry::new());
    let server_thread = std::thread::spawn(move || server.serve(service, registry));
    eprintln!("[serving] server on {addr}");

    // ---- Streaming readers (end-to-end latency observers) -------------
    let send_times: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let e2e: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let reader_threads: Vec<_> = (0..readers as u32)
        .map(|user| {
            let send_times = Arc::clone(&send_times);
            let e2e = Arc::clone(&e2e);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = match HttpClient::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("[serving] reader {user}: connect failed: {e}");
                        return 0u64;
                    }
                };
                let mut next_seq: u64 = 0;
                let mut received: u64 = 0;
                while !stop.load(Ordering::Acquire) {
                    let target = format!("/stream/{user}?from={next_seq}&max=500&wait_ms=100");
                    let result = client.stream_chunks(&target, &mut |chunk| {
                        let now = Instant::now();
                        // One chunk is one `seq\tid\t...` delivery line.
                        let text = String::from_utf8_lossy(chunk);
                        let mut fields = text.splitn(3, '\t');
                        let seq = fields.next().and_then(|s| s.parse::<u64>().ok());
                        let id = fields.next().and_then(|s| s.parse::<u64>().ok());
                        if let Some(seq) = seq {
                            next_seq = seq + 1;
                        }
                        if let Some(id) = id {
                            if let Some(t0) = send_times.lock().unwrap().get(&id) {
                                e2e.lock()
                                    .unwrap()
                                    .push(now.duration_since(*t0).as_nanos() as u64);
                            }
                            received += 1;
                        }
                    });
                    match result {
                        Ok(resp) if resp.status == 200 => {}
                        // 404 after remove-user churn, or shutdown races.
                        Ok(_) | Err(_) => break,
                    }
                }
                received
            })
        })
        .collect();

    // ---- Ingest phase: batched posts + interleaved churn over the wire.
    let mut ingest = HttpClient::connect(addr).expect("connect ingest client");
    let mut wire = String::new();
    let mut next_wire_op = 0usize;
    let mut batch_lat: Vec<u64> = Vec::new();
    let mut ingest_errors: u64 = 0;
    let t0 = Instant::now();
    for (i, chunk) in posts.chunks(BATCH).enumerate() {
        let churn_body = due_churn_body(&trace, &mut next_wire_op, (i * BATCH) as u64);
        if !churn_body.is_empty() {
            let resp = ingest
                .request("POST", "/churn", churn_body.as_bytes())
                .expect("churn request");
            assert_eq!(resp.status, 200, "churn failed: {}", resp.text());
        }
        let mut body = Vec::new();
        corpus::write_posts(chunk, &mut body).expect("render batch");
        {
            let mut times = send_times.lock().unwrap();
            let now = Instant::now();
            for post in chunk {
                times.insert(post.id, now);
            }
        }
        let c0 = Instant::now();
        match ingest.request("POST", "/ingest", &body) {
            Ok(resp) if resp.status == 200 => wire.push_str(&resp.text()),
            Ok(resp) => {
                ingest_errors += 1;
                eprintln!("[serving] ingest batch {i}: HTTP {}", resp.status);
                wire.push_str(&resp.text());
            }
            Err(e) => {
                ingest_errors += 1;
                eprintln!("[serving] ingest batch {i}: {e}");
            }
        }
        batch_lat.push(c0.elapsed().as_nanos() as u64 / chunk.len().max(1) as u64);
    }
    let wire_per_sec = posts.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // ---- Wait for the readers to drain their streams -------------------
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let got = e2e.lock().unwrap().len() as u64;
        if got >= expected_observed || Instant::now() >= drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    stop.store(true, Ordering::Release);
    let mut streamed_by_readers: u64 = 0;
    for t in reader_threads {
        streamed_by_readers += t.join().expect("reader thread");
    }

    // ---- Decision-identity check ---------------------------------------
    let divergent = {
        let wire_lines: Vec<&str> = wire.lines().collect();
        let expected_lines: Vec<&str> = expected.lines().collect();
        let mut divergent = (wire_lines.len() as i64 - expected_lines.len() as i64).unsigned_abs();
        divergent += wire_lines
            .iter()
            .zip(&expected_lines)
            .filter(|(w, e)| w != e)
            .count() as u64;
        divergent
    };
    eprintln!(
        "[serving] serving_ingest_sustained: {wire_per_sec:.0} offers/s over the wire \
         ({} decision lines, {divergent} divergent, {ingest_errors} errored batches)",
        wire.lines().count()
    );

    // ---- Connection churn + over-capacity probe ------------------------
    let mut conn_lat: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    for _ in 0..churn_conns {
        let c0 = Instant::now();
        let mut c = HttpClient::connect(addr).expect("churn connect");
        let resp = c.request("GET", "/healthz", b"").expect("healthz");
        assert!(
            resp.status == 200 || resp.status == 503,
            "unexpected /healthz status {}",
            resp.status
        );
        conn_lat.push(c0.elapsed().as_nanos() as u64);
    }
    let conns_per_sec = churn_conns as f64 / t0.elapsed().as_secs_f64().max(1e-9);

    // Hold sockets up to the connection cap, then count 503s on the excess.
    let idle: Vec<TcpStream> = (0..max_connections)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect();
    std::thread::sleep(Duration::from_millis(150)); // let the acceptor see them
    let mut rejected_conns: u64 = 0;
    for _ in 0..8 {
        if let Ok(mut c) = HttpClient::connect(addr) {
            match c.request("GET", "/healthz", b"") {
                Ok(resp) if resp.status == 503 => rejected_conns += 1,
                Ok(_) => {}
                Err(_) => rejected_conns += 1, // dropped before/while answering
            }
        }
    }
    drop(idle);
    eprintln!(
        "[serving] serving_connection_churn: {conns_per_sec:.0} conns/s, \
         {rejected_conns}/8 over-capacity probes rejected"
    );

    // ---- Scrape /healthz + /metrics for admission counters -------------
    // The dropped idle sockets are reaped lazily, so the first scrape
    // attempts can still bounce off the connection cap; retry on a fresh
    // connection until the health document (not a capacity 503) comes back.
    let (mut scrape, health) = (0..50)
        .find_map(|_| {
            let mut c = HttpClient::connect(addr).ok()?;
            match c.request("GET", "/healthz", b"") {
                Ok(resp) if resp.text().starts_with('{') => Some((c, resp.text())),
                _ => {
                    std::thread::sleep(Duration::from_millis(50));
                    None
                }
            }
        })
        .expect("scrape the health document");
    let metrics_text = scrape
        .request("GET", "/metrics", b"")
        .expect("metrics scrape")
        .text();
    assert!(
        metrics_text.contains("firehose_net_connections_total"),
        "metrics exposition is missing serving instruments"
    );
    let health_count = |key: &str| -> u64 {
        health
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|s| {
                s.chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .unwrap_or(0)
    };

    // ---- Shut down and collect the server-side report ------------------
    shutdown.shutdown();
    let report = server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    // ---- Summary --------------------------------------------------------
    batch_lat.sort_unstable();
    conn_lat.sort_unstable();
    let mut e2e = Arc::try_unwrap(e2e)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default();
    e2e.sort_unstable();
    let e2e_per_sec = if e2e.is_empty() {
        0.0
    } else {
        streamed_by_readers as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    eprintln!(
        "[serving] serving_e2e_delivery: {} samples, p50 {} ns, p99 {} ns",
        e2e.len(),
        percentile(&e2e, 0.50),
        percentile(&e2e, 0.99)
    );

    let mut summary = BenchSummary::new(
        "serving_bench",
        if smoke { "smoke" } else { "bench" },
        posts.len() as u64,
    );
    summary.push_engine(
        EngineRow::new(
            "serving_ingest_sustained",
            wire_per_sec,
            percentile(&batch_lat, 0.50),
            percentile(&batch_lat, 0.99),
        )
        .with_u64("batch", BATCH as u64)
        .with_u64("users", users as u64)
        .with_u64("shards", shards as u64)
        .with_u64("churn_ops", trace.len() as u64)
        .with_u64("errored_batches", ingest_errors),
    );
    summary.push_engine(
        EngineRow::new(
            "serving_e2e_delivery",
            e2e_per_sec,
            percentile(&e2e, 0.50),
            percentile(&e2e, 0.99),
        )
        .with_u64("samples", e2e.len() as u64)
        .with_u64("readers", readers as u64)
        .with_u64("deliveries_streamed", streamed_by_readers)
        .with_u64("expected_observed", expected_observed),
    );
    summary.push_engine(
        EngineRow::new(
            "serving_connection_churn",
            conns_per_sec,
            percentile(&conn_lat, 0.50),
            percentile(&conn_lat, 0.99),
        )
        .with_u64("connections", churn_conns as u64)
        .with_u64("over_capacity_rejected", rejected_conns),
    );
    summary.push_raw("divergent_decisions", divergent.to_string());
    summary.push_raw("shed", health_count("shed").to_string());
    summary.push_raw("rejected", health_count("rejected").to_string());
    summary.push_raw("rate_limited", health_count("rate_limited").to_string());
    summary.push_raw(
        "server",
        format!(
            "{{\"requests\": {}, \"connections\": {}, \"connections_rejected\": {}, \
             \"posts_ingested\": {}, \"deliveries_streamed\": {}, \"deliveries_dropped\": {}, \
             \"protocol_errors\": {}}}",
            report.requests,
            report.connections_accepted,
            report.connections_rejected,
            report.posts_ingested,
            report.deliveries_streamed,
            report.deliveries_dropped,
            report.protocol_errors
        ),
    );

    let path = std::path::Path::new(&out);
    summary.write(path).expect("write summary");
    let written = std::fs::read_to_string(path).expect("read summary back");
    assert!(
        written.starts_with('{') && written.trim_end().ends_with('}'),
        "summary is not a JSON object"
    );
    println!("{written}");

    assert_eq!(
        divergent, 0,
        "wire decisions diverged from the in-process facade"
    );
}
