//! Ablation A1: why the paper rejects the Manku permuted-table SimHash index
//! at `λc = 18`.
//!
//! Section 3 argues the index of \[11\] is unusable because its table count is
//! exponential in the distance threshold. We build the index (minimal
//! `k + 1`-block layout) for `k = 3 .. 18`, insert the day's fingerprints,
//! and measure candidate verifications per query vs a plain linear scan —
//! plus the [`IndexPlan`] feasibility numbers for sharper layouts.

use firehose_bench::{f3, Dataset, Report, Scale};
use firehose_simhash::{hamming_distance, simhash, HammingIndex, IndexPlan, SimHashOptions};

fn main() {
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let take = match scale {
        Scale::Test => 2_000,
        Scale::Bench => 20_000,
        Scale::Paper => 100_000,
    };
    let fingerprints: Vec<u64> = data
        .workload
        .posts
        .iter()
        .take(take)
        .map(|p| simhash(&p.text, SimHashOptions::paper()))
        .collect();
    let queries = &fingerprints[..fingerprints.len().min(500)];

    let mut r = Report::new(
        "ablation_manku_index",
        &[
            "k",
            "tables",
            "probed_per_query",
            "linear_scan",
            "speedup",
            "recall_ok",
        ],
    );
    for k in [3u32, 6, 9, 12, 15, 18] {
        let mut index = HammingIndex::new(k).expect("k+1 layout always fits");
        for &fp in &fingerprints {
            index.insert(fp);
        }
        let mut probed_total = 0usize;
        let mut recall_ok = true;
        let mut matches = Vec::new();
        for &q in queries {
            probed_total += index.query_into(q, &mut matches);
            // Verify against the linear scan.
            let expected = fingerprints
                .iter()
                .filter(|&&fp| hamming_distance(fp, q) <= k)
                .count();
            recall_ok &= matches.len() == expected;
        }
        let probed_per_query = probed_total as f64 / queries.len() as f64;
        let linear = fingerprints.len() as f64;
        r.row(&[
            k.to_string(),
            index.table_count().to_string(),
            format!("{probed_per_query:.0}"),
            format!("{linear:.0}"),
            f3(linear / probed_per_query.max(1.0)),
            recall_ok.to_string(),
        ]);
        eprintln!("[manku] k={k}: probed {probed_per_query:.0} of {linear:.0} per query");
    }
    r.finish();

    // Sharper layouts: what would it take to keep queries selective at k=18?
    let mut plans = Report::new(
        "ablation_manku_plans",
        &[
            "k",
            "blocks",
            "tables",
            "min_key_bits",
            "expected_probe_fraction",
        ],
    );
    for (k, blocks) in [
        (3u32, 4u32),
        (3, 6),
        (3, 8),
        (18, 19),
        (18, 22),
        (18, 26),
        (18, 32),
    ] {
        match IndexPlan::evaluate(k, blocks) {
            Ok(p) => plans.row(&[
                k.to_string(),
                blocks.to_string(),
                p.tables.to_string(),
                p.min_key_bits.to_string(),
                format!("{:.4}", p.expected_probe_fraction),
            ]),
            Err(e) => plans.row(&[
                k.to_string(),
                blocks.to_string(),
                format!("({e})"),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    plans.finish();
    println!("conclusion: at k=18 every feasible layout probes a large corpus fraction per query — the paper's linear scan (pruned by time & author) is the right call");
}
