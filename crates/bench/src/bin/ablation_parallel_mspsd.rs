//! Ablation A4 (extension beyond the paper): thread-parallel sharded `S_*`.
//!
//! Distinct connected components are independent, so the shared-component
//! engine parallelizes embarrassingly. We measure wall-clock scaling of the
//! pipelined [`ParallelShared`] runner from 1 to 8 shards against the
//! sequential `S_UniBin`, verifying output equality as we go.

use firehose_bench::{f1, Dataset, Report, Scale};
use firehose_core::engine::AlgorithmKind;
use firehose_core::multi::{MultiDiversifier, ParallelShared, SharedMulti, Subscriptions};
use firehose_core::{EngineConfig, Thresholds};
use std::time::Instant;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let config = EngineConfig::new(Thresholds::paper_defaults());

    let m = data.social.author_count();
    let ratio = m as f64 / 20_150.0;
    let sub_config = firehose_datagen::SubscriptionGenConfig {
        mean: (130.0 * ratio).max(6.0),
        median: (20.0 * ratio).max(3.0),
        ..Default::default()
    };
    let sets = firehose_datagen::generate_subscriptions(m, m, sub_config);
    let subs = Subscriptions::new(m, sets).expect("valid subscriptions");

    // Sequential baseline.
    eprintln!("[a4] sequential S_UniBin ...");
    let mut sequential = SharedMulti::new(AlgorithmKind::UniBin, config, &graph, subs.clone());
    let t0 = Instant::now();
    let expected: Vec<_> = data
        .workload
        .posts
        .iter()
        .map(|p| sequential.offer(p))
        .collect();
    let seq_ms = t0.elapsed().as_secs_f64() * 1_000.0;

    let mut r = Report::new(
        "ablation_parallel_mspsd",
        &[
            "shards",
            "time_ms",
            "speedup_vs_sequential",
            "output_identical",
        ],
    );
    r.row(&["sequential".into(), f1(seq_ms), "1.0".into(), "-".into()]);

    let mut largest = 0usize;
    for shards in [1usize, 2, 4, 8] {
        eprintln!("[a4] parallel with {shards} shard(s) ...");
        let mut parallel =
            ParallelShared::new(AlgorithmKind::UniBin, config, &graph, subs.clone(), shards)
                .expect("thread count is positive");
        largest = parallel.largest_component_size();
        let t0 = Instant::now();
        let got = parallel.process_stream(&data.workload.posts);
        let par_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let identical = got == expected;
        r.row(&[
            shards.to_string(),
            f1(par_ms),
            f1(seq_ms / par_ms.max(1e-9)),
            identical.to_string(),
        ]);
        assert!(identical, "parallel output diverged at {shards} shards");
    }
    r.finish();
    println!(
        "parallelism ceiling: the largest single component holds {largest} authors and cannot be split across shards (its posts cover each other), so Amdahl's law bounds the speedup by that component's share of the work"
    );
}
