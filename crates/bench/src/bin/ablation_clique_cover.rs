//! Ablation A3: greedy clique edge cover vs the naive per-edge cover.
//!
//! CliqueBin's RAM is proportional to the cover's total clique size
//! (copies per post = cliques containing the author). The paper's greedy
//! heuristic approximates the NP-hard minimum; the naive cover (every edge
//! its own 2-clique) is the do-nothing baseline. We compare cover quality
//! and the resulting CliqueBin cost at several λa.

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{f1, Dataset, Report, Scale};
use firehose_core::engine::{CliqueBin, Diversifier};
use firehose_core::{EngineConfig, Thresholds};
use firehose_graph::{greedy_clique_cover, naive_edge_cover, CliqueCover, UndirectedGraph};

fn run_cliquebin(
    graph: &Arc<UndirectedGraph>,
    cover: CliqueCover,
    posts: &[firehose_stream::Post],
) -> (f64, u64, u64) {
    let config = EngineConfig::new(Thresholds::paper_defaults());
    let mut engine = CliqueBin::with_cover(config, Arc::clone(graph), Arc::new(cover));
    let t0 = Instant::now();
    for p in posts {
        engine.offer(p);
    }
    (
        t0.elapsed().as_secs_f64() * 1_000.0,
        engine.metrics().peak_copies,
        engine.metrics().comparisons,
    )
}

fn main() {
    let data = Dataset::generate(Scale::from_env());

    let mut r = Report::new(
        "ablation_clique_cover",
        &[
            "lambda_a",
            "cover",
            "cliques",
            "total_size",
            "c_per_author",
            "build_ms",
            "engine_ms",
            "peak_records",
            "comparisons",
        ],
    );
    for lambda_a in [0.6f64, 0.7] {
        let graph = data.similarity_graph(lambda_a);
        type CoverBuilder = fn(&UndirectedGraph) -> CliqueCover;
        let builders: [(&str, CoverBuilder); 2] =
            [("greedy", greedy_clique_cover), ("naive", naive_edge_cover)];
        for (name, build) in builders {
            let t0 = Instant::now();
            let cover = build(&graph);
            let build_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            let (cliques, total, c) = (
                cover.count(),
                cover.total_size(),
                cover.avg_cliques_per_member(),
            );
            let (engine_ms, peak, comparisons) = run_cliquebin(&graph, cover, &data.workload.posts);
            eprintln!("[a3] λa={lambda_a} {name}: {cliques} cliques, engine {engine_ms:.0} ms");
            r.row(&[
                format!("{lambda_a}"),
                name.into(),
                cliques.to_string(),
                total.to_string(),
                f1(c),
                f1(build_ms),
                f1(engine_ms),
                peak.to_string(),
                comparisons.to_string(),
            ]);
        }
    }
    r.finish();
}
