//! Diagnostic: random-pair SimHash distance distribution (Figure 2 sanity)
//! and mutation-pair distances.

use firehose_datagen::{MutationClass, TextGen, TextGenConfig};
use firehose_simhash::{hamming_distance, simhash, SimHashOptions};

fn main() {
    let opts = SimHashOptions::paper();
    let mut g = TextGen::new(TextGenConfig::default(), 1);
    let tweets: Vec<String> = (0..4_000).map(|_| g.base_tweet()).collect();

    let mut hist = [0u32; 65];
    let mut pairs = 0u64;
    let fps: Vec<u64> = tweets.iter().map(|t| simhash(t, opts)).collect();
    for i in 0..fps.len() {
        for j in (i + 1)..fps.len().min(i + 200) {
            hist[hamming_distance(fps[i], fps[j]) as usize] += 1;
            pairs += 1;
        }
    }
    let below18: u32 = hist[..=18].iter().sum();
    let mean: f64 = hist
        .iter()
        .enumerate()
        .map(|(d, &c)| d as f64 * f64::from(c))
        .sum::<f64>()
        / pairs as f64;
    println!(
        "random pairs: {pairs}, mean {mean:.1}, P(<=18) = {:.4}%",
        below18 as f64 / pairs as f64 * 100.0
    );
    print!("hist: ");
    for d in (0..=64).step_by(4) {
        let band: u32 = hist[d..(d + 4).min(65)].iter().sum();
        print!("{d}:{:.2}% ", f64::from(band) / pairs as f64 * 100.0);
    }
    println!();

    // Mutation distances per class.
    for class in MutationClass::ALL {
        let mut le18 = 0u32;
        let mut total = 0f64;
        let n = 400;
        for _ in 0..n {
            let base = g.base_tweet();
            let m = g.mutate(&base, class);
            let d = hamming_distance(simhash(&base, opts), simhash(&m, opts));
            total += f64::from(d);
            if d <= 18 {
                le18 += 1;
            }
        }
        println!(
            "{class:?}: mean {:.1}, P(<=18) = {:.1}%",
            total / f64::from(n),
            f64::from(le18) / f64::from(n) * 100.0
        );
    }
}
