//! Resilience bench: seeded shard kills against the supervised sharded
//! service (`BENCH_resilience.json`).
//!
//! Each row runs the full stream through a supervised `Sh_*`
//! [`FirehoseService`] (checkpoints + replay log) while a seeded
//! [`ShardFaultPlan`] panics workers mid-stream, then compares every
//! delivered decision byte-for-byte against an unfaulted `S_*` run of the
//! same stream. The bench **asserts zero divergence** — a nonzero
//! `divergent_decisions` is a correctness bug, not a performance result.
//!
//! Reported per row: end-to-end throughput under faults, recovery latency
//! p50/p99 (restore + replay, nanoseconds), shard restarts, offers lost in
//! flight versus posts replayed from the log. A final row escalates a
//! *stalled* (not panicked) worker through the watchdog.
//!
//! Flags: `--smoke` (tiny workload, CI), `--posts <n>`, `--shards <n>`
//! (extra shard count on top of 1/2/4), `--out <path>` (default
//! `BENCH_resilience.json`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use firehose_bench::{flag_value, stream_rate, BenchSummary, EngineRow};
use firehose_core::checkpoint::CheckpointPolicy;
use firehose_core::multi::{MultiDecision, Subscriptions};
use firehose_core::service::{FirehoseService, StrategyKind};
use firehose_core::{EngineConfig, Thresholds};
use firehose_datagen::{
    generate_subscriptions, SocialGenConfig, SubscriptionGenConfig, SyntheticSocialGraph, Workload,
    WorkloadConfig,
};
use firehose_graph::{build_similarity_graph_parallel, UndirectedGraph};
use firehose_stream::{Post, ShardFaultKind, ShardFaultPlan};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fh-resilience-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

struct FaultedRun {
    decisions: Vec<MultiDecision>,
    elapsed_s: f64,
    restarts: u64,
    recoveries: u64,
    lost_offers: u64,
    lost_posts: u64,
    replayed_posts: u64,
    recovery_p50_ns: u64,
    recovery_p99_ns: u64,
}

/// Shared fixture for every faulted row: the similarity graph,
/// subscription table, engine configuration, post stream, and checkpoint
/// cadence are identical across rows — only the shard count and fault
/// plan vary.
struct Setup<'a> {
    graph: &'a UndirectedGraph,
    subscriptions: &'a Subscriptions,
    config: EngineConfig,
    posts: &'a [Post],
    checkpoint_every: u64,
}

/// Run the whole stream through a supervised sharded service under `plan`.
fn run_faulted(setup: &Setup, shards: usize, plan: ShardFaultPlan, tag: &str) -> FaultedRun {
    let dir = tempdir(tag);
    let mut service = FirehoseService::builder(setup.graph, setup.subscriptions.clone())
        .strategy(StrategyKind::Sharded { shards })
        .engine_config(setup.config)
        .checkpoints(
            &dir,
            CheckpointPolicy {
                every_offers: setup.checkpoint_every,
                every_millis: None,
                keep: 3,
            },
        )
        .watchdog(Duration::from_millis(50))
        .chaos(plan)
        .build()
        .expect("build supervised sharded service");

    let mut decisions: Vec<MultiDecision> = Vec::with_capacity(setup.posts.len());
    let t0 = Instant::now();
    for post in setup.posts {
        service
            .process(post.clone(), |_, decision| decisions.push(decision.clone()))
            .expect("supervised service must heal, not fail");
    }
    let elapsed_s = t0.elapsed().as_secs_f64();

    let stats = service.resilience_stats();
    let mut latencies = service.recovery_latencies_ns().to_vec();
    latencies.sort_unstable();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
    FaultedRun {
        decisions,
        elapsed_s,
        restarts: stats.restarts,
        recoveries: stats.recoveries,
        lost_offers: stats.lost_offers,
        lost_posts: stats.lost_posts,
        replayed_posts: stats.replayed_posts,
        recovery_p50_ns: percentile(&latencies, 0.50),
        recovery_p99_ns: percentile(&latencies, 0.99),
    }
}

fn divergence(reference: &[MultiDecision], faulted: &[MultiDecision]) -> u64 {
    assert_eq!(
        reference.len(),
        faulted.len(),
        "faulted run delivered a different number of decisions"
    );
    reference
        .iter()
        .zip(faulted)
        .filter(|(a, b)| a != b)
        .count() as u64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_resilience.json".to_string());
    let target_posts: usize = flag_value(&args, "--posts")
        .map(|v| v.parse().expect("--posts expects a count"))
        .unwrap_or(if smoke { 2_500 } else { 20_000 });
    let extra_shards: Option<usize> =
        flag_value(&args, "--shards").map(|v| v.parse().expect("--shards expects a count"));
    let (users, kills) = if smoke { (40usize, 5) } else { (400, 24) };

    let social_config = if smoke {
        SocialGenConfig::test_scale()
    } else {
        SocialGenConfig::bench_scale()
    };
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: target_posts as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        },
    );
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let graph = Arc::new(build_similarity_graph_parallel(&social.graph, 0.7, threads));
    let config = EngineConfig::builder(Thresholds::paper_defaults())
        .expected_rate(stream_rate(&workload.posts))
        .build();
    let sets = generate_subscriptions(
        social.author_count(),
        users,
        SubscriptionGenConfig::default(),
    );
    let subscriptions = Subscriptions::new(social.author_count(), sets).unwrap();
    let posts = &workload.posts;
    let checkpoint_every = (posts.len() as u64 / 40).max(1);
    eprintln!(
        "[resilience] workload: {} posts, {} users, {} seeded kills per row (checkpoint every {})",
        posts.len(),
        users,
        kills,
        checkpoint_every
    );

    // Unfaulted S_* reference: same stream, same configuration, no shards,
    // no faults. Every faulted row must reproduce these decisions exactly.
    let mut reference_service = FirehoseService::builder(&graph, subscriptions.clone())
        .strategy(StrategyKind::Shared)
        .engine_config(config)
        .build()
        .expect("build reference service");
    let mut reference: Vec<MultiDecision> = Vec::with_capacity(posts.len());
    for post in posts {
        reference_service
            .process(post.clone(), |_, decision| reference.push(decision.clone()))
            .expect("reference run");
    }
    // Engine deploys count toward a worker's request total; schedule kills
    // past the deploy wave so they land mid-stream, not during build.
    let engines = reference_service.churn_stats().initial_engines;
    let min_after = engines + 10;
    drop(reference_service);

    let mut summary = BenchSummary::new(
        "resilience",
        if smoke { "smoke" } else { "bench" },
        posts.len() as u64,
    );

    let setup = Setup {
        graph: &graph,
        subscriptions: &subscriptions,
        config,
        posts,
        checkpoint_every,
    };

    let mut shard_counts = vec![1usize, 2, 4];
    if let Some(n) = extra_shards {
        if !shard_counts.contains(&n) {
            shard_counts.push(n);
        }
    }
    for &shards in &shard_counts {
        let plan = ShardFaultPlan::seeded_after(
            0xD1CE + shards as u64,
            shards,
            kills,
            min_after,
            min_after + checkpoint_every,
        );
        let run = run_faulted(&setup, shards, plan, &format!("kill-{shards}"));
        let divergent = divergence(&reference, &run.decisions);
        let throughput = posts.len() as f64 / run.elapsed_s.max(1e-9);
        eprintln!(
            "[resilience] sharded:{shards}: {throughput:.0} posts/s under {} restarts, {} \
             recoveries (p50 {} ns, p99 {} ns), {} offers lost, {} posts lost, {} replayed, \
             {divergent} divergent decisions",
            run.restarts,
            run.recoveries,
            run.recovery_p50_ns,
            run.recovery_p99_ns,
            run.lost_offers,
            run.lost_posts,
            run.replayed_posts,
        );
        assert_eq!(
            divergent, 0,
            "sharded:{shards}: decisions diverged from the unfaulted run"
        );
        assert!(run.recoveries >= 1, "sharded:{shards}: no recovery ran");
        if !smoke {
            assert!(
                run.restarts >= kills as u64,
                "sharded:{shards}: only {} of {kills} scheduled kills fired",
                run.restarts
            );
        }
        summary.push_engine(
            EngineRow::new(
                &format!("sharded:{shards}"),
                throughput,
                run.recovery_p50_ns,
                run.recovery_p99_ns,
            )
            .with_u64("shards", shards as u64)
            .with_u64("seeded_kills", kills as u64)
            .with_u64("restarts", run.restarts)
            .with_u64("recoveries", run.recoveries)
            .with_u64("lost_offers", run.lost_offers)
            .with_u64("lost_posts", run.lost_posts)
            .with_u64("replayed_posts", run.replayed_posts)
            .with_u64("divergent_decisions", divergent),
        );
    }

    // Watchdog escalation: a shard that *stalls* (hangs without dying) is
    // detected by the frozen heartbeat, abandoned, and restarted — same
    // fidelity bar as the panic rows.
    let stall_after = min_after + checkpoint_every / 2;
    let plan = ShardFaultPlan::single(1, stall_after, ShardFaultKind::Stall);
    let run = run_faulted(&setup, 2, plan, "stall");
    let divergent = divergence(&reference, &run.decisions);
    let throughput = posts.len() as f64 / run.elapsed_s.max(1e-9);
    eprintln!(
        "[resilience] stall_watchdog: {throughput:.0} posts/s, {} restarts, {} recoveries, \
         {divergent} divergent decisions",
        run.restarts, run.recoveries,
    );
    assert_eq!(divergent, 0, "stall: decisions diverged after escalation");
    assert!(run.restarts >= 1, "stall: watchdog never escalated");
    summary.push_engine(
        EngineRow::new(
            "stall_watchdog",
            throughput,
            run.recovery_p50_ns,
            run.recovery_p99_ns,
        )
        .with_u64("shards", 2)
        .with_u64("restarts", run.restarts)
        .with_u64("recoveries", run.recoveries)
        .with_u64("lost_offers", run.lost_offers)
        .with_u64("lost_posts", run.lost_posts)
        .with_u64("replayed_posts", run.replayed_posts)
        .with_u64("divergent_decisions", divergent),
    );

    let path = std::path::Path::new(&out);
    summary.write(path).expect("write summary");
    // Self-check so --smoke in CI fails loudly on malformed output.
    let written = std::fs::read_to_string(path).expect("read summary back");
    assert!(
        written.starts_with('{') && written.trim_end().ends_with('}'),
        "summary is not a JSON object"
    );
    assert!(
        !written.contains("\"divergent_decisions\": 1")
            && written.contains("\"divergent_decisions\": 0"),
        "decision fidelity missing from summary"
    );
    println!("{written}");
}
