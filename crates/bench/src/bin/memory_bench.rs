//! Exact vs approximate coverage memory: the tiered-memory trade-off
//! (`BENCH_memory.json`).
//!
//! One paired row per algorithm (UniBin / NeighborBin / CliqueBin): the
//! same generated stream is run once with the exact coverage store and once
//! with [`MemoryMode::Approx`], and the two runs are compared on
//!
//! * **RAM** — `ram_reduction = exact_peak_bytes / approx_peak_bytes`, both
//!   sides the repo-wide payload convention (live records ×
//!   `PostRecord::SIZE_BYTES`); the approx side additionally reports
//!   `approx_estimated_peak_bytes`, which folds in the prefix-table and
//!   bucket-index overhead, so the reduction claim cannot hide the index;
//! * **quality** — both decision vectors are scored with
//!   [`quality::evaluate`] and the deltas are pushed through
//!   [`QualityGate`] against [`DeltaBounds::declared`]; the verdict is
//!   printed in full (`QUALITY GATE: PASS` / `FAIL` — CI greps for it) and
//!   a failed gate aborts the bench.
//!
//! The closing `service_memory_scale` row re-runs the comparison at the
//! paper's user-study scale: a 100 000-user subscription table (2 000 under
//! `--smoke`) over the full one-day stream through the shared-strategy
//! service facade, asserting
//! `ram_reduction ≥ DeltaBounds::declared().min_ram_reduction` (≥ 10×) —
//! the headline claim of the approximate mode.
//!
//! The bench runs the near-duplicate regime the approximate mode is
//! declared for: λc = 12 over a 24-hour window. At that radius covers are
//! true near-duplicates, and the workload's duplicate lag (mean 8 min, max
//! 45 min) keeps ~96 % of cover relationships inside the active bucket's
//! full-fidelity span, so the recency-skewed retention can shed the long
//! tail of the window (where exact stores grow with rate × λt) without
//! losing the covers that matter. Wider radii over short windows — e.g.
//! λc = 18 / λt = 6 h, where incidental SimHash collisions spread covers
//! uniformly over the window — are exactly what the quality gate exists to
//! reject; see EXPERIMENTS.md for the measured negative example.
//!
//! Flags: `--smoke` (tiny workload, CI), `--posts <n>` (single-engine
//! stream size, default 60 000), `--out <path>` (default
//! `BENCH_memory.json`).

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{flag_value, stream_rate, BenchSummary, EngineRow};
use firehose_core::prelude::*;
use firehose_core::{quality, DeltaBounds, QualityGate};
use firehose_datagen::{
    generate_subscriptions, SocialGenConfig, SubscriptionGenConfig, SyntheticSocialGraph, Workload,
    WorkloadConfig,
};
use firehose_graph::{build_similarity_graph_parallel, UndirectedGraph};
use firehose_stream::{hours, Post, PostRecord};

/// Full-recall probe count for λc = 12: `probes − 1 ≥ λc` makes the prefix
/// layout's pigeonhole guarantee cover the whole verification distance.
const PROBES: u32 = 13;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One measured single-engine pass: decisions plus the RAM / throughput
/// facts the row needs.
struct EngineRun {
    decisions: Vec<bool>,
    offers_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    peak_bytes: u64,
    /// Running max of `estimated_memory_bytes` (payload + index overhead),
    /// sampled every 1 024 offers and at the end.
    estimated_peak_bytes: u64,
    stats: Option<firehose_stream::ApproxStats>,
}

fn run_engine(
    kind: AlgorithmKind,
    config: EngineConfig,
    graph: &Arc<UndirectedGraph>,
    posts: &[Post],
) -> EngineRun {
    let mut engine = build_engine(kind, config, Arc::clone(graph));
    let mut decisions = Vec::with_capacity(posts.len());
    let mut latencies = Vec::with_capacity(posts.len());
    let mut estimated_peak_bytes = 0u64;
    let t0 = Instant::now();
    for (i, post) in posts.iter().enumerate() {
        let p0 = Instant::now();
        let decision = engine.offer(post);
        latencies.push(p0.elapsed().as_nanos() as u64);
        decisions.push(decision.is_emitted());
        if i % 1_024 == 0 {
            estimated_peak_bytes = estimated_peak_bytes.max(engine.estimated_memory_bytes());
        }
    }
    let offers_per_sec = posts.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    estimated_peak_bytes = estimated_peak_bytes.max(engine.estimated_memory_bytes());
    latencies.sort_unstable();
    EngineRun {
        decisions,
        offers_per_sec,
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        peak_bytes: engine.metrics().peak_memory_bytes,
        estimated_peak_bytes,
        stats: engine.approx_stats(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_memory.json".to_string());
    let target_posts: usize = flag_value(&args, "--posts")
        .map(|v| v.parse().expect("--posts expects a count"))
        .unwrap_or(if smoke { 4_000 } else { 60_000 });

    let social_config = if smoke {
        SocialGenConfig::test_scale()
    } else {
        SocialGenConfig::bench_scale()
    };
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: target_posts as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        },
    );
    // The memory-pressure regime the approximate mode targets: a tight
    // content threshold (λc = 12 — covers are true near-duplicates trailing
    // their source by minutes) under a day-long dedup horizon (λt = 24 h —
    // exact windows never shrink, growing with rate × λt). Wider λc over
    // the synthetic text makes coverage dominated by incidental SimHash
    // collisions spread uniformly over the window, which no sublinear store
    // can answer — the gate fails there by design (see EXPERIMENTS.md).
    let thresholds = Thresholds::new(12, hours(24), 0.7).expect("valid thresholds");
    let bounds = DeltaBounds::declared();
    eprintln!(
        "[memory] workload: {} posts from {} authors; λc = 12, λt = 24 h, {} probes",
        workload.len(),
        social.author_count(),
        PROBES,
    );

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let graph = Arc::new(build_similarity_graph_parallel(&social.graph, 0.7, threads));
    let rate = stream_rate(&workload.posts);
    let exact_config = EngineConfig::builder(thresholds)
        .expected_rate(rate)
        .build();
    let approx_engine_config = |approx: ApproxConfig| {
        EngineConfig::builder(thresholds)
            .expected_rate(rate)
            .memory(MemoryMode::Approx(approx))
            .build()
    };
    let records: Vec<PostRecord> = workload
        .posts
        .iter()
        .map(|p| p.to_record(exact_config.simhash))
        .collect();

    let mut summary = BenchSummary::new(
        "memory_bench",
        if smoke { "smoke" } else { "bench" },
        workload.len() as u64,
    );

    // Paired per-algorithm rows: exact vs approx over the identical stream,
    // quality-gated against the declared bounds. The retention budget is
    // *per bin*, so it scales with each algorithm's bin shape: UniBin keeps
    // one engine-wide bin (the declared 10x row); NeighborBin / CliqueBin
    // shard the window across thousands of per-author / per-clique bins
    // that are individually small, so their budgets — and declared RAM
    // floors — are lower (the declared deltas stay identical).
    let unibin_budget = if smoke { 8 } else { 120 };
    let cases = [
        (
            AlgorithmKind::UniBin,
            "UniBin",
            ApproxConfig::new(PROBES, unibin_budget, 16).unwrap(),
            bounds.min_ram_reduction,
        ),
        (
            AlgorithmKind::NeighborBin,
            "NeighborBin",
            ApproxConfig::new(PROBES, 4, 16).unwrap(),
            2.0,
        ),
        (
            AlgorithmKind::CliqueBin,
            "CliqueBin",
            ApproxConfig::new(PROBES, 4, 16).unwrap(),
            2.0,
        ),
    ];
    for (kind, name, approx, min_ram) in cases {
        let gate = QualityGate::new(DeltaBounds {
            min_ram_reduction: min_ram,
            ..bounds
        });
        let exact = run_engine(kind, exact_config, &graph, &workload.posts);
        let approx_run = run_engine(kind, approx_engine_config(approx), &graph, &workload.posts);
        let exact_report = quality::evaluate(&records, &exact.decisions, &thresholds, &graph);
        let approx_report = quality::evaluate(&records, &approx_run.decisions, &thresholds, &graph);
        let verdict = gate.verdict(
            &exact_report,
            &approx_report,
            exact.peak_bytes,
            approx_run.peak_bytes,
        );
        eprintln!(
            "[memory] {name}: exact {:.0} offers/s @ {} B peak; approx {:.0} offers/s @ {} B peak \
             ({} B with index overhead) — {:.1}x reduction",
            exact.offers_per_sec,
            exact.peak_bytes,
            approx_run.offers_per_sec,
            approx_run.peak_bytes,
            approx_run.estimated_peak_bytes,
            verdict.ram_reduction,
        );
        eprintln!("{verdict}");
        assert!(
            verdict.pass,
            "{name}: approximate mode fell outside the declared quality bounds"
        );
        let mut row = EngineRow::new(
            name,
            approx_run.offers_per_sec,
            approx_run.p50_ns,
            approx_run.p99_ns,
        )
        .with_f64("exact_offers_per_sec", exact.offers_per_sec)
        .with_u64("exact_p50_ns", exact.p50_ns)
        .with_u64("exact_p99_ns", exact.p99_ns)
        .with_u64("exact_peak_bytes", exact.peak_bytes)
        .with_u64("approx_peak_bytes", approx_run.peak_bytes)
        .with_u64(
            "approx_estimated_peak_bytes",
            approx_run.estimated_peak_bytes,
        )
        .with_f64("ram_reduction", verdict.ram_reduction)
        .with_f64("exact_delivery_ratio", exact_report.delivery_ratio())
        .with_f64("approx_delivery_ratio", approx_report.delivery_ratio())
        .with_u64(
            "approx_coverage_violations",
            approx_report.coverage_violations as u64,
        )
        .with_u64(
            "approx_residual_redundancy",
            approx_report.residual_redundancy as u64,
        )
        .with_u64("gate_passed", u64::from(verdict.pass));
        if let Some(stats) = approx_run.stats {
            row = row
                .with_u64("approx_probes_run", stats.probes_run)
                .with_u64("approx_candidates_probed", stats.candidates_probed)
                .with_u64("approx_displaced", stats.displaced)
                .with_u64("approx_retained_records", stats.retained);
        }
        summary.push_engine(row);
    }

    // Scale row — the paper's user-study scale: a 100k-user subscription
    // table over a stream prefix through the (sequential, shared-strategy)
    // service facade. This is the headline RAM claim: the exact service
    // carries every component engine's full window, the approximate one is
    // capped per bin, and the reduction must clear the declared ≥ 10x bar.
    let scale_users = if smoke { 2_000 } else { 100_000 };
    let scale_posts = workload.len();
    let scale_stream = &workload.posts[..scale_posts];
    // Shared-strategy engines are per user-component: thousands of thin
    // per-engine streams (~300 records/day each), so the per-bin budget is
    // the tightest of all rows — the active bucket still spans the ~45 min
    // duplicate-lag horizon of each component's stream.
    let scale_approx = ApproxConfig::new(PROBES, 1, 16).unwrap();
    let sets = generate_subscriptions(
        social.author_count(),
        scale_users,
        SubscriptionGenConfig::default(),
    );
    let subscriptions = Subscriptions::new(social.author_count(), sets.iter().cloned()).unwrap();
    let scale = |config: EngineConfig| {
        let mut service = FirehoseService::builder(&graph, subscriptions.clone())
            .engine_config(config)
            .build()
            .expect("build scale service");
        let mut deliveries = 0u64;
        let t0 = Instant::now();
        for post in scale_stream {
            service
                .process(post.clone(), |_, d| {
                    deliveries += d.delivered_to.len() as u64;
                })
                .unwrap();
        }
        let per_sec = scale_stream.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        (per_sec, deliveries, service.metrics().peak_memory_bytes)
    };
    let (exact_per_sec, exact_deliveries, exact_peak) = scale(exact_config);
    let (approx_per_sec, approx_deliveries, approx_peak) =
        scale(approx_engine_config(scale_approx));
    let ram_reduction = if approx_peak == 0 {
        f64::INFINITY
    } else {
        exact_peak as f64 / approx_peak as f64
    };
    let delivery_delta = (approx_deliveries as f64 - exact_deliveries as f64).abs()
        / (exact_deliveries as f64).max(1.0);
    eprintln!(
        "[memory] service_memory_scale: {scale_users} users, {scale_posts} posts; exact {exact_peak} B peak \
         vs approx {approx_peak} B peak — {ram_reduction:.1}x reduction, delivery delta {:.3}%",
        100.0 * delivery_delta
    );
    assert!(
        ram_reduction >= bounds.min_ram_reduction,
        "scale row: {ram_reduction:.2}x RAM reduction is under the declared {:.0}x floor",
        bounds.min_ram_reduction
    );
    summary.push_engine(
        EngineRow::new("service_memory_scale", approx_per_sec, 0, 0)
            .with_u64("users", scale_users as u64)
            .with_u64("posts", scale_posts as u64)
            .with_f64("exact_offers_per_sec", exact_per_sec)
            .with_u64("exact_peak_bytes", exact_peak)
            .with_u64("approx_peak_bytes", approx_peak)
            .with_f64("ram_reduction", ram_reduction)
            .with_u64("exact_deliveries", exact_deliveries)
            .with_u64("approx_deliveries", approx_deliveries)
            .with_f64("delivery_delta", delivery_delta)
            .with_u64(
                "gate_passed",
                u64::from(ram_reduction >= bounds.min_ram_reduction),
            ),
    );

    let path = std::path::Path::new(&out);
    summary.write(path).expect("write summary");
    // Self-check so --smoke in CI fails loudly on malformed output.
    let written = std::fs::read_to_string(path).expect("read summary back");
    assert!(
        written.starts_with('{') && written.trim_end().ends_with('}'),
        "summary is not a JSON object"
    );
    println!("{written}");
}
