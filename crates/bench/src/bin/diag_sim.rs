//! Diagnostic: empirical followee-cosine vs ring distance.

use firehose_bench::Scale;
use firehose_datagen::SyntheticSocialGraph;
use firehose_graph::similarity::followee_cosine;

fn main() {
    let g = SyntheticSocialGraph::generate(Scale::Bench.social_config());
    let n = g.author_count() as u32;
    println!("F(author 500) = {}", g.graph.followees(500).len());
    for delta in [
        1u32, 10, 25, 50, 75, 100, 150, 200, 250, 300, 400, 500, 600, 800, 1200, 2000,
    ] {
        let mut total = 0.0;
        let k = 40;
        for i in 0..k {
            let a = (200 + i * 97) % n;
            let b = (a + delta) % n;
            total += followee_cosine(&g.graph, a, b);
        }
        println!("δ={delta:5}  cos={:.4}", total / f64::from(k));
    }
}
