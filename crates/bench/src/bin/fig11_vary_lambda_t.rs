//! Figure 11: performance of UniBin / NeighborBin / CliqueBin across time
//! diversity thresholds `λt` (runtime, RAM, comparisons, insertions).
//!
//! Paper shape to reproduce (`λc = 18`, `λa = 0.7`):
//! * all costs shrink with smaller `λt`;
//! * NeighborBin and CliqueBin beat UniBin on runtime at moderate/large `λt`;
//! * CliqueBin beats NeighborBin for small `λt` (≤ ~10 min);
//! * at `λt = 1 min` UniBin wins outright (discussed in Section 6.2.2);
//! * RAM: NeighborBin > CliqueBin > UniBin.

use firehose_bench::{sweep_rows, Dataset, Report, Scale, SWEEP_HEADER};
use firehose_core::Thresholds;
use firehose_stream::minutes;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);

    let mut r = Report::new("fig11_vary_lambda_t", &SWEEP_HEADER);
    for lt_min in [1u64, 5, 10, 20, 30, 60] {
        eprintln!("[fig11] λt = {lt_min} min");
        let thresholds = Thresholds::new(18, minutes(lt_min), 0.7).expect("valid");
        let stats = firehose_bench::run_all(thresholds, &graph, &data.workload.posts);
        sweep_rows(&mut r, &format!("{lt_min}min"), &stats);
    }
    r.finish();
}
