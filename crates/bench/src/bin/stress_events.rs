//! Stress test (extension): viral-event bursts.
//!
//! Real firehoses are bursty — a breaking story triggers near-duplicates
//! from accounts across every community within minutes. The paper evaluates
//! on one crawled day; this stress run injects synthetic viral events (see
//! `WorkloadConfig::events`) and measures how each engine's cost and tail
//! latency respond, plus how much of the burst the diversifier absorbs.
//!
//! With `--metrics-out <dir>` each stream run additionally attaches a
//! `firehose-obs` registry to every engine and dumps Prometheus text
//! exposition + JSON snapshots (`--metrics-every <posts>` controls the
//! cadence; default final-only). The exposition carries one
//! `firehose_offer_latency_ns` histogram per engine kind, so p50/p99 are
//! derivable from the `_bucket` series alone. `--json <path>` writes the
//! summary in the `BENCH_hotpath.json` schema, one engine row per
//! stream × algorithm (`calm/UniBin`, `stormy/CliqueBin`, …).

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{
    f1, flag_value, BenchSummary, Dataset, EngineRow, MetricsSink, Report, Scale,
};
use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::{export_engine_metrics, EngineConfig, EngineObs, Thresholds};
use firehose_datagen::{Workload, WorkloadConfig};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_out = flag_value(&args, "--json");
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let graph = data.similarity_graph(0.7);
    let config = EngineConfig::new(Thresholds::paper_defaults())
        .with_expected_rate(firehose_bench::stream_rate(&data.workload.posts));

    let stormy = Workload::generate(
        &data.social,
        WorkloadConfig {
            events: 8,
            event_dup_prob: 0.7,
            ..scale.workload_config()
        },
    );
    eprintln!(
        "[stress] calm stream: {} posts ({:.1}% dups); stormy: {} posts ({:.1}% dups)",
        data.workload.len(),
        data.workload.duplicate_fraction() * 100.0,
        stormy.len(),
        stormy.duplicate_fraction() * 100.0
    );

    let mut summary = BenchSummary::new(
        "stress_events",
        &scale.to_string(),
        (data.workload.len() + stormy.len()) as u64,
    );
    let mut r = Report::new(
        "stress_events",
        &[
            "stream",
            "algorithm",
            "time_ms",
            "pruned_pct",
            "p99_ns",
            "comparisons",
        ],
    );
    for (label, workload) in [("calm", &data.workload), ("stormy", &stormy)] {
        // One registry per stream; engines separate themselves by label.
        let mut sink = MetricsSink::from_args(&format!("stress_events_{label}"));
        let mut offered: u64 = 0;
        for kind in AlgorithmKind::ALL {
            let mut engine = build_engine(kind, config, Arc::clone(&graph));
            if let Some(s) = &sink {
                engine.attach_obs(EngineObs::register(s.registry(), &kind.to_string()));
            }
            let mut latencies = Vec::with_capacity(workload.len());
            let t0 = Instant::now();
            for post in &workload.posts {
                let p0 = Instant::now();
                engine.offer(post);
                latencies.push(p0.elapsed().as_nanos() as u64);
                offered += 1;
                if let Some(s) = &mut sink {
                    s.tick(offered);
                }
            }
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            latencies.sort_unstable();
            let m = engine.metrics();
            if let Some(s) = &sink {
                export_engine_metrics(s.registry(), &kind.to_string(), m);
            }
            summary.push_engine(
                EngineRow::new(
                    &format!("{label}/{kind}"),
                    workload.len() as f64 / (elapsed_ms / 1_000.0).max(1e-9),
                    percentile(&latencies, 0.50),
                    percentile(&latencies, 0.99),
                )
                .with_f64("time_ms", elapsed_ms)
                .with_f64("pruned_pct", (1.0 - m.emit_ratio()) * 100.0)
                .with_u64("comparisons", m.comparisons),
            );
            r.row(&[
                label.into(),
                kind.to_string(),
                f1(elapsed_ms),
                f1((1.0 - m.emit_ratio()) * 100.0),
                percentile(&latencies, 0.99).to_string(),
                m.comparisons.to_string(),
            ]);
        }
        if let Some(s) = &mut sink {
            s.finish(offered);
        }
    }
    r.finish();
    if let Some(path) = json_out {
        summary
            .write(std::path::Path::new(&path))
            .expect("write --json summary");
        eprintln!("[stress] wrote {path}");
    }
    println!("bursts are mostly absorbed: the pruned fraction rises with the injected duplicates while the engines' tail latency stays bounded");
}
