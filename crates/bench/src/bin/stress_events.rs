//! Stress test (extension): viral-event bursts.
//!
//! Real firehoses are bursty — a breaking story triggers near-duplicates
//! from accounts across every community within minutes. The paper evaluates
//! on one crawled day; this stress run injects synthetic viral events (see
//! `WorkloadConfig::events`) and measures how each engine's cost and tail
//! latency respond, plus how much of the burst the diversifier absorbs.
//!
//! With `--metrics-out <dir>` each stream run additionally attaches a
//! `firehose-obs` registry to every engine and dumps Prometheus text
//! exposition + JSON snapshots (`--metrics-every <posts>` controls the
//! cadence; default final-only). The exposition carries one
//! `firehose_offer_latency_ns` histogram per engine kind, so p50/p99 are
//! derivable from the `_bucket` series alone. `--json <path>` writes the
//! summary in the `BENCH_hotpath.json` schema, one engine row per
//! stream × algorithm (`calm/UniBin`, `stormy/CliqueBin`, …).
//!
//! Hostile-stream mode: `--chaos-seed <n>` perturbs both streams with the
//! deterministic fault injector (`--dup-rate`, `--drop-rate`,
//! `--reorder-ms` tune it) and re-sanitizes them through the ingest guard
//! before the engines see them. The guard's quarantine counters land in the
//! `--json` summary (`guard_calm` / `guard_stormy` objects) and in the
//! metrics exposition (`firehose_guard_*`).

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{
    f1, flag_value, BenchSummary, Dataset, EngineRow, MetricsSink, Report, Scale,
};
use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::multi::Subscriptions;
use firehose_core::service::FirehoseService;
use firehose_core::{
    export_engine_metrics, export_guard_stats, EngineConfig, EngineObs, Thresholds,
};
use firehose_datagen::{generate_subscriptions, SubscriptionGenConfig, Workload, WorkloadConfig};
use firehose_stream::{guard_stream, GuardConfig, GuardPolicy, Perturbator, Post, QuarantineStats};

fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| match v.parse() {
        Ok(x) => x,
        Err(_) => {
            eprintln!("[stress] bad value for {flag}: {v}");
            std::process::exit(2);
        }
    })
}

fn guard_stats_json(stats: &QuarantineStats) -> String {
    let mut obj = format!(
        "{{\"admitted\": {}, \"quarantined_total\": {}, \"clamped_timestamps\": {}, \"truncated_texts\": {}, \"reordered\": {}",
        stats.admitted,
        stats.quarantined_total(),
        stats.clamped_timestamps,
        stats.truncated_texts,
        stats.reordered
    );
    for (reason, count) in stats.counts() {
        obj.push_str(&format!(", \"{}\": {count}", reason.as_str()));
    }
    obj.push('}');
    obj
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_out = flag_value(&args, "--json");
    let chaos_seed: Option<u64> = parsed_flag(&args, "--chaos-seed");
    let dup_rate: Option<f64> = parsed_flag(&args, "--dup-rate");
    let drop_rate: Option<f64> = parsed_flag(&args, "--drop-rate");
    let reorder_ms: Option<u64> = parsed_flag(&args, "--reorder-ms");
    let chaos =
        chaos_seed.is_some() || dup_rate.is_some() || drop_rate.is_some() || reorder_ms.is_some();
    let perturbator = chaos.then(|| {
        Perturbator::new(chaos_seed.unwrap_or(42))
            .with_dup_rate(dup_rate.unwrap_or(0.05))
            .with_drop_rate(drop_rate.unwrap_or(0.0))
            .with_reorder_ms(reorder_ms.unwrap_or(0))
    });
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let graph = data.similarity_graph(0.7);
    let config = EngineConfig::builder(Thresholds::paper_defaults())
        .expected_rate(firehose_bench::stream_rate(&data.workload.posts))
        .build();

    let stormy = Workload::generate(
        &data.social,
        WorkloadConfig {
            events: 8,
            event_dup_prob: 0.7,
            ..scale.workload_config()
        },
    );
    eprintln!(
        "[stress] calm stream: {} posts ({:.1}% dups); stormy: {} posts ({:.1}% dups)",
        data.workload.len(),
        data.workload.duplicate_fraction() * 100.0,
        stormy.len(),
        stormy.duplicate_fraction() * 100.0
    );

    let mut summary = BenchSummary::new(
        "stress_events",
        &scale.to_string(),
        (data.workload.len() + stormy.len()) as u64,
    );
    let mut r = Report::new(
        "stress_events",
        &[
            "stream",
            "algorithm",
            "time_ms",
            "pruned_pct",
            "p99_ns",
            "comparisons",
        ],
    );
    for (label, workload) in [("calm", &data.workload), ("stormy", &stormy)] {
        // One registry per stream; engines separate themselves by label.
        let mut sink = MetricsSink::from_args(&format!("stress_events_{label}"));
        // Hostile-stream mode: perturb, then re-sanitize through the guard.
        let mut guard_stats = None;
        let guarded = perturbator.as_ref().map(|p| {
            let perturbed = p.perturb(&workload.posts);
            let cfg = GuardConfig::new(GuardPolicy::Reorder {
                bound_ms: reorder_ms.unwrap_or(0),
            })
            .with_author_count(graph.node_count() as u32);
            let offered = perturbed.len();
            let (admitted, stats) = guard_stream(cfg, perturbed);
            eprintln!(
                "[stress] {label}: chaos offered {offered}, admitted {}, quarantined {}",
                stats.admitted,
                stats.quarantined_total()
            );
            guard_stats = Some(stats);
            admitted
        });
        let posts: &[Post] = guarded.as_deref().unwrap_or(&workload.posts);
        if let (Some(stats), Some(s)) = (&guard_stats, &sink) {
            export_guard_stats(s.registry(), label, stats);
        }
        if let Some(stats) = &guard_stats {
            summary.push_raw(&format!("guard_{label}"), guard_stats_json(stats));
        }
        let mut offered: u64 = 0;
        for kind in AlgorithmKind::ALL {
            let mut engine = build_engine(kind, config, Arc::clone(&graph));
            if let Some(s) = &sink {
                engine.attach_obs(EngineObs::register(s.registry(), &kind.to_string()));
            }
            let mut latencies = Vec::with_capacity(posts.len());
            let t0 = Instant::now();
            for post in posts {
                let p0 = Instant::now();
                engine.offer(post);
                latencies.push(p0.elapsed().as_nanos() as u64);
                offered += 1;
                if let Some(s) = &mut sink {
                    s.tick(offered);
                }
            }
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            latencies.sort_unstable();
            let m = engine.metrics();
            if let Some(s) = &sink {
                export_engine_metrics(s.registry(), &kind.to_string(), m);
            }
            summary.push_engine(
                EngineRow::new(
                    &format!("{label}/{kind}"),
                    posts.len() as f64 / (elapsed_ms / 1_000.0).max(1e-9),
                    percentile(&latencies, 0.50),
                    percentile(&latencies, 0.99),
                )
                .with_f64("time_ms", elapsed_ms)
                .with_f64("pruned_pct", (1.0 - m.emit_ratio()) * 100.0)
                .with_u64("comparisons", m.comparisons),
            );
            r.row(&[
                label.into(),
                kind.to_string(),
                f1(elapsed_ms),
                f1((1.0 - m.emit_ratio()) * 100.0),
                percentile(&latencies, 0.99).to_string(),
                m.comparisons.to_string(),
            ]);
        }
        if let Some(s) = &mut sink {
            s.finish(offered);
        }

        // The same burst through the multi-user service facade: a
        // SharedMulti over generated subscription sets, with the ingest
        // guard *inside* the service in chaos mode (raw perturbed posts in,
        // sanitation and fan-out measured as one pipeline).
        let sets =
            generate_subscriptions(graph.node_count(), 400, SubscriptionGenConfig::default());
        let subscriptions = Subscriptions::new(graph.node_count(), sets).unwrap();
        let mut builder = FirehoseService::builder(&graph, subscriptions).engine_config(config);
        if chaos {
            builder = builder.guard(GuardConfig::new(GuardPolicy::Reorder {
                bound_ms: reorder_ms.unwrap_or(0),
            }));
        }
        let mut service = builder.build().expect("build service");
        let input: Vec<Post> = match &perturbator {
            Some(p) => p.perturb(&workload.posts),
            None => workload.posts.clone(),
        };
        let input_len = input.len();
        let mut deliveries = 0u64;
        let mut latencies = Vec::with_capacity(input_len);
        let t0 = Instant::now();
        for post in input {
            let p0 = Instant::now();
            service
                .process(post, |_, d| deliveries += d.delivered_to.len() as u64)
                .expect("service has no checkpoint dir");
            latencies.push(p0.elapsed().as_nanos() as u64);
        }
        service
            .flush(|_, d| deliveries += d.delivered_to.len() as u64)
            .expect("service has no checkpoint dir");
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        latencies.sort_unstable();
        let m = service.metrics();
        let mut row = EngineRow::new(
            &format!("{label}/service"),
            input_len as f64 / (elapsed_ms / 1_000.0).max(1e-9),
            percentile(&latencies, 0.50),
            percentile(&latencies, 0.99),
        )
        .with_f64("time_ms", elapsed_ms)
        .with_f64("pruned_pct", (1.0 - m.emit_ratio()) * 100.0)
        .with_u64("comparisons", m.comparisons)
        .with_u64("users", 400)
        .with_u64("deliveries", deliveries);
        if let Some(stats) = service.guard_stats() {
            row = row.with_u64("quarantined", stats.quarantined_total());
        }
        summary.push_engine(row);
        r.row(&[
            label.into(),
            service.name(),
            f1(elapsed_ms),
            f1((1.0 - m.emit_ratio()) * 100.0),
            percentile(&latencies, 0.99).to_string(),
            m.comparisons.to_string(),
        ]);
    }
    r.finish();
    if let Some(path) = json_out {
        summary
            .write(std::path::Path::new(&path))
            .expect("write --json summary");
        eprintln!("[stress] wrote {path}");
    }
    println!("bursts are mostly absorbed: the pruned fraction rises with the injected duplicates while the engines' tail latency stays bounded");
}
