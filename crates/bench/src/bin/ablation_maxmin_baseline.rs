//! Ablation A6: SPSD coverage semantics vs the sliding-window MaxMin top-k
//! baseline (Related Work \[7\]).
//!
//! The paper's motivation for strict coverage semantics: *"we define strict
//! coverage constraints to guarantee that not even one uncovered post is
//! missed"*, which top-k diversification cannot promise. We run both over
//! the same stream and measure:
//!
//! * **lost posts** — posts that are neither delivered nor covered (under
//!   the paper's three-dimensional coverage test) by anything delivered in
//!   their λt window. SPSD guarantees zero; MaxMin loses whatever doesn't
//!   fit its k slots.
//! * output sizes and pairwise-comparison costs.

use std::sync::Arc;

use firehose_bench::{f1, Dataset, Report, Scale};
use firehose_core::engine::{AlgorithmKind, Diversifier, UniBin};
use firehose_core::quality::evaluate;
use firehose_core::{EngineConfig, MaxMinDiversifier, Thresholds};
use firehose_simhash::SimHashOptions;
use firehose_stream::PostRecord;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let thresholds = Thresholds::paper_defaults();
    let records: Vec<PostRecord> = data
        .workload
        .posts
        .iter()
        .map(|p| p.to_record(SimHashOptions::paper()))
        .collect();

    let mut r = Report::new(
        "ablation_maxmin_baseline",
        &[
            "system",
            "delivered",
            "delivered_pct",
            "lost_posts",
            "lost_pct",
            "comparisons",
        ],
    );
    let total = records.len() as f64;

    // SPSD (UniBin — all engines emit the same stream).
    let mut engine = UniBin::new(EngineConfig::new(thresholds), Arc::clone(&graph));
    let spsd_delivered: Vec<bool> = records
        .iter()
        .map(|&rec| engine.offer_record(rec).is_emitted())
        .collect();
    let spsd_quality = evaluate(&records, &spsd_delivered, &thresholds, &graph);
    let spsd_lost = spsd_quality.coverage_violations;
    let spsd_count = spsd_quality.delivered;
    assert!(spsd_quality.is_valid_diversification(), "{spsd_quality:?}");
    r.row(&[
        format!("SPSD ({})", AlgorithmKind::UniBin),
        spsd_count.to_string(),
        f1(spsd_count as f64 / total * 100.0),
        spsd_lost.to_string(),
        f1(spsd_lost as f64 / total * 100.0),
        engine.metrics().comparisons.to_string(),
    ]);
    assert_eq!(spsd_lost, 0, "SPSD must never lose a post");

    // MaxMin top-k at several k (delivered = entered the representative set
    // at arrival — its real-time push analogue).
    for k in [32usize, 128, 512, 2048] {
        let mut baseline = MaxMinDiversifier::new(k, thresholds.lambda_t);
        let delivered: Vec<bool> = records.iter().map(|&rec| baseline.observe(rec)).collect();
        let q = evaluate(&records, &delivered, &thresholds, &graph);
        let (lost, count) = (q.coverage_violations, q.delivered);
        eprintln!("[a6] maxmin k={k}: delivered {count}, lost {lost}");
        r.row(&[
            format!("MaxMin k={k}"),
            count.to_string(),
            f1(count as f64 / total * 100.0),
            lost.to_string(),
            f1(lost as f64 / total * 100.0),
            baseline.comparisons().to_string(),
        ]);
    }
    r.finish();
    println!("paper claim verified: coverage semantics lose nothing; top-k diversification silently drops uncovered posts");
}
