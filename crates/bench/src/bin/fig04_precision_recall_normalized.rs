//! Figure 4: precision/recall of the Hamming-threshold redundancy test on
//! **normalized** tweet text (lowercased, whitespace-collapsed,
//! punctuation-stripped).
//!
//! The paper reports that normalization raises both curves and that they
//! cross at distance 18 with precision 0.96 / recall 0.95 — the origin of
//! the default `λc = 18`.

use firehose_bench::{f3, Report, Scale};
use firehose_datagen::{UserStudy, UserStudyConfig};
use firehose_simhash::SimHashOptions;

fn main() {
    let scale = Scale::from_env();
    let pairs_per_distance = if scale == Scale::Test { 15 } else { 100 };
    let study = UserStudy::generate(UserStudyConfig {
        pairs_per_distance,
        ..UserStudyConfig::default()
    });
    eprintln!(
        "[fig04] {} pairs, {} labeled redundant (paper: 949 of 2000)",
        study.len(),
        study.redundant_count()
    );

    let mut r = Report::new(
        "fig04_precision_recall_normalized",
        &["threshold", "precision", "recall"],
    );
    for pr in study.precision_recall(SimHashOptions::paper()) {
        r.row(&[pr.threshold.to_string(), f3(pr.precision), f3(pr.recall)]);
    }
    r.finish();

    let norm = study.crossover(SimHashOptions::paper());
    let raw = study.crossover(SimHashOptions::raw());
    let f1 = |p: f64, q: f64| 2.0 * p * q / (p + q).max(1e-9);
    println!(
        "crossover (normalized): h={} P={:.3} R={:.3}   [paper: h=18 P=0.96 R=0.95]",
        norm.threshold, norm.precision, norm.recall
    );
    println!(
        "normalization gain at crossover (F1): raw {:.3} -> normalized {:.3}",
        f1(raw.precision, raw.recall),
        f1(norm.precision, norm.recall)
    );
}
