//! Per-post decision latency (extension beyond the paper).
//!
//! The paper's core requirement is *real-time* decisions — "immediately
//! decide whether a post Pi should be included in Z at its arrival" — but
//! its evaluation reports only aggregate ingest time. This binary measures
//! the per-post `offer()` latency distribution (p50 / p90 / p99 / p99.9 /
//! max) for each algorithm at the default setting, the number an operator
//! actually provisions against.
//!
//! It also prices the observability layer: a bare and an instrumented engine
//! alternate over the same stream in small segments, and `overhead_pct` is
//! the median paired segment-time ratio — the cost of always-on latency
//! histograms, which must stay small (≤5%) for the layer to be left enabled
//! in production. Paired segments are used because back-to-back whole-stream
//! passes drift by several percent with CPU frequency and cache state,
//! swamping a sub-percent effect. With `--metrics-out <dir>` the
//! instrumented engine also dumps registry snapshots (Prometheus text +
//! JSON, `--metrics-every <posts>` for the cadence). `--json <path>` writes
//! the summary in the `BENCH_hotpath.json` schema (see
//! [`firehose_bench::BenchSummary`]) for the recorded perf trajectory.

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{flag_value, BenchSummary, Dataset, EngineRow, MetricsSink, Report, Scale};
use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::{export_engine_metrics, EngineConfig, EngineObs, Thresholds};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_out = flag_value(&args, "--json");
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let graph = data.similarity_graph(0.7);
    let config = EngineConfig::builder(Thresholds::paper_defaults())
        .expected_rate(firehose_bench::stream_rate(&data.workload.posts))
        .build();
    let mut sink = MetricsSink::from_args("latency_profile");
    let mut summary = BenchSummary::new(
        "latency_profile",
        &scale.to_string(),
        data.workload.len() as u64,
    );

    let mut r = Report::new(
        "latency_profile",
        &[
            "algorithm",
            "p50_ns",
            "p90_ns",
            "p99_ns",
            "p999_ns",
            "max_us",
            "mean_ns",
            "overhead_pct",
        ],
    );
    let mut offered_total = 0u64;
    for kind in AlgorithmKind::ALL {
        // Pass 1: bare engine, per-post timing — the reported distribution.
        let mut engine = build_engine(kind, config, Arc::clone(&graph));
        let mut latencies: Vec<u64> = Vec::with_capacity(data.workload.len());
        for post in &data.workload.posts {
            let t0 = Instant::now();
            engine.offer(post);
            latencies.push(t0.elapsed().as_nanos() as u64);
        }
        latencies.sort_unstable();
        let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;

        // Pass 2: overhead. A bare and an instrumented engine leapfrog over
        // the stream one segment at a time; each pair of segment timings is
        // taken microseconds apart, so the machine state cancels out of the
        // per-segment ratio. Both engines do identical logical work (same
        // decisions — the engines are deterministic).
        let mut bare = build_engine(kind, config, Arc::clone(&graph));
        let mut instr = build_engine(kind, config, Arc::clone(&graph));
        let own_registry = firehose_obs::Registry::new();
        let registry = sink.as_ref().map_or(&own_registry, |s| s.registry());
        instr.attach_obs(EngineObs::register(registry, &kind.to_string()));
        let seg = (data.workload.len() / 32).max(1);
        let mut ratios: Vec<f64> = Vec::new();
        for chunk in data.workload.posts.chunks(seg) {
            let t0 = Instant::now();
            for post in chunk {
                bare.offer(post);
            }
            let bare_ns = t0.elapsed().as_nanos().max(1) as f64;
            let t0 = Instant::now();
            for post in chunk {
                instr.offer(post);
            }
            let instr_ns = t0.elapsed().as_nanos() as f64;
            ratios.push(instr_ns / bare_ns - 1.0);
            offered_total += chunk.len() as u64;
            if let Some(s) = &mut sink {
                s.tick(offered_total);
            }
        }
        ratios.sort_by(f64::total_cmp);
        let overhead_pct = 100.0 * ratios[ratios.len() / 2];
        if let Some(s) = &sink {
            export_engine_metrics(s.registry(), &kind.to_string(), instr.metrics());
        }

        eprintln!(
            "[latency] {kind}: p99 = {} ns, obs overhead {overhead_pct:+.1}%",
            percentile(&latencies, 0.99)
        );
        // offers/sec from the timed pass-1 latencies (sum of per-post time).
        let sum_ns = latencies.iter().sum::<u64>() as f64;
        summary.push_engine(
            EngineRow::new(
                &kind.to_string(),
                latencies.len() as f64 / (sum_ns / 1e9).max(1e-9),
                percentile(&latencies, 0.50),
                percentile(&latencies, 0.99),
            )
            .with_u64("p90_ns", percentile(&latencies, 0.90))
            .with_u64("p999_ns", percentile(&latencies, 0.999))
            .with_u64("max_ns", *latencies.last().unwrap_or(&0))
            .with_f64("mean_ns", mean)
            .with_f64("overhead_pct", overhead_pct),
        );
        r.row(&[
            kind.to_string(),
            percentile(&latencies, 0.50).to_string(),
            percentile(&latencies, 0.90).to_string(),
            percentile(&latencies, 0.99).to_string(),
            percentile(&latencies, 0.999).to_string(),
            format!("{:.1}", *latencies.last().unwrap_or(&0) as f64 / 1_000.0),
            format!("{mean:.0}"),
            format!("{overhead_pct:+.1}"),
        ]);
    }
    if let Some(s) = &mut sink {
        s.finish(offered_total);
    }
    r.finish();
    if let Some(path) = json_out {
        summary
            .write(std::path::Path::new(&path))
            .expect("write --json summary");
        eprintln!("[latency] wrote {path}");
    }
    println!("real-time check: a Twitter-scale firehose (~5.8k posts/s) leaves ~172 µs per post");
}
