//! Per-post decision latency (extension beyond the paper).
//!
//! The paper's core requirement is *real-time* decisions — "immediately
//! decide whether a post Pi should be included in Z at its arrival" — but
//! its evaluation reports only aggregate ingest time. This binary measures
//! the per-post `offer()` latency distribution (p50 / p90 / p99 / p99.9 /
//! max) for each algorithm at the default setting, the number an operator
//! actually provisions against.

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{Dataset, Report, Scale};
use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::{EngineConfig, Thresholds};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let config = EngineConfig::new(Thresholds::paper_defaults());

    let mut r = Report::new(
        "latency_profile",
        &["algorithm", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_us", "mean_ns"],
    );
    for kind in AlgorithmKind::ALL {
        let mut engine = build_engine(kind, config, Arc::clone(&graph));
        let mut latencies: Vec<u64> = Vec::with_capacity(data.workload.len());
        for post in &data.workload.posts {
            let t0 = Instant::now();
            engine.offer(post);
            latencies.push(t0.elapsed().as_nanos() as u64);
        }
        latencies.sort_unstable();
        let mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
        eprintln!("[latency] {kind}: p99 = {} ns", percentile(&latencies, 0.99));
        r.row(&[
            kind.to_string(),
            percentile(&latencies, 0.50).to_string(),
            percentile(&latencies, 0.90).to_string(),
            percentile(&latencies, 0.99).to_string(),
            percentile(&latencies, 0.999).to_string(),
            format!("{:.1}", *latencies.last().unwrap_or(&0) as f64 / 1_000.0),
            format!("{mean:.0}"),
        ]);
    }
    r.finish();
    println!("real-time check: a Twitter-scale firehose (~5.8k posts/s) leaves ~172 µs per post");
}
