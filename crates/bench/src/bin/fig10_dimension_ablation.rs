//! Figure 10: number of tweets left after diversification under different
//! dimension settings.
//!
//! The paper shows that the full three-dimensional model prunes ≈10% of the
//! day's tweets and that dropping any dimension "largely changes the size of
//! the diversified stream" — each dimension carries real constraint. We run
//! the 2³ on/off grid:
//!
//! * time off → `λt = ∞` (any earlier post can cover),
//! * content off → `λc = 64` (any fingerprint within range),
//! * author off → complete similarity graph (all authors similar).

use std::sync::Arc;

use firehose_bench::{f1, Dataset, Report, Scale};
use firehose_core::engine::AlgorithmKind;
use firehose_core::Thresholds;
use firehose_graph::UndirectedGraph;
use firehose_stream::Timestamp;

fn main() {
    let scale = Scale::from_env();
    let data = Dataset::generate(scale);
    let sim_graph = data.similarity_graph(0.7);
    let complete = Arc::new(UndirectedGraph::complete(data.social.author_count()));
    let total = data.workload.len() as f64;

    let defaults = Thresholds::paper_defaults();
    let mut r = Report::new(
        "fig10_dimension_ablation",
        &[
            "content",
            "time",
            "author",
            "left",
            "left_pct",
            "pruned_pct",
        ],
    );

    for content_on in [true, false] {
        for time_on in [true, false] {
            for author_on in [true, false] {
                let thresholds = Thresholds::new(
                    if content_on { defaults.lambda_c } else { 64 },
                    if time_on {
                        defaults.lambda_t
                    } else {
                        Timestamp::MAX
                    },
                    defaults.lambda_a,
                )
                .expect("valid thresholds");
                let graph = if author_on {
                    Arc::clone(&sim_graph)
                } else {
                    Arc::clone(&complete)
                };
                // UniBin suffices: all engines emit the same sub-stream.
                let stats = firehose_bench::run_spsd(
                    AlgorithmKind::UniBin,
                    thresholds,
                    graph,
                    &data.workload.posts,
                );
                let left = stats.metrics.posts_emitted as f64;
                let onoff = |b: bool| if b { "on" } else { "off" }.to_string();
                r.row(&[
                    onoff(content_on),
                    onoff(time_on),
                    onoff(author_on),
                    (left as u64).to_string(),
                    f1(left / total * 100.0),
                    f1((1.0 - left / total) * 100.0),
                ]);
                eprintln!(
                    "[fig10] c={content_on} t={time_on} a={author_on}: left {left} ({:.1}%)",
                    left / total * 100.0
                );
            }
        }
    }
    r.finish();
    println!("paper reference: all three dimensions on prunes ≈10%; removing dimensions changes the stream size substantially");
}
