//! Table 2: the analytical cost model vs measured engine counters.
//!
//! The model predicts per-λt-window RAM (in records), comparisons and
//! insertions from the workload parameters `(m, n, r)` and graph topology
//! `(d, c, s)`. We measure those parameters from the actual run, evaluate
//! the model, and report predicted vs measured for all three algorithms.
//! The model is a rough estimate (the paper derives it "attempting to
//! capture ... realistic data, rather than the worst-case"), so agreement
//! within a small constant factor validates it.

use firehose_bench::{Dataset, Report, Scale};
use firehose_core::{CostInputs, Thresholds};
use firehose_graph::{greedy_clique_cover, GraphTopology};

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let thresholds = Thresholds::paper_defaults();

    let cover = greedy_clique_cover(&graph);
    let topology = GraphTopology::measure(&graph, &cover);

    // Measure r from a UniBin run, and n from the stream itself.
    let stats = firehose_bench::run_all(thresholds, &graph, &data.workload.posts);
    let posts = data.workload.len() as f64;
    let duration = data
        .workload
        .posts
        .last()
        .map(|p| p.timestamp as f64)
        .unwrap_or(1.0)
        .max(1.0);
    let windows = duration / thresholds.lambda_t as f64;
    let n = posts / windows; // posts per λt window
    let r = stats[0].metrics.emit_ratio();

    let inputs = CostInputs {
        m: data.social.author_count() as f64,
        n,
        r,
        d: topology.d,
        c: topology.c,
        s: topology.s,
    };
    eprintln!(
        "[table2] inputs: m={:.0} n={:.0} r={:.3} d={:.1} c={:.1} s={:.1} (identity err {:.2})",
        inputs.m,
        inputs.n,
        inputs.r,
        inputs.d,
        inputs.c,
        inputs.s,
        topology.identity_relative_error()
    );

    let mut report = Report::new(
        "table2_cost_model",
        &[
            "algorithm",
            "pred_ram_records",
            "meas_peak_records",
            "pred_cmp_per_window",
            "meas_cmp_per_window",
            "pred_ins_per_window",
            "meas_ins_per_window",
        ],
    );
    for stat in &stats {
        let p = inputs.predict(stat.kind);
        report.row(&[
            stat.kind.to_string(),
            format!("{:.0}", p.ram_records),
            stat.metrics.peak_copies.to_string(),
            format!("{:.0}", p.comparisons),
            format!("{:.0}", stat.metrics.comparisons as f64 / windows),
            format!("{:.0}", p.insertions),
            format!("{:.0}", stat.metrics.insertions as f64 / windows),
        ]);
    }
    report.finish();

    println!(
        "model orderings: least RAM = {}, fewest comparisons = {}",
        inputs.least_ram(),
        inputs.fewest_comparisons()
    );
}
