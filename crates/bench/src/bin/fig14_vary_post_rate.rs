//! Figure 14: performance across post-generation rates (uniform stream
//! sampling at 1%, 5%, 25%, 100%).
//!
//! Paper shape (`λt = 30 min`, `λc = 18`, `λa = 0.7`): at low throughput
//! UniBin outperforms both indexed engines — the per-window post count `n`
//! shrinks, so comparisons (super-linear in `n`) stop dominating and the
//! indexed engines' extra insertions become pure overhead. CliqueBin beats
//! NeighborBin at moderate/small rates.

use firehose_bench::{sweep_rows, Dataset, Report, Scale, SWEEP_HEADER};
use firehose_core::Thresholds;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let thresholds = Thresholds::paper_defaults();

    let mut r = Report::new("fig14_vary_post_rate", &SWEEP_HEADER);
    for ratio in [0.01f64, 0.05, 0.25, 1.0] {
        let posts = data.workload.sample_posts(ratio, 0x000F_1614);
        eprintln!("[fig14] sample ratio {ratio}: {} posts", posts.len());
        let stats = firehose_bench::run_all(thresholds, &graph, &posts);
        sweep_rows(&mut r, &format!("{:.0}%", ratio * 100.0), &stats);
    }
    r.finish();
}
