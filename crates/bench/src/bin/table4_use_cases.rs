//! Table 4: use-case → algorithm choice, verified empirically.
//!
//! For each regime of the paper's decision matrix we (a) print the advisor's
//! recommendation and (b) actually run all three algorithms in that regime
//! to report the measured runtime winner.
//!
//! | regime | paper's choice |
//! |---|---|
//! | very small λt | UniBin |
//! | low throughput (Google Scholar) | UniBin |
//! | large λa / dense G (News RSS) | UniBin |
//! | large λt, sparse G, high throughput (Twitch) | NeighborBin |
//! | moderate λt, sparse G, high throughput (Twitter) | CliqueBin |

use firehose_bench::{f1, Dataset, Report, Scale};
use firehose_core::advisor::{recommend, AdvisorInputs, ThroughputClass};
use firehose_core::Thresholds;
use firehose_stream::{hours, minutes};

struct Regime {
    name: &'static str,
    lambda_t: u64,
    lambda_a: f64,
    sample_ratio: f64,
    throughput: ThroughputClass,
    paper_choice: &'static str,
}

fn main() {
    let data = Dataset::generate(Scale::from_env());

    let regimes = [
        Regime {
            name: "very small λt",
            lambda_t: minutes(1),
            lambda_a: 0.7,
            sample_ratio: 1.0,
            throughput: ThroughputClass::High,
            paper_choice: "UniBin",
        },
        Regime {
            name: "low throughput (Scholar)",
            lambda_t: minutes(30),
            lambda_a: 0.7,
            sample_ratio: 0.01,
            throughput: ThroughputClass::Low,
            paper_choice: "UniBin",
        },
        Regime {
            name: "dense G (News RSS)",
            lambda_t: minutes(30),
            lambda_a: 0.8,
            sample_ratio: 1.0,
            throughput: ThroughputClass::High,
            paper_choice: "UniBin",
        },
        Regime {
            name: "large λt (Twitch)",
            lambda_t: hours(3),
            lambda_a: 0.7,
            sample_ratio: 1.0,
            throughput: ThroughputClass::High,
            paper_choice: "NeighborBin",
        },
        Regime {
            name: "moderate λt (Twitter)",
            lambda_t: minutes(30),
            lambda_a: 0.7,
            sample_ratio: 1.0,
            throughput: ThroughputClass::High,
            paper_choice: "CliqueBin",
        },
    ];

    let mut r = Report::new(
        "table4_use_cases",
        &[
            "regime",
            "advisor",
            "measured_winner",
            "winner_ms",
            "paper_choice",
        ],
    );
    for regime in &regimes {
        eprintln!("[table4] {}", regime.name);
        let advisor = recommend(AdvisorInputs {
            lambda_t: regime.lambda_t,
            lambda_a: regime.lambda_a,
            throughput: regime.throughput,
            ram_critical: false,
        });

        let graph = data.similarity_graph(regime.lambda_a);
        let posts = if regime.sample_ratio < 1.0 {
            data.workload.sample_posts(regime.sample_ratio, 0x7AB4)
        } else {
            data.workload.posts.clone()
        };
        let thresholds = Thresholds::new(18, regime.lambda_t, regime.lambda_a).expect("valid");
        let stats = firehose_bench::run_all(thresholds, &graph, &posts);
        let winner = stats
            .iter()
            .min_by(|a, b| a.elapsed_ms.partial_cmp(&b.elapsed_ms).expect("finite"))
            .expect("three runs");

        r.row(&[
            regime.name.into(),
            advisor.to_string(),
            winner.kind.to_string(),
            f1(winner.elapsed_ms),
            regime.paper_choice.into(),
        ]);
    }
    r.finish();
}
