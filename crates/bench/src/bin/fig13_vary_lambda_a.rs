//! Figure 13: performance across author diversity thresholds `λa`.
//!
//! Paper shape (`λt = 30 min`, `λc = 18`): `λa` barely affects UniBin but
//! dominates NeighborBin and CliqueBin — at `λa = 0.8` the similarity graph
//! densifies (the paper's `d` jumps 113.7 → 437.3 and `c` 29 → 106), so both
//! per-author and per-clique indexes blow up in RAM and runtime, and UniBin
//! becomes the best choice (the "dense G" row of Table 4).

use firehose_bench::{sweep_rows, Dataset, Report, Scale, SWEEP_HEADER};
use firehose_core::Thresholds;
use firehose_graph::{greedy_clique_cover, GraphTopology};
use firehose_stream::minutes;

fn main() {
    let data = Dataset::generate(Scale::from_env());

    let mut r = Report::new("fig13_vary_lambda_a", &SWEEP_HEADER);
    let mut topo = Report::new("fig13_topology", &["lambda_a", "d", "c", "s"]);
    for lambda_a in [0.6f64, 0.7, 0.8] {
        eprintln!("[fig13] λa = {lambda_a}");
        let graph = data.similarity_graph(lambda_a);
        let cover = greedy_clique_cover(&graph);
        let t = GraphTopology::measure(&graph, &cover);
        topo.row(&[
            format!("{lambda_a}"),
            format!("{:.1}", t.d),
            format!("{:.1}", t.c),
            format!("{:.1}", t.s),
        ]);

        let thresholds = Thresholds::new(18, minutes(30), lambda_a).expect("valid");
        let stats = firehose_bench::run_all(thresholds, &graph, &data.workload.posts);
        sweep_rows(&mut r, &format!("{lambda_a}"), &stats);
    }
    topo.finish();
    r.finish();
    println!("paper topology reference: λa=0.7 → d=113.7 c=29 s=20; λa=0.8 → d=437.3 c=106 s=38");
}
