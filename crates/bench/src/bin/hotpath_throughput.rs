//! Hot-path throughput: the recorded perf trajectory (`BENCH_hotpath.json`).
//!
//! Measures, per engine, sustained `offer()` throughput (offers/sec, timed
//! without per-post instrumentation) and the per-offer latency distribution
//! (p50/p99, a separate pass with per-post timers), over a generated
//! ~100k-post day. A kernel microbenchmark then isolates the UniBin window
//! scan itself: the scalar newest-first `within_distance` walk versus the
//! batched `filter_within` pass over the same contiguous fingerprint column
//! — both scan the full window, so the ratio is the pure kernel speedup,
//! uncontaminated by eviction, author checks or allocator noise.
//!
//! The summary lands in `BENCH_hotpath.json` at the invocation directory
//! (repo root in CI), so every future PR has a before/after number.
//!
//! Flags: `--smoke` (tiny workload, CI), `--posts <n>` (target stream size,
//! default 100 000), `--out <path>` (default `BENCH_hotpath.json`).

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{flag_value, stream_rate, BenchSummary, EngineRow};
use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::{EngineConfig, Thresholds};
use firehose_datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose_graph::build_similarity_graph_parallel;
use firehose_simhash::{
    active_kernel, filter_within_into_using, supported_kernels, within_distance, Fingerprint,
};
use firehose_stream::Post;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let target_posts: usize = flag_value(&args, "--posts")
        .map(|v| v.parse().expect("--posts expects a count"))
        .unwrap_or(if smoke { 2_000 } else { 100_000 });

    // Size the day so the stream hits the post target: fix the author
    // population per mode and scale the per-author daily rate.
    let social_config = if smoke {
        SocialGenConfig::test_scale()
    } else {
        SocialGenConfig::bench_scale()
    };
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: target_posts as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        },
    );
    eprintln!(
        "[hotpath] workload: {} posts from {} authors ({:.1}% near-duplicates)",
        workload.len(),
        social.author_count(),
        workload.duplicate_fraction() * 100.0
    );
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let graph = Arc::new(build_similarity_graph_parallel(&social.graph, 0.7, threads));
    let thresholds = Thresholds::paper_defaults();
    let config = EngineConfig::builder(thresholds)
        .expected_rate(stream_rate(&workload.posts))
        .build();

    let mut summary = BenchSummary::new(
        "hotpath_throughput",
        if smoke { "smoke" } else { "bench" },
        workload.len() as u64,
    );
    // Record which Hamming kernel produced this run's numbers, so historical
    // JSON is comparable across hosts (avx2 vs neon vs scalar fallback).
    let kernel = active_kernel();
    eprintln!("[hotpath] hamming kernel: {kernel}");
    summary.push_raw("hamming_kernel", format!("\"{}\"", kernel.name()));
    for kind in AlgorithmKind::ALL {
        // Pass 1 — throughput: whole-stream wall clock, no per-post timers.
        let mut engine = build_engine(kind, config, Arc::clone(&graph));
        let t0 = Instant::now();
        for post in &workload.posts {
            engine.offer(post);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let offers_per_sec = workload.len() as f64 / elapsed.max(1e-9);
        let metrics = *engine.metrics();

        // Pass 2 — latency distribution: fresh engine, per-post timers.
        let mut engine = build_engine(kind, config, Arc::clone(&graph));
        let mut latencies: Vec<u64> = Vec::with_capacity(workload.len());
        for post in &workload.posts {
            let p0 = Instant::now();
            engine.offer(post);
            latencies.push(p0.elapsed().as_nanos() as u64);
        }
        latencies.sort_unstable();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);

        eprintln!("[hotpath] {kind}: {offers_per_sec:.0} offers/s, p50 {p50} ns, p99 {p99} ns");
        summary.push_engine(
            EngineRow::new(&kind.to_string(), offers_per_sec, p50, p99)
                .with_u64("comparisons", metrics.comparisons)
                .with_u64("insertions", metrics.insertions)
                .with_u64("posts_emitted", metrics.posts_emitted)
                .with_u64("peak_memory_bytes", metrics.peak_memory_bytes),
        );
    }

    summary.push_raw("kernel", kernel_microbench(&workload, &config, smoke));

    let path = std::path::Path::new(&out);
    summary.write(path).expect("write summary");
    // Self-check so --smoke in CI fails loudly on malformed output.
    let written = std::fs::read_to_string(path).expect("read summary back");
    assert!(
        written.starts_with('{') && written.trim_end().ends_with('}'),
        "summary is not a JSON object"
    );
    println!("{written}");
}

/// The pre-PR UniBin window scan (newest-first walk over array-of-structs
/// records, one branch per record) versus the batched kernel over the dense
/// fingerprint column — both scanning the full window (the miss case that
/// dominates cost), so the ratio captures exactly what this layout + kernel
/// change bought. Returns the rendered JSON object.
fn kernel_microbench(workload: &Workload, config: &EngineConfig, smoke: bool) -> String {
    let lambda_c = config.thresholds.lambda_c;
    let records: Vec<firehose_stream::PostRecord> = workload
        .posts
        .iter()
        .take(if smoke { 4_000 } else { 50_000 })
        .map(|p: &Post| p.to_record(config.simhash))
        .collect();
    let column: Vec<Fingerprint> = records.iter().map(|r| r.fingerprint).collect();
    // Queries drawn from the stream itself so match density is realistic.
    let queries: Vec<Fingerprint> = column.iter().copied().step_by(97).take(64).collect();
    let reps = if smoke { 2 } else { 8 };
    let scanned = (column.len() * queries.len() * reps) as f64;

    // Scalar-over-AoS: the pre-columnar hot loop — 32-byte records walked
    // newest-first, one XOR+POPCNT and one data-dependent branch each.
    let mut matches_scalar = 0u64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for &q in &queries {
            for r in records.iter().rev() {
                if within_distance(r.fingerprint, q, lambda_c) {
                    matches_scalar += 1;
                }
            }
        }
    }
    let scalar_ns = t0.elapsed().as_nanos() as f64 / scanned;

    // Every kernel the host supports (best first, scalar always last), each
    // timed over the identical column + queries and cross-checked against
    // the AoS walk's match count.
    let mut per_kernel = Vec::new();
    let mut candidates: Vec<u32> = Vec::new();
    for kernel in supported_kernels() {
        let mut matches_batched = 0u64;
        let t0 = Instant::now();
        for _ in 0..reps {
            for &q in &queries {
                filter_within_into_using(kernel, q, &column, lambda_c, &mut candidates);
                matches_batched += candidates.len() as u64;
            }
        }
        let batched_ns = t0.elapsed().as_nanos() as f64 / scanned;
        assert_eq!(
            matches_scalar, matches_batched,
            "{kernel} kernel diverged from the scalar scan"
        );
        let speedup = scalar_ns / batched_ns.max(1e-9);
        eprintln!(
            "[hotpath] window-scan kernel [{kernel}]: scalar/AoS {scalar_ns:.3} ns/fp, \
             batched/SoA {batched_ns:.3} ns/fp ({speedup:.2}x, {} fingerprints x {} queries \
             x {reps} reps)",
            column.len(),
            queries.len()
        );
        per_kernel.push(format!(
            "{{\"kernel\": \"{}\", \"ns_per_fingerprint\": {}, \"speedup_vs_scalar_aos\": {}}}",
            kernel.name(),
            firehose_bench::json_num(batched_ns),
            firehose_bench::json_num(speedup)
        ));
    }

    let active = active_kernel().name();
    format!(
        "{{\"scalar_aos_ns_per_fingerprint\": {}, \"active\": \"{active}\", \
         \"batched\": [{}], \"column_len\": {}, \"queries\": {}, \"matches\": {}}}",
        firehose_bench::json_num(scalar_ns),
        per_kernel.join(", "),
        column.len(),
        queries.len(),
        matches_scalar
    )
}
