//! Recovery bench: checkpoint cost, restore latency, decisions preserved
//! (`BENCH_recovery.json`).
//!
//! Three measurements per engine over a generated stream:
//!
//! 1. **Checkpoint overhead** — whole-stream throughput with auto
//!    checkpointing at the default cadence versus an unchecked baseline.
//!    The acceptance bar is ≤ 5% overhead.
//! 2. **Checkpoint write cost** — wall-clock per full atomic checkpoint
//!    (serialize + CRC + fsync + rename) at end-of-stream state, and its
//!    size in bytes.
//! 3. **Crash + restore** — run ~65% of the stream with a tight checkpoint
//!    cadence, drop the engine ("kill -9"), `restore_latest_valid`, replay
//!    from the manifest's cursor, and **assert byte-identical decisions** on
//!    the remaining stream versus the uninterrupted baseline. Restore
//!    latency is reported.
//!
//! A fourth pass covers the sharded runtime: `Sh_*` at 1/2/4 shards runs a
//! prefix of the stream with tight multi-checkpointing, crashes, restores
//! via `restore_latest_valid_multi` into a fresh strategy, replays the
//! tail, and asserts the decisions match an uninterrupted `S_*` run —
//! reporting multi-checkpoint write and restore latency per shard count.
//!
//! Flags: `--smoke` (tiny workload, CI), `--posts <n>`, `--out <path>`
//! (default `BENCH_recovery.json`).

use std::sync::Arc;
use std::time::Instant;

use firehose_bench::{flag_value, stream_rate, BenchSummary, EngineRow};
use firehose_core::checkpoint::{
    checkpoint_multi_to_vec, restore_latest_valid, restore_latest_valid_multi,
    run_with_checkpoints, CheckpointManager, CheckpointPolicy,
};
use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::multi::{MultiDiversifier, ShardedMulti, SharedMulti, Subscriptions};
use firehose_core::{Decision, EngineConfig, Thresholds};
use firehose_datagen::{
    generate_subscriptions, SocialGenConfig, SubscriptionGenConfig, SyntheticSocialGraph, Workload,
    WorkloadConfig,
};
use firehose_graph::build_similarity_graph_parallel;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fh-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let target_posts: usize = flag_value(&args, "--posts")
        .map(|v| v.parse().expect("--posts expects a count"))
        .unwrap_or(if smoke { 4_000 } else { 100_000 });

    let social_config = if smoke {
        SocialGenConfig::test_scale()
    } else {
        SocialGenConfig::bench_scale()
    };
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: target_posts as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        },
    );
    eprintln!(
        "[recovery] workload: {} posts from {} authors",
        workload.len(),
        social.author_count()
    );
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let graph = Arc::new(build_similarity_graph_parallel(&social.graph, 0.7, threads));
    let config = EngineConfig::builder(Thresholds::paper_defaults())
        .expected_rate(stream_rate(&workload.posts))
        .build();
    let posts = &workload.posts;

    let mut summary = BenchSummary::new(
        "recovery",
        if smoke { "smoke" } else { "bench" },
        posts.len() as u64,
    );

    let reps = if smoke { 5 } else { 3 };
    for kind in AlgorithmKind::ALL {
        // Passes 1+2 — unchecked baseline vs auto-checkpointing at the
        // default cadence, interleaved (baseline, checkpointed, baseline, …)
        // and best-of-N each, so scheduler/thermal drift hits both sides
        // equally instead of masquerading as checkpoint overhead.
        let dir = tempdir(&format!("overhead-{kind}"));
        let mut reference: Vec<Decision> = Vec::new();
        let mut baseline_s = f64::INFINITY;
        let mut ckpt_s = f64::INFINITY;
        let mut generations_written = 0;
        let mut engine = build_engine(kind, config, Arc::clone(&graph));
        for rep in 0..reps {
            let mut baseline = build_engine(kind, config, Arc::clone(&graph));
            let t0 = Instant::now();
            reference = posts.iter().map(|p| baseline.offer(p)).collect();
            baseline_s = baseline_s.min(t0.elapsed().as_secs_f64());

            let mut mgr = CheckpointManager::new(&dir, CheckpointPolicy::default())
                .expect("open checkpoint dir");
            if rep > 0 {
                engine = build_engine(kind, config, Arc::clone(&graph));
            }
            let t0 = Instant::now();
            let decisions =
                run_with_checkpoints(&mut engine, posts, &mut mgr).expect("checkpointed run");
            ckpt_s = ckpt_s.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                decisions, reference,
                "{kind}: checkpointing changed decisions"
            );
            generations_written = mgr.next_generation();
        }
        let baseline_ops = posts.len() as f64 / baseline_s.max(1e-9);
        let ckpt_ops = posts.len() as f64 / ckpt_s.max(1e-9);
        let overhead_pct = (baseline_s / ckpt_s.max(1e-9))
            .mul_add(-100.0, 100.0)
            .max(0.0);

        // Pass 3 — explicit checkpoint write cost at end-of-stream state.
        let bytes = firehose_core::checkpoint::checkpoint_engine_to_vec(&engine, 0)
            .expect("serialize checkpoint");
        let mut mgr =
            CheckpointManager::new(&dir, CheckpointPolicy::default()).expect("open checkpoint dir");
        let write_reps = if smoke { 3 } else { 10 };
        let t0 = Instant::now();
        for _ in 0..write_reps {
            mgr.save(&engine).expect("checkpoint save");
        }
        let write_ms = t0.elapsed().as_secs_f64() * 1_000.0 / write_reps as f64;
        let _ = std::fs::remove_dir_all(&dir);

        // Pass 4 — crash at ~65%, restore the latest valid generation, and
        // replay the tail from the manifest's cursor.
        let dir = tempdir(&format!("crash-{kind}"));
        let tight = CheckpointPolicy {
            every_offers: (posts.len() as u64 / 20).max(1),
            every_millis: None,
            keep: 3,
        };
        let mut mgr = CheckpointManager::new(&dir, tight).expect("open checkpoint dir");
        let crash_at = posts.len() * 13 / 20;
        let mut doomed = build_engine(kind, config, Arc::clone(&graph));
        run_with_checkpoints(&mut doomed, &posts[..crash_at], &mut mgr).expect("run to crash");
        drop(doomed); // the crash: all in-memory state is gone

        let t0 = Instant::now();
        let restored = restore_latest_valid(&dir, kind, Arc::clone(&graph), None).expect("restore");
        let restore_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let resumed_at = restored.manifest.posts_processed as usize;
        assert!(resumed_at <= crash_at, "cursor beyond the crash point");
        let mut engine = restored.engine;
        let replayed: Vec<Decision> = posts[resumed_at..]
            .iter()
            .map(|p| engine.offer(p))
            .collect();
        let preserved = replayed == reference[resumed_at..];
        assert!(
            preserved,
            "{kind}: decisions diverged after restore (resumed at {resumed_at})"
        );
        let _ = std::fs::remove_dir_all(&dir);

        eprintln!(
            "[recovery] {kind}: baseline {baseline_ops:.0} offers/s, checkpointed {ckpt_ops:.0} \
             offers/s ({overhead_pct:.2}% overhead, {generations_written} gens), write \
             {write_ms:.2} ms ({} bytes), restore {restore_ms:.2} ms, resumed at \
             {resumed_at}/{} — decisions preserved",
            bytes.len(),
            posts.len()
        );
        summary.push_engine(
            EngineRow::new(&kind.to_string(), ckpt_ops, 0, 0)
                .with_f64("baseline_offers_per_sec", baseline_ops)
                .with_f64("checkpoint_overhead_pct", overhead_pct)
                .with_u64("generations_written", generations_written)
                .with_u64("checkpoint_bytes", bytes.len() as u64)
                .with_f64("checkpoint_write_ms", write_ms)
                .with_f64("restore_ms", restore_ms)
                .with_u64("resumed_at", resumed_at as u64)
                .with_u64("decisions_preserved", u64::from(preserved)),
        );
    }

    // Pass 5 — the sharded runtime. `Sh_*` at 1/2/4 shards runs ~65% of a
    // stream prefix with periodic multi-checkpoints plus one explicit save
    // at the crash point, is dropped, restored into a fresh strategy via
    // `restore_latest_valid_multi`, and replays the tail — decisions must
    // match an uninterrupted `S_*` run of the same prefix.
    let users = if smoke { 40 } else { 400 };
    let multi_posts = posts.len().min(if smoke { 1_500 } else { 10_000 });
    let sets = generate_subscriptions(
        social.author_count(),
        users,
        SubscriptionGenConfig::default(),
    );
    let subscriptions = Subscriptions::new(social.author_count(), sets).unwrap();
    let stream = &posts[..multi_posts];
    let kind = AlgorithmKind::CliqueBin;
    let mut shared = SharedMulti::builder(kind, config, &graph, subscriptions.clone())
        .build()
        .expect("build S_* reference");
    let multi_reference: Vec<_> = stream.iter().map(|p| shared.offer(p)).collect();
    drop(shared);

    for shards in [1usize, 2, 4] {
        let dir = tempdir(&format!("multi-{shards}"));
        let tight = CheckpointPolicy {
            every_offers: (multi_posts as u64 / 20).max(1),
            every_millis: None,
            keep: 3,
        };
        let mut mgr = CheckpointManager::new(&dir, tight).expect("open checkpoint dir");
        let crash_at = multi_posts * 13 / 20;
        let mut doomed = ShardedMulti::new(kind, config, &graph, subscriptions.clone(), shards)
            .expect("build Sh_*");
        let t0 = Instant::now();
        for post in &stream[..crash_at] {
            doomed.offer(post);
            mgr.maybe_save_multi(&doomed).expect("periodic checkpoint");
        }
        let run_ops = crash_at as f64 / t0.elapsed().as_secs_f64().max(1e-9);

        let bytes = checkpoint_multi_to_vec(&doomed, 0).expect("serialize multi checkpoint");
        let write_reps = if smoke { 3 } else { 10 };
        let t0 = Instant::now();
        for _ in 0..write_reps {
            mgr.save_multi(&doomed).expect("multi checkpoint save");
        }
        let write_ms = t0.elapsed().as_secs_f64() * 1_000.0 / write_reps as f64;
        drop(doomed); // the crash: workers, rings and engines are all gone

        let mut fresh = ShardedMulti::new(kind, config, &graph, subscriptions.clone(), shards)
            .expect("rebuild Sh_*");
        let t0 = Instant::now();
        let (manifest, skipped_gens) =
            restore_latest_valid_multi(&dir, &mut fresh).expect("restore multi");
        let restore_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        assert!(
            skipped_gens.is_empty(),
            "sharded:{shards}: restore skipped generations {skipped_gens:?}"
        );
        // The newest generation is the explicit save at the crash point, so
        // the tail replays from exactly `crash_at`.
        let replayed: Vec<_> = stream[crash_at..].iter().map(|p| fresh.offer(p)).collect();
        let preserved = replayed == multi_reference[crash_at..];
        assert!(
            preserved,
            "sharded:{shards}: decisions diverged after restore (generation {})",
            manifest.generation
        );
        let _ = std::fs::remove_dir_all(&dir);

        eprintln!(
            "[recovery] sharded:{shards}: {run_ops:.0} offers/s, write {write_ms:.2} ms \
             ({} bytes), restore {restore_ms:.2} ms, replayed {} posts — decisions preserved",
            bytes.len(),
            multi_posts - crash_at
        );
        summary.push_engine(
            EngineRow::new(&format!("sharded:{shards}"), run_ops, 0, 0)
                .with_u64("shards", shards as u64)
                .with_u64("users", users as u64)
                .with_u64("posts_run", multi_posts as u64)
                .with_u64("checkpoint_bytes", bytes.len() as u64)
                .with_f64("checkpoint_write_ms", write_ms)
                .with_f64("restore_ms", restore_ms)
                .with_u64("resumed_at", crash_at as u64)
                .with_u64("decisions_preserved", u64::from(preserved)),
        );
    }

    let path = std::path::Path::new(&out);
    summary.write(path).expect("write summary");
    // Self-check so --smoke in CI fails loudly on malformed output.
    let written = std::fs::read_to_string(path).expect("read summary back");
    assert!(
        written.starts_with('{') && written.trim_end().ends_with('}'),
        "summary is not a JSON object"
    );
    assert!(
        written.contains("\"decisions_preserved\": 1"),
        "decision preservation missing from summary"
    );
    println!("{written}");
}
