//! Table 3: the qualitative RAM / comparisons / insertions profile of the
//! three algorithms.
//!
//! | | UniBin | NeighborBin | CliqueBin |
//! |---|---|---|---|
//! | RAM | Low | High | Moderate |
//! | Comparisons | High | Low | Moderate |
//! | Insertions | Low | High | Moderate |
//!
//! The binary measures all three at the default setting and *checks* the
//! orderings, printing PASS/FAIL per row.

use firehose_bench::{Dataset, Report, Scale};
use firehose_core::engine::AlgorithmKind;
use firehose_core::Thresholds;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);
    let stats = firehose_bench::run_all(Thresholds::paper_defaults(), &graph, &data.workload.posts);

    let get = |kind: AlgorithmKind| {
        stats
            .iter()
            .find(|s| s.kind == kind)
            .expect("all kinds ran")
    };
    let (uni, nb, cb) = (
        get(AlgorithmKind::UniBin),
        get(AlgorithmKind::NeighborBin),
        get(AlgorithmKind::CliqueBin),
    );

    let mut r = Report::new(
        "table3_algorithm_profile",
        &[
            "metric",
            "UniBin",
            "NeighborBin",
            "CliqueBin",
            "expected_order",
            "verdict",
        ],
    );
    let mut check = |name: &str, u: u64, n: u64, c: u64, order: &str, ok: bool| {
        r.row(&[
            name.into(),
            u.to_string(),
            n.to_string(),
            c.to_string(),
            order.into(),
            if ok { "PASS" } else { "FAIL" }.into(),
        ]);
    };

    check(
        "peak RAM (records)",
        uni.metrics.peak_copies,
        nb.metrics.peak_copies,
        cb.metrics.peak_copies,
        "Uni < Clique < Neighbor",
        uni.metrics.peak_copies < cb.metrics.peak_copies
            && cb.metrics.peak_copies < nb.metrics.peak_copies,
    );
    check(
        "comparisons",
        uni.metrics.comparisons,
        nb.metrics.comparisons,
        cb.metrics.comparisons,
        "Neighbor < Clique < Uni",
        nb.metrics.comparisons < cb.metrics.comparisons
            && cb.metrics.comparisons < uni.metrics.comparisons,
    );
    check(
        "insertions",
        uni.metrics.insertions,
        nb.metrics.insertions,
        cb.metrics.insertions,
        "Uni < Clique < Neighbor",
        uni.metrics.insertions < cb.metrics.insertions
            && cb.metrics.insertions < nb.metrics.insertions,
    );
    r.finish();
}
