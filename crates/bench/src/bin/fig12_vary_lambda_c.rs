//! Figure 12: performance across content diversity thresholds `λc`.
//!
//! Paper shape (`λt = 30 min`, `λa = 0.7`): varying `λc` from 9 to 18 only
//! *slightly* affects all three algorithms — SimHash already detects most
//! near-duplicates at distance 9, so the emit ratio (and hence all costs)
//! barely moves.

use firehose_bench::{sweep_rows, Dataset, Report, Scale, SWEEP_HEADER};
use firehose_core::Thresholds;
use firehose_stream::minutes;

fn main() {
    let data = Dataset::generate(Scale::from_env());
    let graph = data.similarity_graph(0.7);

    let mut r = Report::new("fig12_vary_lambda_c", &SWEEP_HEADER);
    for lc in [9u32, 12, 15, 18] {
        eprintln!("[fig12] λc = {lc}");
        let thresholds = Thresholds::new(lc, minutes(30), 0.7).expect("valid");
        let stats = firehose_bench::run_all(thresholds, &graph, &data.workload.posts);
        sweep_rows(&mut r, &lc.to_string(), &stats);
    }
    r.finish();
}
