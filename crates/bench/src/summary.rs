//! Machine-readable benchmark summaries (`BENCH_hotpath.json` schema).
//!
//! Every perf-tracking binary emits the same JSON shape so the recorded
//! trajectory is diffable across PRs and binaries:
//!
//! ```json
//! {
//!   "bench": "hotpath_throughput",
//!   "scale": "bench",
//!   "posts": 100000,
//!   "engines": [
//!     {"name": "UniBin", "offers_per_sec": 1.2e6, "p50_ns": 512, "p99_ns": 4096,
//!      "comparisons": 123, ...}
//!   ],
//!   "kernel": {...}        // bench-specific extras, one key per object
//! }
//! ```
//!
//! `engines` always carries `name` / `offers_per_sec` / `p50_ns` / `p99_ns`;
//! rows and the top level can append bench-specific numeric fields. The
//! writer is hand-rolled (the workspace is dependency-free by policy) and
//! kept total: non-finite floats serialize as `0`, strings are escaped.

use std::io;
use std::path::Path;

/// One engine (or labelled engine run) in a [`BenchSummary`].
pub struct EngineRow {
    name: String,
    offers_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
    extra: Vec<(String, String)>,
}

impl EngineRow {
    /// A row with the three mandatory measurements.
    pub fn new(name: &str, offers_per_sec: f64, p50_ns: u64, p99_ns: u64) -> Self {
        Self {
            name: name.to_string(),
            offers_per_sec,
            p50_ns,
            p99_ns,
            extra: Vec::new(),
        }
    }

    /// Append a bench-specific integer field.
    pub fn with_u64(mut self, key: &str, value: u64) -> Self {
        self.extra.push((key.to_string(), value.to_string()));
        self
    }

    /// Append a bench-specific float field.
    pub fn with_f64(mut self, key: &str, value: f64) -> Self {
        self.extra.push((key.to_string(), json_num(value)));
        self
    }
}

/// Builder for one benchmark's JSON summary file.
pub struct BenchSummary {
    bench: String,
    scale: String,
    posts: u64,
    engines: Vec<EngineRow>,
    extra: Vec<(String, String)>,
}

impl BenchSummary {
    /// New summary for benchmark `bench` run at `scale` over `posts` posts.
    pub fn new(bench: &str, scale: &str, posts: u64) -> Self {
        Self {
            bench: bench.to_string(),
            scale: scale.to_string(),
            posts,
            engines: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Append one engine row.
    pub fn push_engine(&mut self, row: EngineRow) {
        self.engines.push(row);
    }

    /// Append a bench-specific top-level field holding pre-rendered JSON
    /// (an object, array, or number — the caller guarantees validity).
    pub fn push_raw(&mut self, key: &str, raw_json: String) {
        self.extra.push((key.to_string(), raw_json));
    }

    /// Render the summary as a JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_str(&self.bench)));
        out.push_str(&format!("  \"scale\": {},\n", json_str(&self.scale)));
        out.push_str(&format!("  \"posts\": {},\n", self.posts));
        out.push_str("  \"engines\": [");
        for (i, e) in self.engines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&e.name)));
            out.push_str(&format!(
                "\"offers_per_sec\": {}, ",
                json_num(e.offers_per_sec)
            ));
            out.push_str(&format!("\"p50_ns\": {}, ", e.p50_ns));
            out.push_str(&format!("\"p99_ns\": {}", e.p99_ns));
            for (k, v) in &e.extra {
                out.push_str(&format!(", {}: {}", json_str(k), v));
            }
            out.push('}');
        }
        if !self.engines.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
        for (k, v) in &self.extra {
            out.push_str(&format!(",\n  {}: {}", json_str(k), v));
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the summary to `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())?;
        eprintln!("[summary] wrote {}", path.display());
        Ok(())
    }
}

/// JSON string literal with escaping for quotes, backslashes and controls.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number from an `f64`; non-finite values (which JSON cannot carry)
/// serialize as `0`.
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Value of `--<flag> <value>` / `--<flag>=<value>` in `args`, if present.
/// A flag with no trailing value reads as absent.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn renders_schema_fields() {
        let mut s = BenchSummary::new("hotpath_throughput", "test", 42);
        s.push_engine(
            EngineRow::new("UniBin", 1_000_000.5, 512, 4_096)
                .with_u64("comparisons", 7)
                .with_f64("speedup", 2.5),
        );
        s.push_raw("kernel", "{\"scalar_ns\": 1.5}".to_string());
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"hotpath_throughput\""), "{json}");
        assert!(json.contains("\"posts\": 42"), "{json}");
        assert!(json.contains("\"offers_per_sec\": 1000000.5"), "{json}");
        assert!(json.contains("\"comparisons\": 7"), "{json}");
        assert!(json.contains("\"kernel\": {\"scalar_ns\": 1.5}"), "{json}");
        assert_balanced(&json);
    }

    #[test]
    fn empty_engine_list_is_valid() {
        let json = BenchSummary::new("x", "test", 0).to_json();
        assert!(json.contains("\"engines\": []"), "{json}");
        assert_balanced(&json);
    }

    #[test]
    fn strings_are_escaped_and_floats_total() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
        assert_eq!(json_num(2.5), "2.5");
    }

    #[test]
    fn flag_value_both_forms() {
        let a = argv(&["bin", "--json", "/tmp/x.json"]);
        assert_eq!(flag_value(&a, "--json").as_deref(), Some("/tmp/x.json"));
        let a = argv(&["bin", "--json=/tmp/y.json"]);
        assert_eq!(flag_value(&a, "--json").as_deref(), Some("/tmp/y.json"));
        assert_eq!(flag_value(&argv(&["bin"]), "--json"), None);
        assert_eq!(flag_value(&argv(&["bin", "--json"]), "--json"), None);
    }

    /// Cheap structural validity check: balanced braces/brackets outside
    /// strings, and no trailing comma before a closer.
    fn assert_balanced(json: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        let mut prev_significant = ' ';
        for c in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev_significant, ',', "trailing comma in {json}");
                    depth -= 1;
                }
                _ => {}
            }
            if !c.is_whitespace() {
                prev_significant = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced: {json}");
        assert!(!in_str, "unterminated string: {json}");
    }
}
