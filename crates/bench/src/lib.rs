//! Shared experiment-harness plumbing.
//!
//! Every `src/bin/figNN_*` / `src/bin/tableN_*` binary regenerates one table
//! or figure of the paper (see `DESIGN.md` §4 for the index). They share:
//!
//! * [`Scale`] — experiment sizing, selected with the `FIREHOSE_SCALE`
//!   environment variable (`test` / `bench` (default) / `paper`);
//! * [`Dataset`] — the synthetic social graph + one-day workload, generated
//!   once per process;
//! * [`run_spsd`] — run one single-user engine over a stream, timed, with
//!   the four reported quantities (time / RAM / comparisons / insertions);
//! * [`Report`] — aligned stdout tables plus CSV files under `results/`;
//! * [`BenchSummary`] — the machine-readable `BENCH_*.json` schema shared by
//!   `hotpath_throughput` and the `--json` flag of `latency_profile` /
//!   `stress_events`.

mod metrics_sink;
mod summary;

pub use metrics_sink::MetricsSink;
pub use summary::{flag_value, json_num, json_str, BenchSummary, EngineRow};

use std::sync::Arc;
use std::time::Instant;

use firehose_core::engine::{build_engine, AlgorithmKind};
use firehose_core::{EngineConfig, EngineMetrics, Thresholds};
use firehose_datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose_graph::{build_similarity_graph_parallel, UndirectedGraph};
use firehose_stream::Post;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny — smoke-testing the harness itself (CI).
    Test,
    /// Default — ≈1/5 of the paper's author count, minutes per figure.
    Bench,
    /// Full paper scale — 20,150 authors, 213k posts.
    Paper,
}

impl Scale {
    /// Read `FIREHOSE_SCALE` (default [`Scale::Bench`]).
    pub fn from_env() -> Self {
        match std::env::var("FIREHOSE_SCALE").as_deref() {
            Ok("test") => Scale::Test,
            Ok("paper") => Scale::Paper,
            Ok("bench") | Err(_) => Scale::Bench,
            Ok(other) => {
                eprintln!("unknown FIREHOSE_SCALE={other:?}, using bench");
                Scale::Bench
            }
        }
    }

    /// The social-graph generator configuration for this scale.
    pub fn social_config(self) -> SocialGenConfig {
        match self {
            Scale::Test => SocialGenConfig::test_scale(),
            Scale::Bench => SocialGenConfig::bench_scale(),
            Scale::Paper => SocialGenConfig::paper_scale(),
        }
    }

    /// The workload configuration for this scale (the paper's one-day,
    /// ~10.6 posts/author/day stream; `Test` shrinks the day to 2 hours).
    pub fn workload_config(self) -> WorkloadConfig {
        match self {
            Scale::Test => WorkloadConfig {
                duration: firehose_stream::hours(2),
                ..WorkloadConfig::default()
            },
            _ => WorkloadConfig::default(),
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scale::Test => "test",
            Scale::Bench => "bench",
            Scale::Paper => "paper",
        })
    }
}

/// A fully generated experiment input: authors, follower graph, one-day
/// stream.
pub struct Dataset {
    /// The sizing used.
    pub scale: Scale,
    /// The synthetic follower graph with community structure.
    pub social: SyntheticSocialGraph,
    /// The one-day post stream.
    pub workload: Workload,
}

impl Dataset {
    /// Generate the dataset for `scale`, logging progress to stderr.
    pub fn generate(scale: Scale) -> Self {
        let t0 = Instant::now();
        let social = SyntheticSocialGraph::generate(scale.social_config());
        eprintln!(
            "[dataset] social graph: {} authors, {} follows ({:.1?})",
            social.author_count(),
            social.graph.edge_count(),
            t0.elapsed()
        );
        let t1 = Instant::now();
        let workload = Workload::generate(&social, scale.workload_config());
        eprintln!(
            "[dataset] workload: {} posts, {:.1}% generated as near-duplicates ({:.1?})",
            workload.len(),
            workload.duplicate_fraction() * 100.0,
            t1.elapsed()
        );
        Self {
            scale,
            social,
            workload,
        }
    }

    /// Generate for the environment-selected scale.
    pub fn from_env() -> Self {
        Self::generate(Scale::from_env())
    }

    /// Build (and log) the author similarity graph at `lambda_a`.
    pub fn similarity_graph(&self, lambda_a: f64) -> Arc<UndirectedGraph> {
        let t0 = Instant::now();
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
        let g = build_similarity_graph_parallel(&self.social.graph, lambda_a, threads);
        eprintln!(
            "[dataset] similarity graph λa={lambda_a}: {} edges, avg degree {:.1} ({:.1?})",
            g.edge_count(),
            g.average_degree(),
            t0.elapsed()
        );
        Arc::new(g)
    }
}

/// One engine run over one stream: the four quantities of Figures 11–16.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Which engine ran.
    pub kind: AlgorithmKind,
    /// Wall-clock ingest time for the whole stream.
    pub elapsed_ms: f64,
    /// Counters (comparisons, insertions, peak RAM, emitted).
    pub metrics: EngineMetrics,
}

impl RunStats {
    /// Peak RAM in MiB (record payload).
    pub fn peak_ram_mib(&self) -> f64 {
        self.metrics.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Mean stream rate of `posts` in posts/second (0 when the stream spans no
/// time), used as the engines' bin-presizing hint.
pub fn stream_rate(posts: &[Post]) -> f64 {
    let (first, last) = match (posts.first(), posts.last()) {
        (Some(f), Some(l)) if l.timestamp > f.timestamp => (f.timestamp, l.timestamp),
        _ => return 0.0,
    };
    posts.len() as f64 / ((last - first) as f64 / 1_000.0)
}

/// Run a fresh engine of `kind` over `posts` under `thresholds`.
pub fn run_spsd(
    kind: AlgorithmKind,
    thresholds: Thresholds,
    graph: Arc<UndirectedGraph>,
    posts: &[Post],
) -> RunStats {
    let config = EngineConfig::builder(thresholds)
        .expected_rate(stream_rate(posts))
        .build();
    let mut engine = build_engine(kind, config, graph);
    let t0 = Instant::now();
    for post in posts {
        engine.offer(post);
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    RunStats {
        kind,
        elapsed_ms,
        metrics: *engine.metrics(),
    }
}

/// Run all three algorithms over the same stream (fresh engines each).
pub fn run_all(
    thresholds: Thresholds,
    graph: &Arc<UndirectedGraph>,
    posts: &[Post],
) -> Vec<RunStats> {
    AlgorithmKind::ALL
        .into_iter()
        .map(|kind| {
            let stats = run_spsd(kind, thresholds, Arc::clone(graph), posts);
            eprintln!(
                "[run] {kind}: {:.0} ms, peak {:.1} MiB, {} comparisons, {} insertions, emitted {}/{}",
                stats.elapsed_ms,
                stats.peak_ram_mib(),
                stats.metrics.comparisons,
                stats.metrics.insertions,
                stats.metrics.posts_emitted,
                stats.metrics.posts_processed,
            );
            stats
        })
        .collect()
}

/// The standard header of the Figure 11–15 sweep tables.
pub const SWEEP_HEADER: [&str; 6] = [
    "setting",
    "algorithm",
    "time_ms",
    "peak_ram_mib",
    "comparisons",
    "insertions",
];

/// Append one sweep row per algorithm run.
pub fn sweep_rows(report: &mut Report, setting: &str, stats: &[RunStats]) {
    for s in stats {
        report.row(&[
            setting.to_string(),
            s.kind.to_string(),
            f1(s.elapsed_ms),
            format!("{:.2}", s.peak_ram_mib()),
            s.metrics.comparisons.to_string(),
            s.metrics.insertions.to_string(),
        ]);
    }
}

/// Aligned-table + CSV reporting.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// New report named after the experiment (used for the CSV filename).
    pub fn new(name: &str, header: &[&str]) -> Self {
        Self {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Print the aligned table to stdout and write `results/<name>.csv`.
    pub fn finish(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
        };
        println!("== {} ==", self.name);
        print_row(&self.header);
        for row in &self.rows {
            print_row(row);
        }

        if let Err(e) = self.write_csv() {
            eprintln!("[report] could not write CSV: {e}");
        }
    }

    fn write_csv(&self) -> std::io::Result<()> {
        use std::io::Write;
        std::fs::create_dir_all("results")?;
        let path = format!("results/{}.csv", self.name);
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()?;
        eprintln!("[report] wrote {path}");
        Ok(())
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_defaults_to_bench() {
        // Note: from_env reads the live environment; only check the default
        // when the variable is absent.
        if std::env::var("FIREHOSE_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Bench);
        }
    }

    #[test]
    fn scale_configs_are_ordered() {
        assert!(Scale::Test.social_config().authors < Scale::Bench.social_config().authors);
        assert!(Scale::Bench.social_config().authors < Scale::Paper.social_config().authors);
    }

    #[test]
    fn stream_rate_is_posts_per_second() {
        let posts: Vec<Post> = (0..11u64)
            .map(|i| Post::new(i, 0, i * 100, "x".into()))
            .collect();
        // 11 posts over 1 s of stream time.
        assert!((stream_rate(&posts) - 11.0).abs() < 1e-9);
        assert_eq!(stream_rate(&[]), 0.0);
        assert_eq!(stream_rate(&posts[..1]), 0.0);
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("unit_test_report", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn report_rejects_bad_row() {
        let mut r = Report::new("x", &["a"]);
        r.row(&["1".into(), "2".into()]);
    }
}
