//! `--metrics-out` support for the experiment binaries.
//!
//! A [`MetricsSink`] parses the shared CLI flags, owns a
//! [`firehose_obs::Registry`], and dumps snapshots of it during a run:
//!
//! * `--metrics-out <dir>` — enable dumping; snapshots land in `<dir>`.
//! * `--metrics-every <posts>` — additionally dump every N processed posts
//!   (default: final snapshot only).
//!
//! Each dump writes two sibling files named `<run>.prom` (Prometheus text
//! exposition, overwritten per dump so the file always holds the latest
//! scrape state — point a file-based scraper at it) and `<run>.json` (a JSON
//! array of all snapshots taken so far, each tagged with its post count —
//! the run's history, rewritten atomically-enough per dump).

use std::path::PathBuf;

use firehose_obs::Registry;

/// Destination and cadence for registry snapshots.
pub struct MetricsSink {
    dir: PathBuf,
    run: String,
    every: Option<u64>,
    registry: Registry,
    history: Vec<String>,
    last_dump_at: u64,
}

impl MetricsSink {
    /// Parse `--metrics-out` / `--metrics-every` from the process arguments.
    /// Returns `None` when `--metrics-out` is absent. `run` names the output
    /// files (one sink per engine run keeps streams separable).
    pub fn from_args(run: &str) -> Option<Self> {
        let args: Vec<String> = std::env::args().collect();
        Self::from_argv(run, &args)
    }

    fn from_argv(run: &str, args: &[String]) -> Option<Self> {
        let dir = flag_value(args, "--metrics-out")?;
        let every = flag_value(args, "--metrics-every").map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                usage(&format!("--metrics-every expects a post count, got {v:?}"))
            })
        });
        Some(Self {
            dir: PathBuf::from(dir),
            run: run.to_string(),
            every,
            registry: Registry::new(),
            history: Vec::new(),
            last_dump_at: 0,
        })
    }

    /// The registry to attach engines to.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Dump if the configured interval elapsed since the last dump.
    /// `processed` is the number of posts offered so far.
    pub fn tick(&mut self, processed: u64) {
        if let Some(every) = self.every {
            if processed.saturating_sub(self.last_dump_at) >= every {
                self.dump(processed);
            }
        }
    }

    /// Unconditional final dump.
    pub fn finish(&mut self, processed: u64) {
        self.dump(processed);
        eprintln!(
            "[metrics] {} snapshot(s) -> {}/{}.{{prom,json}}",
            self.history.len(),
            self.dir.display(),
            self.run
        );
    }

    fn dump(&mut self, processed: u64) {
        self.last_dump_at = processed;
        self.history.push(format!(
            "{{\"posts_processed\": {processed}, \"snapshot\": {}}}",
            self.registry.render_json().trim_end()
        ));
        if let Err(e) = self.write_files() {
            eprintln!("[metrics] could not write snapshot: {e}");
        }
    }

    fn write_files(&self) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let prom = self.dir.join(format!("{}.prom", self.run));
        std::fs::write(prom, self.registry.render_prometheus())?;

        let json = self.dir.join(format!("{}.json", self.run));
        std::fs::write(json, format!("[\n{}\n]\n", self.history.join(",\n")))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(
                it.next()
                    .unwrap_or_else(|| usage(&format!("{flag} expects a value")))
                    .clone(),
            );
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

/// Bad CLI usage: print the problem and exit — a backtrace helps nobody here.
/// Diverges under test (where `std::process::exit` would swallow the failure).
fn usage(msg: &str) -> ! {
    if cfg!(test) {
        panic!("{msg}");
    }
    eprintln!("error: {msg}\nusage: --metrics-out <dir> [--metrics-every <posts>]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing_supports_both_forms() {
        let a = argv(&["bin", "--metrics-out", "/tmp/m"]);
        assert_eq!(flag_value(&a, "--metrics-out").as_deref(), Some("/tmp/m"));
        let a = argv(&["bin", "--metrics-out=/tmp/m2"]);
        assert_eq!(flag_value(&a, "--metrics-out").as_deref(), Some("/tmp/m2"));
        let a = argv(&["bin"]);
        assert_eq!(flag_value(&a, "--metrics-out"), None);
    }

    #[test]
    #[should_panic(expected = "--metrics-every expects a post count")]
    fn garbage_interval_is_rejected() {
        MetricsSink::from_argv(
            "x",
            &argv(&["bin", "--metrics-out", "/tmp/m", "--metrics-every", "abc"]),
        );
    }

    #[test]
    #[should_panic(expected = "--metrics-out expects a value")]
    fn dangling_flag_is_rejected() {
        MetricsSink::from_argv("x", &argv(&["bin", "--metrics-out"]));
    }

    #[test]
    fn absent_flag_disables_sink() {
        assert!(MetricsSink::from_argv("x", &argv(&["bin", "--other"])).is_none());
    }

    #[test]
    fn sink_writes_prom_and_json_history() {
        let dir = std::env::temp_dir().join(format!("firehose-metrics-{}", std::process::id()));
        let args = argv(&[
            "bin",
            "--metrics-out",
            dir.to_str().unwrap(),
            "--metrics-every",
            "10",
        ]);
        let mut sink = MetricsSink::from_argv("unit", &args).unwrap();
        let c = sink
            .registry()
            .counter("unit_posts_total", "posts", Default::default());
        c.add(7);
        sink.tick(5); // below interval: no dump
        sink.tick(10); // dumps
        c.add(3);
        sink.finish(20); // dumps again

        let prom = std::fs::read_to_string(dir.join("unit.prom")).unwrap();
        assert!(prom.contains("# TYPE unit_posts_total counter"), "{prom}");
        assert!(prom.contains("unit_posts_total 10"), "latest state: {prom}");

        let json = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
        assert!(json.contains("\"posts_processed\": 10"), "{json}");
        assert!(json.contains("\"posts_processed\": 20"), "{json}");
        assert_eq!(
            json.matches("\"snapshot\"").count(),
            2,
            "one snapshot per dump"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
