//! The firehose network front end: one event loop, many connections.
//!
//! [`Server`] owns a non-blocking [`TcpListener`] and runs an epoll-style
//! readiness loop over non-blocking connection sockets: every socket is
//! polled for readable/writable progress each iteration, connection state
//! machines advance as bytes arrive, and the loop parks briefly only when a
//! full pass makes no progress. The [`FirehoseService`] lives *inside* the
//! loop thread — requests mutate it directly, so the wire path adds no
//! locking, no cross-thread handoff, and no decision divergence versus
//! calling the facade in process.
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Body / response |
//! |---|---|---|
//! | `/ingest` (alias `/ingest/batch`) | POST | corpus TSV post lines in; one `<post_id>\t<u1,u2,...|->` decision line out per admitted post |
//! | `/churn` | POST | [`ChurnOp`] text lines in; `ok[\t<detail>]` or `err\t<reason>` per line out |
//! | `/stream/<user>` | GET | chunked long-poll of `<seq>\t<id>\t<author>\t<ts>\t<text>` delivery lines; `?from=<seq>&max=<n>&wait_ms=<t>` |
//! | `/metrics` | GET | Prometheus text exposition (engine + guard + connection instruments) |
//! | `/healthz` | GET | JSON health document; `503` once the service is degraded |
//! | `/shutdown` | POST | stops the server (only with [`ServerConfig::allow_shutdown`]) |
//!
//! ## Backpressure
//!
//! Admission control composes three layers. The service's own overload
//! machinery ([`OverloadPolicy`](firehose_core::service::OverloadPolicy)
//! queue + per-author token buckets) decides per *post*; `Reject` surfaces
//! as HTTP 503 with `Retry-After`, shed and rate-limited posts are counted
//! in `/healthz` and `/metrics`. Per *connection*, the listener refuses
//! sockets beyond [`ServerConfig::max_connections`] with an immediate 503,
//! and request header/body caps bound memory per connection. Per *reader*,
//! each user's delivery ring holds the last [`ServerConfig::stream_buffer`]
//! emitted posts — a reader that cannot keep up loses the oldest deliveries
//! (counted, never blocking ingest), which is the same freshness-first
//! stance as [`OverloadPolicy::ShedOldest`](firehose_core::service::OverloadPolicy::ShedOldest).

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use firehose_core::service::{ChurnOp, FirehoseService, ServiceError};
use firehose_obs::{labels, Counter, Gauge, Registry};
use firehose_stream::{corpus, Post};

use crate::http::{
    parse_request, push_chunk, response_head, Method, ParseLimits, ParseOutcome, Request,
    TERMINAL_CHUNK,
};

// ---------------------------------------------------------------------
// Wire-format helpers (shared with tests and the load generator).
// ---------------------------------------------------------------------

/// The `/ingest` response line for one sink callback: the post id and the
/// ascending user ids it was delivered to (`-` when suppressed everywhere).
pub fn decision_line(post_id: u64, delivered_to: &[u32]) -> String {
    use std::fmt::Write as _;
    let mut line = format!("{post_id}\t");
    if delivered_to.is_empty() {
        line.push('-');
    } else {
        for (i, user) in delivered_to.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{user}");
        }
    }
    line.push('\n');
    line
}

/// One `/stream/<user>` delivery line: the per-user sequence number followed
/// by the corpus TSV form of the post.
pub fn delivery_line(seq: u64, post: &Post) -> Vec<u8> {
    let mut line = format!("{seq}\t").into_bytes();
    // write_posts to a Vec never fails.
    let _ = corpus::write_posts(std::slice::from_ref(post), &mut line);
    line
}

// ---------------------------------------------------------------------
// Errors and configuration.
// ---------------------------------------------------------------------

/// Server-fatal failures. Per-connection I/O problems are *not* here — a
/// misbehaving peer only ever loses its own connection.
#[derive(Debug)]
pub enum NetError {
    /// Binding or configuring the listener failed.
    Bind {
        /// The address that could not be bound.
        addr: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Bind { addr, source } => write!(f, "cannot listen on {addr}: {source}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections accepted; excess sockets get an immediate 503.
    pub max_connections: usize,
    /// Cap on one request body (`/ingest` batches bound ingest burst size).
    pub max_body_bytes: usize,
    /// Cap on one request's header section.
    pub max_header_bytes: usize,
    /// Per-user delivery ring: readers lagging more than this many emitted
    /// posts lose the oldest (counted in `firehose_net_deliveries_dropped`).
    pub stream_buffer: usize,
    /// Idle keep-alive connections are closed after this long.
    pub idle_timeout: Duration,
    /// Honor `POST /shutdown` (tests, benches, supervised deployments).
    pub allow_shutdown: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 1024,
            max_body_bytes: 4 * 1024 * 1024,
            max_header_bytes: 16 * 1024,
            stream_buffer: 1024,
            idle_timeout: Duration::from_secs(60),
            allow_shutdown: false,
        }
    }
}

/// Counters describing one completed [`Server::serve`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeReport {
    /// Connections accepted (including later-rejected ones).
    pub connections_accepted: u64,
    /// Connections refused by the `max_connections` cap.
    pub connections_rejected: u64,
    /// Requests handled.
    pub requests: u64,
    /// Posts admitted into the service via `/ingest`.
    pub posts_ingested: u64,
    /// Delivery lines written to `/stream` readers.
    pub deliveries_streamed: u64,
    /// Deliveries dropped from full per-user rings.
    pub deliveries_dropped: u64,
    /// Malformed requests answered with a 4xx/5xx protocol error.
    pub protocol_errors: u64,
}

/// Signals a running [`Server::serve`] loop to stop.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Ask the serve loop to exit; it flushes pending writes and returns.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// Connection instruments.
// ---------------------------------------------------------------------

/// Connection-level instruments, registered under `firehose_net_*`.
struct ServerObs {
    connections: Gauge,
    connections_total: Counter,
    connections_rejected: Counter,
    requests: Counter,
    protocol_errors: Counter,
    posts_ingested: Counter,
    deliveries_streamed: Counter,
    deliveries_dropped: Counter,
    streams_parked: Gauge,
}

impl ServerObs {
    fn register(registry: &Registry) -> Self {
        let l = labels(&[]);
        Self {
            connections: registry.gauge(
                "firehose_net_connections",
                "Connections currently open",
                l.clone(),
            ),
            connections_total: registry.counter(
                "firehose_net_connections_total",
                "Connections accepted since start",
                l.clone(),
            ),
            connections_rejected: registry.counter(
                "firehose_net_connections_rejected_total",
                "Connections refused by the max_connections cap",
                l.clone(),
            ),
            requests: registry.counter(
                "firehose_net_requests_total",
                "HTTP requests handled",
                l.clone(),
            ),
            protocol_errors: registry.counter(
                "firehose_net_protocol_errors_total",
                "Malformed requests answered with a protocol error",
                l.clone(),
            ),
            posts_ingested: registry.counter(
                "firehose_net_posts_ingested_total",
                "Posts admitted into the service over the wire",
                l.clone(),
            ),
            deliveries_streamed: registry.counter(
                "firehose_net_deliveries_streamed_total",
                "Delivery lines written to stream readers",
                l.clone(),
            ),
            deliveries_dropped: registry.counter(
                "firehose_net_deliveries_dropped_total",
                "Deliveries evicted from full per-user rings",
                l.clone(),
            ),
            streams_parked: registry.gauge(
                "firehose_net_streams_parked",
                "Long-poll stream requests currently parked",
                l,
            ),
        }
    }
}

// ---------------------------------------------------------------------
// Per-user delivery rings.
// ---------------------------------------------------------------------

/// Recent deliveries for one user: contiguous sequence numbers, bounded
/// length, shared formatted lines.
#[derive(Default)]
struct UserRing {
    /// Sequence number the *next* delivery will get.
    next_seq: u64,
    /// `(seq, corpus line)` pairs, seq strictly ascending and contiguous.
    items: VecDeque<(u64, Arc<Vec<u8>>)>,
}

// ---------------------------------------------------------------------
// Connection state machine.
// ---------------------------------------------------------------------

/// A parked or draining `/stream` long-poll.
struct StreamState {
    user: u32,
    next_seq: u64,
    remaining: usize,
    deadline: Instant,
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    streaming: Option<StreamState>,
    close_after_flush: bool,
    last_activity: Instant,
    dead: bool,
    /// Whether this connection incremented the open-connections gauge
    /// (over-capacity rejects never do).
    counted: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            streaming: None,
            close_after_flush: false,
            last_activity: Instant::now(),
            dead: false,
            counted: false,
        }
    }

    fn has_pending_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Flush as much pending output as the socket accepts. Returns whether
    /// any bytes moved.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.has_pending_write() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if !self.has_pending_write() {
            self.out.clear();
            self.out_pos = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        }
        progressed
    }

    /// Read whatever is available. Returns whether any bytes arrived.
    fn fill(&mut self) -> bool {
        let mut progressed = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed its write side; once our output drains
                    // there is nothing left to do with this socket.
                    if !self.has_pending_write() {
                        self.dead = true;
                    }
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        progressed
    }
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

/// A bound, not-yet-serving firehose front end. Bind first (so tests can
/// learn the ephemeral port), then [`serve`](Server::serve).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

/// Everything the request handlers mutate. Kept separate from the
/// connection list so a handler can borrow the service and the rings while
/// the loop holds the connection.
struct ServiceState {
    service: FirehoseService,
    rings: Vec<UserRing>,
    ring_cap: usize,
    registry: Arc<Registry>,
    obs: ServerObs,
    degraded: bool,
    started: Instant,
    allow_shutdown: bool,
}

enum Handled {
    /// A complete response body.
    Respond {
        status: u16,
        content_type: &'static str,
        body: Vec<u8>,
        extra_headers: Vec<(&'static str, String)>,
    },
    /// Begin a chunked long-poll stream.
    StartStream {
        user: u32,
        from: Option<u64>,
        max: usize,
        wait: Duration,
    },
    /// Respond 200 and stop the server.
    Shutdown,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: ServerConfig,
    ) -> Result<Self, NetError> {
        let fail = |source| NetError::Bind {
            addr: addr.to_string(),
            source,
        };
        let listener = TcpListener::bind(&addr).map_err(fail)?;
        listener.set_nonblocking(true).map_err(fail)?;
        let local = listener.local_addr().map_err(fail)?;
        Ok(Self {
            listener,
            addr: local,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that stops [`serve`](Server::serve) from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Run the event loop until shut down (via [`ShutdownHandle`] or an
    /// authorized `POST /shutdown`). Consumes the service: all ingest,
    /// churn, and streaming flows through this loop's thread.
    pub fn serve(
        self,
        service: FirehoseService,
        registry: Arc<Registry>,
    ) -> Result<ServeReport, NetError> {
        let limits = ParseLimits {
            max_header_bytes: self.config.max_header_bytes,
            max_body_bytes: self.config.max_body_bytes,
        };
        let user_count = service.subscriptions().user_count();
        let mut state = ServiceState {
            service,
            rings: Vec::new(),
            ring_cap: self.config.stream_buffer.max(1),
            registry: Arc::clone(&registry),
            obs: ServerObs::register(&registry),
            degraded: false,
            started: Instant::now(),
            allow_shutdown: self.config.allow_shutdown,
        };
        state.ensure_user_rings(user_count);
        let mut conns: Vec<Conn> = Vec::new();

        loop {
            let mut progressed = false;

            // Accept everything pending (unless shutting down).
            if !self.shutdown.load(Ordering::Acquire) {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            progressed = true;
                            state.obs.connections_total.inc();
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let mut conn = Conn::new(stream);
                            if conns.len() >= self.config.max_connections {
                                state.obs.connections_rejected.inc();
                                let body = b"connection limit reached\n";
                                conn.out.extend_from_slice(
                                    response_head(
                                        503,
                                        "text/plain; charset=utf-8",
                                        Some(body.len()),
                                        false,
                                        &[("Retry-After", "1")],
                                    )
                                    .as_bytes(),
                                );
                                conn.out.extend_from_slice(body);
                                conn.close_after_flush = true;
                            } else {
                                state.obs.connections.inc();
                                conn.counted = true;
                            }
                            conns.push(conn);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        // Transient accept failures (EMFILE under load)
                        // must not kill the serving loop.
                        Err(_) => break,
                    }
                }
            }

            // Advance every connection's state machine.
            for conn in conns.iter_mut() {
                if conn.dead {
                    continue;
                }
                progressed |= conn.flush();
                if conn.dead || conn.close_after_flush {
                    continue;
                }
                progressed |= conn.fill();
                if conn.dead {
                    continue;
                }
                // Parse pipelined requests, but never mid-stream: a parked
                // long-poll owns the response channel until it terminates.
                while conn.streaming.is_none() && !conn.close_after_flush {
                    match parse_request(&conn.rbuf, limits) {
                        Ok(ParseOutcome::Incomplete) => break,
                        Ok(ParseOutcome::Complete(req, consumed)) => {
                            conn.rbuf.drain(..consumed);
                            progressed = true;
                            state.obs.requests.inc();
                            let keep_alive = req.keep_alive;
                            match state.handle(&req) {
                                Handled::Respond {
                                    status,
                                    content_type,
                                    body,
                                    extra_headers,
                                } => {
                                    let extras: Vec<(&str, &str)> = extra_headers
                                        .iter()
                                        .map(|(n, v)| (*n, v.as_str()))
                                        .collect();
                                    conn.out.extend_from_slice(
                                        response_head(
                                            status,
                                            content_type,
                                            Some(body.len()),
                                            keep_alive,
                                            &extras,
                                        )
                                        .as_bytes(),
                                    );
                                    conn.out.extend_from_slice(&body);
                                    if !keep_alive {
                                        conn.close_after_flush = true;
                                    }
                                }
                                Handled::StartStream {
                                    user,
                                    from,
                                    max,
                                    wait,
                                } => {
                                    conn.out.extend_from_slice(
                                        response_head(
                                            200,
                                            "text/plain; charset=utf-8",
                                            None,
                                            keep_alive,
                                            &[],
                                        )
                                        .as_bytes(),
                                    );
                                    let ring = &state.rings[user as usize];
                                    let oldest =
                                        ring.items.front().map_or(ring.next_seq, |(s, _)| *s);
                                    conn.streaming = Some(StreamState {
                                        user,
                                        next_seq: from.unwrap_or(oldest),
                                        remaining: max,
                                        deadline: Instant::now() + wait,
                                    });
                                    state.obs.streams_parked.inc();
                                    if !keep_alive {
                                        conn.close_after_flush = true;
                                    }
                                }
                                Handled::Shutdown => {
                                    let body = b"shutting down\n";
                                    conn.out.extend_from_slice(
                                        response_head(
                                            200,
                                            "text/plain; charset=utf-8",
                                            Some(body.len()),
                                            false,
                                            &[],
                                        )
                                        .as_bytes(),
                                    );
                                    conn.out.extend_from_slice(body);
                                    conn.close_after_flush = true;
                                    self.shutdown.store(true, Ordering::Release);
                                }
                            }
                        }
                        Err(e) => {
                            // Malformed request: answer with the typed
                            // protocol error and close. The acceptor and
                            // the service never see it.
                            state.obs.protocol_errors.inc();
                            let body = format!("{e}\n");
                            conn.out.extend_from_slice(
                                response_head(
                                    e.status(),
                                    "text/plain; charset=utf-8",
                                    Some(body.len()),
                                    false,
                                    &[],
                                )
                                .as_bytes(),
                            );
                            conn.out.extend_from_slice(body.as_bytes());
                            conn.close_after_flush = true;
                            conn.rbuf.clear();
                            progressed = true;
                        }
                    }
                }
                // Drain new deliveries into a parked stream.
                progressed |= state.pump_stream(conn);
                progressed |= conn.flush();
            }

            // Reap finished connections and enforce the idle timeout.
            let now = Instant::now();
            let idle_timeout = self.config.idle_timeout;
            let obs = &state.obs;
            conns.retain_mut(|c| {
                let idle = c.streaming.is_none()
                    && !c.has_pending_write()
                    && now.duration_since(c.last_activity) > idle_timeout;
                if c.dead || idle {
                    if c.streaming.take().is_some() {
                        obs.streams_parked.dec();
                    }
                    if c.counted {
                        obs.connections.dec();
                    }
                    false
                } else {
                    true
                }
            });

            if self.shutdown.load(Ordering::Acquire) {
                // Grace period: flush whatever is still buffered.
                let grace = Instant::now() + Duration::from_millis(250);
                while conns.iter().any(|c| c.has_pending_write()) && Instant::now() < grace {
                    for conn in conns.iter_mut() {
                        conn.flush();
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
                break;
            }

            if !progressed {
                // Nothing moved: park briefly. Long-poll deadlines bound
                // the acceptable wake-up latency, so keep it well under a
                // millisecond.
                std::thread::sleep(Duration::from_micros(300));
            }
        }

        Ok(ServeReport {
            connections_accepted: state.obs.connections_total.get(),
            connections_rejected: state.obs.connections_rejected.get(),
            requests: state.obs.requests.get(),
            posts_ingested: state.obs.posts_ingested.get(),
            deliveries_streamed: state.obs.deliveries_streamed.get(),
            deliveries_dropped: state.obs.deliveries_dropped.get(),
            protocol_errors: state.obs.protocol_errors.get(),
        })
    }
}

impl ServiceState {
    fn ensure_user_rings(&mut self, user_count: usize) {
        if self.rings.len() < user_count {
            self.rings.resize_with(user_count, UserRing::default);
        }
    }

    /// Route one parsed request.
    fn handle(&mut self, req: &Request) -> Handled {
        match (req.method, req.path.as_str()) {
            (Method::Post, "/ingest") | (Method::Post, "/ingest/batch") => self.handle_ingest(req),
            (Method::Post, "/churn") => self.handle_churn(req),
            (Method::Get, "/metrics") => self.handle_metrics(),
            (Method::Get, "/healthz") => self.handle_healthz(),
            (Method::Post, "/shutdown") => {
                if self.allow_shutdown {
                    Handled::Shutdown
                } else {
                    respond(403, "shutdown is not enabled on this server\n")
                }
            }
            (method, path) => {
                if let Some(user) = path.strip_prefix("/stream/") {
                    if method == Method::Get {
                        return self.handle_stream(user, req);
                    }
                }
                respond(404, &format!("no such endpoint: {method} {path}\n"))
            }
        }
    }

    /// `POST /ingest`: corpus TSV lines in, one decision line per sink
    /// callback out. Decisions come from the same `process_batch` call the
    /// in-process facade exposes, so they are byte-identical to it.
    fn handle_ingest(&mut self, req: &Request) -> Handled {
        let posts = match corpus::read_posts(&mut &req.body[..]) {
            Ok(posts) => posts,
            Err(e) => return respond(400, &format!("bad post line: {e}\n")),
        };
        let n_in = posts.len() as u64;
        let mut body = Vec::new();
        // Split borrows: the sink mutates the rings and counters while
        // `process_batch` holds the service.
        let Self {
            service,
            rings,
            ring_cap,
            obs,
            ..
        } = self;
        let ring_cap = *ring_cap;
        let result = service.process_batch(posts, |post, decision| {
            body.extend_from_slice(decision_line(post.id, &decision.delivered_to).as_bytes());
            if decision.delivered_to.is_empty() {
                return;
            }
            for &user in &decision.delivered_to {
                if rings.len() <= user as usize {
                    rings.resize_with(user as usize + 1, UserRing::default);
                }
                let ring = &mut rings[user as usize];
                let seq = ring.next_seq;
                ring.next_seq += 1;
                ring.items
                    .push_back((seq, Arc::new(delivery_line(seq, post))));
                if ring.items.len() > ring_cap {
                    ring.items.pop_front();
                    obs.deliveries_dropped.inc();
                }
            }
        });
        match result {
            Ok(()) => {
                self.obs.posts_ingested.add(n_in);
                Handled::Respond {
                    status: 200,
                    content_type: "text/plain; charset=utf-8",
                    body,
                    extra_headers: Vec::new(),
                }
            }
            Err(ServiceError::Overloaded { capacity }) => Handled::Respond {
                // The posts before the refusal were still processed; their
                // decision lines ride along so the client can account for
                // them before retrying the rest.
                status: 503,
                content_type: "text/plain; charset=utf-8",
                body,
                extra_headers: vec![
                    ("Retry-After", "1".to_string()),
                    (
                        "X-Firehose-Error",
                        format!("overloaded capacity={capacity}"),
                    ),
                ],
            },
            Err(ServiceError::ShardFailed { shard, restarts }) => {
                self.degraded = true;
                respond(
                    500,
                    &format!("shard {shard} failed (restarts {restarts}); service degraded\n"),
                )
            }
            Err(e) => respond(500, &format!("service error: {e}\n")),
        }
    }

    /// `POST /churn`: one [`ChurnOp`] text line per op. Syntax errors fail
    /// the whole request (400); per-op subscription errors answer per line.
    fn handle_churn(&mut self, req: &Request) -> Handled {
        let text = match std::str::from_utf8(&req.body) {
            Ok(t) => t,
            Err(e) => return respond(400, &format!("churn body is not UTF-8: {e}\n")),
        };
        let mut ops = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match line.parse::<ChurnOp>() {
                Ok(op) => ops.push(op),
                Err(e) => return respond(400, &format!("churn line {}: {e}\n", lineno + 1)),
            }
        }
        let mut body = String::new();
        for op in &ops {
            use std::fmt::Write as _;
            let outcome = match op {
                ChurnOp::Subscribe(u, a) => self
                    .service
                    .subscribe(*u, *a)
                    .map(|changed| format!("ok\t{changed}")),
                ChurnOp::Unsubscribe(u, a) => self
                    .service
                    .unsubscribe(*u, *a)
                    .map(|changed| format!("ok\t{changed}")),
                ChurnOp::AddUser(authors) => self
                    .service
                    .add_user(authors.iter().copied())
                    .map(|uid| format!("ok\t{uid}")),
                ChurnOp::RemoveUser(u) => self.service.remove_user(*u).map(|()| "ok".to_string()),
            };
            match outcome {
                Ok(line) => {
                    let _ = writeln!(body, "{line}");
                }
                Err(e) => {
                    let _ = writeln!(body, "err\t{e}");
                }
            }
        }
        self.ensure_user_rings(self.service.subscriptions().user_count());
        respond(200, &body)
    }

    /// `GET /stream/<user>`: begin a chunked long-poll.
    fn handle_stream(&mut self, user: &str, req: &Request) -> Handled {
        let Ok(user) = user.parse::<u32>() else {
            return respond(400, &format!("bad user id {user:?}\n"));
        };
        let subs = self.service.subscriptions();
        if (user as usize) >= subs.user_count() {
            return respond(404, &format!("no such user {user}\n"));
        }
        if !subs.is_active(user) {
            return respond(404, &format!("user {user} was removed\n"));
        }
        let from = match req.query_value("from") {
            None => None,
            Some(v) => match v.parse::<u64>() {
                Ok(n) => Some(n),
                Err(e) => return respond(400, &format!("bad from={v:?}: {e}\n")),
            },
        };
        let max = match req.query_parse_or("max", 100usize) {
            Ok(v) => v.max(1),
            Err(e) => return respond(e.status(), &format!("{e}\n")),
        };
        let wait_ms = match req.query_parse_or("wait_ms", 0u64) {
            Ok(v) => v.min(60_000),
            Err(e) => return respond(e.status(), &format!("{e}\n")),
        };
        self.ensure_user_rings(user as usize + 1);
        Handled::StartStream {
            user,
            from,
            max,
            wait: Duration::from_millis(wait_ms),
        }
    }

    /// `GET /metrics`: refresh the exported snapshots and render.
    fn handle_metrics(&mut self) -> Handled {
        firehose_core::obs::export_kernel_info(&self.registry);
        firehose_core::obs::export_memory_mode(
            &self.registry,
            &self.service.memory_mode(),
            self.service.approx_stats(),
        );
        firehose_core::obs::export_engine_metrics(
            &self.registry,
            &self.service.name(),
            &self.service.metrics(),
        );
        if let Some(stats) = self.service.guard_stats() {
            firehose_core::obs::export_guard_stats(&self.registry, "serve", stats);
        }
        let text = self.registry.render_prometheus();
        Handled::Respond {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: text.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// `GET /healthz`: a JSON health document. 503 once degraded (an
    /// unhealed shard failure was surfaced by the service).
    fn handle_healthz(&mut self) -> Handled {
        let r = self.service.resilience_stats();
        let o = self.service.overload_stats();
        let c = self.service.churn_stats();
        let body = format!(
            "{{\"status\":\"{}\",\"strategy\":{},\"users\":{},\"active_users\":{},\
             \"uptime_ms\":{},\"connections\":{},\"shard_restarts\":{},\"recoveries\":{},\
             \"lost_posts\":{},\"replayed_posts\":{},\"shed\":{},\"rejected\":{},\
             \"rate_limited\":{},\"churn_ops\":{},\"posts_ingested\":{}}}\n",
            if self.degraded { "degraded" } else { "ok" },
            json_str(&self.service.name()),
            self.service.subscriptions().user_count(),
            self.service.subscriptions().active_user_count(),
            self.started.elapsed().as_millis(),
            self.obs.connections.get(),
            r.restarts,
            r.recoveries,
            r.lost_posts,
            r.replayed_posts,
            o.shed,
            o.rejected,
            o.rate_limited,
            c.ops_total(),
            self.obs.posts_ingested.get(),
        );
        Handled::Respond {
            status: if self.degraded { 503 } else { 200 },
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// Move ready deliveries into a parked stream; terminate it when the
    /// item budget or the deadline runs out.
    fn pump_stream(&mut self, conn: &mut Conn) -> bool {
        let Some(ss) = &mut conn.streaming else {
            return false;
        };
        let mut progressed = false;
        if let Some(ring) = self.rings.get(ss.user as usize) {
            // Readers that fell behind the ring restart at the oldest
            // retained delivery (the skip is visible in the seq column).
            if let Some((oldest, _)) = ring.items.front() {
                if ss.next_seq < *oldest {
                    ss.next_seq = *oldest;
                }
            }
            while ss.remaining > 0 {
                let Some((front_seq, _)) = ring.items.front() else {
                    break;
                };
                let idx = (ss.next_seq - front_seq) as usize;
                let Some((seq, line)) = ring.items.get(idx) else {
                    break;
                };
                debug_assert_eq!(*seq, ss.next_seq);
                push_chunk(&mut conn.out, line);
                self.obs.deliveries_streamed.inc();
                ss.next_seq += 1;
                ss.remaining -= 1;
                progressed = true;
            }
        }
        if ss.remaining == 0 || Instant::now() >= ss.deadline {
            conn.out.extend_from_slice(TERMINAL_CHUNK);
            conn.streaming = None;
            self.obs.streams_parked.dec();
            progressed = true;
        }
        progressed
    }
}

fn respond(status: u16, body: &str) -> Handled {
    Handled::Respond {
        status,
        content_type: if body.starts_with('{') {
            "application/json"
        } else {
            "text/plain; charset=utf-8"
        },
        body: body.as_bytes().to_vec(),
        extra_headers: Vec::new(),
    }
}

/// Minimal JSON string literal (the health document embeds strategy names).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
