//! A minimal blocking HTTP/1.1 client for the firehose wire protocol.
//!
//! Just enough client to drive the server from tests and the load
//! generator: keep-alive request/response over one [`TcpStream`], with
//! `Content-Length` and chunked response bodies. Chunked responses can be
//! consumed incrementally ([`HttpClient::stream_chunks`]) so a long-poll
//! reader observes each delivery as it arrives rather than at stream end.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures. `Io` covers connect/read/write errors (including
/// read timeouts); `Protocol` covers responses this client cannot parse.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's response did not parse.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io: {e}"),
            Self::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One parsed response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Header pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The full (de-chunked) body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header value for `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one firehose server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connect to `addr` with a 10-second read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Change the read timeout (e.g. for long polls longer than 10 s).
    pub fn set_read_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    /// Issue one request and read the whole response (chunked responses are
    /// de-chunked into `body`).
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        self.send(method, target, body)?;
        self.read_response(&mut |_| {})
    }

    /// `GET target` expecting a chunked response; `on_chunk` observes each
    /// chunk's payload as it arrives (long-poll streaming). The returned
    /// [`Response`] still carries the concatenated body.
    pub fn stream_chunks(
        &mut self,
        target: &str,
        on_chunk: &mut dyn FnMut(&[u8]),
    ) -> Result<Response, ClientError> {
        self.send("GET", target, b"")?;
        self.read_response(on_chunk)
    }

    fn send(&mut self, method: &str, target: &str, body: &[u8]) -> io::Result<()> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: firehose\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)
    }

    fn read_response(&mut self, on_chunk: &mut dyn FnMut(&[u8])) -> Result<Response, ClientError> {
        // Read until the header terminator.
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("bad status line {status_line:?}")))?;
        let mut headers = Vec::new();
        let mut content_length: Option<usize> = None;
        let mut chunked = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ClientError::Protocol(format!("bad header {line:?}")));
            };
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length =
                    Some(value.parse().map_err(|_| {
                        ClientError::Protocol(format!("bad content-length {value:?}"))
                    })?);
            } else if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
            headers.push((name, value));
        }
        self.buf.drain(..header_end + 4);

        let body = if chunked {
            self.read_chunked(on_chunk)?
        } else {
            let len = content_length.unwrap_or(0);
            while self.buf.len() < len {
                self.fill()?;
            }
            self.buf.drain(..len).collect()
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    fn read_chunked(&mut self, on_chunk: &mut dyn FnMut(&[u8])) -> Result<Vec<u8>, ClientError> {
        let mut body = Vec::new();
        loop {
            // Chunk-size line.
            let line_end = loop {
                if let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") {
                    break pos;
                }
                self.fill()?;
            };
            let size_line = String::from_utf8_lossy(&self.buf[..line_end]).into_owned();
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ClientError::Protocol(format!("bad chunk size {size_line:?}")))?;
            self.buf.drain(..line_end + 2);
            if size == 0 {
                // Trailing CRLF after the terminal chunk.
                while self.buf.len() < 2 {
                    self.fill()?;
                }
                self.buf.drain(..2);
                return Ok(body);
            }
            while self.buf.len() < size + 2 {
                self.fill()?;
            }
            on_chunk(&self.buf[..size]);
            body.extend_from_slice(&self.buf[..size]);
            self.buf.drain(..size + 2);
        }
    }

    fn fill(&mut self) -> Result<(), ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "connection closed mid-response".to_string(),
            ));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }
}
