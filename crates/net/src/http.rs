//! Incremental HTTP/1.1 request parsing and response formatting.
//!
//! The server speaks the small, boring subset of HTTP/1.1 the firehose wire
//! protocol needs: `GET`/`POST`, `Content-Length` request bodies, keep-alive
//! connections, and chunked transfer encoding on responses (the per-user
//! streaming endpoint). Requests arrive over non-blocking sockets, so the
//! parser is incremental: [`parse_request`] either consumes one complete
//! request from the front of the buffer, reports that more bytes are needed,
//! or returns a typed [`ProtoError`] — it never panics on malformed or
//! truncated input.

use std::fmt;

/// Request method. Everything else is rejected with
/// [`ProtoError::UnsupportedMethod`] (the wire protocol is GET/POST only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Reads: streams, metrics, health.
    Get,
    /// Writes: ingest, churn, shutdown.
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Get => "GET",
            Self::Post => "POST",
        })
    }
}

/// One parsed request: method, decoded path, decoded query pairs, body.
#[derive(Debug)]
pub struct Request {
    /// GET or POST.
    pub method: Method,
    /// Percent-decoded path, query string stripped (e.g. `/stream/7`).
    pub path: String,
    /// Percent-decoded `?key=value` pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_value(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parse the query value for `key`, falling back to `default` when the
    /// key is absent. A present-but-unparsable value is a protocol error.
    pub fn query_parse_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ProtoError>
    where
        T::Err: fmt::Display,
    {
        match self.query_value(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| ProtoError::BadQuery {
                key: key.to_string(),
                reason: format!("{e}"),
            }),
        }
    }
}

/// Typed protocol failures. Each maps to one HTTP status via
/// [`ProtoError::status`]; none of them tears down the server.
#[derive(Debug)]
pub enum ProtoError {
    /// The request line was not `METHOD target HTTP/1.x`.
    BadRequestLine(String),
    /// A header line had no `:` separator.
    BadHeader(String),
    /// A method other than GET/POST.
    UnsupportedMethod(String),
    /// `Transfer-Encoding` on a request (only `Content-Length` bodies are
    /// accepted).
    UnsupportedTransferEncoding(String),
    /// `Content-Length` was not a number.
    BadContentLength(String),
    /// The declared body exceeds the configured cap.
    BodyTooLarge {
        /// Configured maximum body size.
        limit: usize,
        /// Declared `Content-Length`.
        declared: usize,
    },
    /// The header section exceeds the configured cap without terminating.
    HeadersTooLarge {
        /// Configured maximum header-section size.
        limit: usize,
    },
    /// A malformed `?key=value` pair (reported by the endpoint handlers).
    BadQuery {
        /// The offending key.
        key: String,
        /// Why the value did not parse.
        reason: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadRequestLine(line) => write!(f, "malformed request line {line:?}"),
            Self::BadHeader(line) => write!(f, "malformed header {line:?}"),
            Self::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            Self::UnsupportedTransferEncoding(te) => {
                write!(
                    f,
                    "unsupported transfer-encoding {te:?} (use Content-Length)"
                )
            }
            Self::BadContentLength(v) => write!(f, "bad Content-Length {v:?}"),
            Self::BodyTooLarge { limit, declared } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            Self::HeadersTooLarge { limit } => {
                write!(f, "header section exceeds the {limit}-byte limit")
            }
            Self::BadQuery { key, reason } => write!(f, "bad query value for {key:?}: {reason}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// The HTTP status this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            Self::BodyTooLarge { .. } => 413,
            Self::HeadersTooLarge { .. } => 431,
            Self::UnsupportedMethod(_) => 405,
            Self::UnsupportedTransferEncoding(_) => 501,
            _ => 400,
        }
    }
}

/// Result of feeding the accumulated read buffer to the parser.
#[derive(Debug)]
pub enum ParseOutcome {
    /// The buffer does not yet hold one complete request; read more.
    Incomplete,
    /// One complete request, plus how many buffer bytes it consumed (the
    /// caller drains them; anything left is the next pipelined request).
    Complete(Request, usize),
}

/// Limits applied while parsing (both are enforced incrementally, so a
/// hostile peer cannot balloon the buffer before the error fires).
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum header-section bytes (request line + headers + blank line).
    pub max_header_bytes: usize,
    /// Maximum `Content-Length` accepted.
    pub max_body_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Try to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8], limits: ParseLimits) -> Result<ParseOutcome, ProtoError> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > limits.max_header_bytes {
            return Err(ProtoError::HeadersTooLarge {
                limit: limits.max_header_bytes,
            });
        }
        return Ok(ParseOutcome::Incomplete);
    };
    if header_end > limits.max_header_bytes {
        return Err(ProtoError::HeadersTooLarge {
            limit: limits.max_header_bytes,
        });
    }
    let head = &buf[..header_end];
    let head_text = String::from_utf8_lossy(head);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();

    let mut parts = request_line.split(' ');
    let (method_s, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ProtoError::BadRequestLine(clip(request_line))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ProtoError::BadRequestLine(clip(request_line)));
    }
    let method = match method_s {
        "GET" => Method::Get,
        "POST" => Method::Post,
        other => return Err(ProtoError::UnsupportedMethod(clip(other))),
    };

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = !version.ends_with("1.0");
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ProtoError::BadHeader(clip(line)));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| ProtoError::BadContentLength(clip(value)))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ProtoError::UnsupportedTransferEncoding(clip(value)));
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(ProtoError::BodyTooLarge {
            limit: limits.max_body_bytes,
            declared: content_length,
        });
    }
    let body_start = header_end + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(ParseOutcome::Incomplete);
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = raw_query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();

    Ok(ParseOutcome::Complete(
        Request {
            method,
            path,
            query,
            body: buf[body_start..total].to_vec(),
            keep_alive,
        },
        total,
    ))
}

/// Offset of the `\r\n\r\n` header terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Decode `%XX` escapes and `+`-as-space; invalid escapes pass through
/// literally (lenient, like every server in practice).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => match hex_pair(bytes[i + 1], bytes[i + 2]) {
                Some(b) => {
                    out.push(b);
                    i += 3;
                }
                None => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_pair(hi: u8, lo: u8) -> Option<u8> {
    let d = |c: u8| match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    };
    Some(d(hi)? * 16 + d(lo)?)
}

/// Truncate hostile input before embedding it in an error message.
fn clip(s: &str) -> String {
    const MAX: usize = 80;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

/// Standard reason phrase for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Format a response head. `content_length: None` means chunked transfer
/// encoding (the streaming endpoint).
pub fn response_head(
    status: u16,
    content_type: &str,
    content_length: Option<usize>,
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> String {
    use std::fmt::Write as _;
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    let _ = write!(head, "Content-Type: {content_type}\r\n");
    match content_length {
        Some(n) => {
            let _ = write!(head, "Content-Length: {n}\r\n");
        }
        None => head.push_str("Transfer-Encoding: chunked\r\n"),
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n"
    } else {
        "Connection: close\r\n"
    });
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    head
}

/// Append one chunked-transfer chunk (`<hex len>\r\n<data>\r\n`) to `out`.
/// Empty data is skipped — a zero-length chunk would terminate the stream.
pub fn push_chunk(out: &mut Vec<u8>, data: &[u8]) {
    if data.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", data.len()).as_bytes());
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// The terminal chunk closing a chunked response body.
pub const TERMINAL_CHUNK: &[u8] = b"0\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(buf: &[u8]) -> Result<ParseOutcome, ProtoError> {
        parse_request(buf, ParseLimits::default())
    }

    #[test]
    fn complete_get_round_trips() {
        let raw = b"GET /stream/7?from=3&max=10 HTTP/1.1\r\nHost: x\r\n\r\n";
        match parse(raw).unwrap() {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(consumed, raw.len());
                assert_eq!(req.method, Method::Get);
                assert_eq!(req.path, "/stream/7");
                assert_eq!(req.query_value("from"), Some("3"));
                assert_eq!(req.query_parse_or("max", 0usize).unwrap(), 10);
                assert_eq!(req.query_parse_or("wait_ms", 250u64).unwrap(), 250);
                assert!(req.keep_alive);
                assert!(req.body.is_empty());
            }
            other => panic!("wanted complete, got {other:?}"),
        }
    }

    #[test]
    fn post_body_by_content_length() {
        let raw = b"POST /ingest HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello extra";
        match parse(raw).unwrap() {
            ParseOutcome::Complete(req, consumed) => {
                assert_eq!(req.body, b"hello");
                // The trailing " extra" belongs to the next pipelined request.
                assert_eq!(consumed, raw.len() - " extra".len());
            }
            other => panic!("wanted complete, got {other:?}"),
        }
    }

    #[test]
    fn short_reads_are_incomplete_not_errors() {
        let raw = b"POST /ingest HTTP/1.1\r\nContent-Length: 100\r\n\r\nonly-a-bit";
        assert!(matches!(parse(raw).unwrap(), ParseOutcome::Incomplete));
        // Truncated mid-header, too.
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nHos").unwrap(),
            ParseOutcome::Incomplete
        ));
        assert!(matches!(parse(b"").unwrap(), ParseOutcome::Incomplete));
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let garbage = b"GARBAGE\r\n\r\n";
        assert!(matches!(parse(garbage), Err(ProtoError::BadRequestLine(_))));
        assert!(matches!(
            parse(b"PUT /x HTTP/1.1\r\n\r\n"),
            Err(ProtoError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n"),
            Err(ProtoError::BadHeader(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ProtoError::BadContentLength(_))
        ));
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ProtoError::UnsupportedTransferEncoding(_))
        ));
        assert!(matches!(
            parse(b"GET /x SMTP\r\n\r\n"),
            Err(ProtoError::BadRequestLine(_))
        ));
    }

    #[test]
    fn limits_are_enforced() {
        let limits = ParseLimits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        // Headers that never terminate blow the cap instead of buffering.
        let long = vec![b'a'; 128];
        assert!(matches!(
            parse_request(&long, limits),
            Err(ProtoError::HeadersTooLarge { .. })
        ));
        let big_body = b"POST /i HTTP/1.1\r\nContent-Length: 9\r\n\r\n";
        assert!(matches!(
            parse_request(big_body, limits),
            Err(ProtoError::BodyTooLarge { .. })
        ));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse(close).unwrap() {
            ParseOutcome::Complete(req, _) => assert!(!req.keep_alive),
            other => panic!("{other:?}"),
        }
        let http10 = b"GET /healthz HTTP/1.0\r\n\r\n";
        match parse(http10).unwrap() {
            ParseOutcome::Complete(req, _) => assert!(!req.keep_alive),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn percent_decoding_is_lenient() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn chunk_framing() {
        let mut out = Vec::new();
        push_chunk(&mut out, b"hello");
        push_chunk(&mut out, b"");
        out.extend_from_slice(TERMINAL_CHUNK);
        assert_eq!(out, b"5\r\nhello\r\n0\r\n\r\n");
    }

    #[test]
    fn error_statuses() {
        assert_eq!(ProtoError::BadRequestLine(String::new()).status(), 400);
        assert_eq!(
            ProtoError::BodyTooLarge {
                limit: 1,
                declared: 2
            }
            .status(),
            413
        );
        assert_eq!(ProtoError::HeadersTooLarge { limit: 1 }.status(), 431);
        assert_eq!(ProtoError::UnsupportedMethod(String::new()).status(), 405);
    }
}
