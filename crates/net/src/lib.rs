//! # firehose-net — the wire in front of the firehose
//!
//! A zero-dependency TCP/HTTP serving layer for
//! [`FirehoseService`](firehose_core::service::FirehoseService). Like
//! `firehose-obs`, this crate deliberately pulls nothing from the registry:
//! the server is a single-threaded, epoll-style readiness loop over
//! non-blocking `std::net` sockets, and the HTTP/1.1 subset it speaks
//! (Content-Length request bodies, keep-alive, pipelining, chunked
//! responses) is implemented in-tree with typed protocol errors — a
//! malformed or truncated request costs the peer its connection, never the
//! acceptor or a shard.
//!
//! The load-bearing property is *decision fidelity*: requests are handled
//! on the same thread that owns the service, calling the same
//! `process_batch` entry point as in-process embedding, so the decision
//! stream a client reads over the wire is byte-identical to what the
//! facade would have emitted for the same trace (asserted by
//! `tests/serving.rs`).
//!
//! - [`server`] — the event loop, router, per-user delivery rings, and
//!   backpressure bridging (service overload policy ⇄ HTTP 503 / connection
//!   caps / ring eviction).
//! - [`http`] — incremental request parsing and response formatting.
//! - [`client`] — a minimal blocking client used by the loopback tests and
//!   the `serving_bench` load generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;

pub use client::{ClientError, HttpClient, Response};
pub use http::{Method, ParseLimits, ProtoError, Request};
pub use server::{NetError, ServeReport, Server, ServerConfig, ShutdownHandle};
