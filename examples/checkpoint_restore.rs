//! Operating the engine like a real service: persist the offline artifacts,
//! checkpoint the online engine, crash, restore, continue.
//!
//! ```sh
//! cargo run --example checkpoint_restore
//! ```
//!
//! The paper's deployment story has two halves: heavyweight artifacts
//! (similarity graph, clique cover) recomputed offline "once every week",
//! and a real-time engine whose *window contents* are the live state. This
//! example saves both, simulates a crash, and shows the restored engine
//! making exactly the decisions the uninterrupted one would have made.

use std::sync::Arc;

use firehose::core::snapshot::{restore_cliquebin, snapshot_cliquebin};
use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose::graph::io::{read_cover, read_undirected, write_cover, write_undirected};
use firehose::graph::{build_similarity_graph, greedy_clique_cover};
use firehose::prelude::*;

fn main() {
    // ---- offline pipeline (weekly) -------------------------------------
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let graph = build_similarity_graph(&social.graph, 0.7);
    let cover = greedy_clique_cover(&graph);

    let dir = std::env::temp_dir().join("firehose_checkpoint_example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let graph_path = dir.join("similarity.fhg");
    let cover_path = dir.join("cover.fhc");
    write_undirected(&graph, &mut std::fs::File::create(&graph_path).unwrap()).unwrap();
    write_cover(
        &cover,
        graph.node_count(),
        &mut std::fs::File::create(&cover_path).unwrap(),
    )
    .unwrap();
    println!(
        "offline artifacts persisted: {} ({} edges), {} ({} cliques)",
        graph_path.display(),
        graph.edge_count(),
        cover_path.display(),
        cover.count()
    );

    // ---- online engine ---------------------------------------------------
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(4),
            ..Default::default()
        },
    );
    let (first_half, second_half) = workload.posts.split_at(workload.len() / 2);

    let graph = Arc::new(graph);
    let cover = Arc::new(cover);
    let config = EngineConfig::new(Thresholds::paper_defaults());
    let mut engine = CliqueBin::with_cover(config, Arc::clone(&graph), Arc::clone(&cover));
    for post in first_half {
        engine.offer(post);
    }
    println!(
        "\ningested {} posts; window holds {} record copies",
        first_half.len(),
        engine.metrics().copies_stored
    );

    // Checkpoint, then "crash".
    let snap_path = dir.join("engine.fhsnap");
    snapshot_cliquebin(&engine, &mut std::fs::File::create(&snap_path).unwrap()).unwrap();
    let reference: Vec<bool> = second_half
        .iter()
        .map(|p| engine.offer(p).is_emitted())
        .collect();
    drop(engine);
    println!(
        "checkpointed to {} — simulating a crash",
        snap_path.display()
    );

    // ---- recovery ----------------------------------------------------------
    let graph = Arc::new(read_undirected(&mut std::fs::File::open(&graph_path).unwrap()).unwrap());
    let cover = Arc::new(read_cover(&mut std::fs::File::open(&cover_path).unwrap()).unwrap());
    let mut restored = restore_cliquebin(
        &mut std::fs::File::open(&snap_path).unwrap(),
        Arc::clone(&graph),
        cover,
    )
    .unwrap();
    println!(
        "restored engine: {} posts of history in counters",
        restored.metrics().posts_processed
    );

    let replayed: Vec<bool> = second_half
        .iter()
        .map(|p| restored.offer(p).is_emitted())
        .collect();
    assert_eq!(
        replayed, reference,
        "restored engine must continue identically"
    );
    println!(
        "\nrestored engine made identical decisions on the remaining {} posts ✓",
        second_half.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
