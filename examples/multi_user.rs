//! M-SPSD: diversifying streams for many users centrally.
//!
//! ```sh
//! cargo run --release --example multi_user
//! ```
//!
//! Builds a synthetic service with hundreds of users, compares the
//! per-user strategy (`M_UniBin`) with the shared-component strategy
//! (`S_UniBin`, Section 5 of the paper) and the thread-parallel sharded
//! runner, asserting along the way that all three deliver identical
//! per-user streams.

use std::time::Instant;

use firehose::datagen::{
    generate_subscriptions, SocialGenConfig, SubscriptionGenConfig, SyntheticSocialGraph, Workload,
    WorkloadConfig,
};
use firehose::graph::build_similarity_graph;
use firehose::prelude::*;

fn main() {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale().with_authors(600));
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(12),
            ..Default::default()
        },
    );
    let graph = build_similarity_graph(&social.graph, 0.7);

    let users = 400;
    let sets = generate_subscriptions(
        social.author_count(),
        users,
        SubscriptionGenConfig {
            median: 6.0,
            mean: 18.0,
            ..Default::default()
        },
    );
    let subs = Subscriptions::new(social.author_count(), sets).expect("valid");
    println!(
        "{} users over {} authors (mean {:.1} subscriptions), {} posts",
        subs.user_count(),
        subs.author_count(),
        subs.mean_subscriptions(),
        workload.len()
    );

    let config = EngineConfig::new(Thresholds::paper_defaults());

    // Strategy 1: one engine per user.
    let mut independent =
        IndependentMulti::new(AlgorithmKind::UniBin, config, &graph, subs.clone());
    let t0 = Instant::now();
    let m_out: Vec<_> = workload
        .posts
        .iter()
        .map(|p| independent.offer(p))
        .collect();
    let m_time = t0.elapsed();

    // Strategy 2: one engine per distinct connected component.
    let mut shared = SharedMulti::new(AlgorithmKind::UniBin, config, &graph, subs.clone());
    let t0 = Instant::now();
    let s_out: Vec<_> = workload.posts.iter().map(|p| shared.offer(p)).collect();
    let s_time = t0.elapsed();
    assert_eq!(
        m_out, s_out,
        "shared components must not change any user's stream"
    );

    // Strategy 3: the shared strategy across 4 worker threads.
    let mut parallel = ParallelShared::new(AlgorithmKind::UniBin, config, &graph, subs.clone(), 4)
        .expect("thread count is positive");
    let t0 = Instant::now();
    let p_out = parallel.process_stream(&workload.posts);
    let p_time = t0.elapsed();
    assert_eq!(s_out, p_out, "parallel execution must be deterministic");

    println!("\nall three strategies delivered identical per-user streams\n");
    println!(
        "{:<28} {:>10} {:>14} {:>14}",
        "strategy", "time", "comparisons", "engines"
    );
    println!(
        "{:<28} {:>10.1?} {:>14} {:>14}",
        independent.name(),
        m_time,
        independent.metrics().comparisons,
        subs.user_count()
    );
    println!(
        "{:<28} {:>10.1?} {:>14} {:>14}",
        shared.name(),
        s_time,
        shared.metrics().comparisons,
        shared.component_count()
    );
    println!(
        "{:<28} {:>10.1?} {:>14} {:>14}",
        parallel.name(),
        p_time,
        parallel.metrics().comparisons,
        parallel.component_count()
    );

    let delivered: usize = s_out.iter().map(|d| d.delivered_to.len()).sum();
    let offered: usize = workload
        .posts
        .iter()
        .map(|p| subs.subscribers_of(p.author).len())
        .sum();
    println!(
        "\n{delivered} deliveries out of {offered} subscribed arrivals ({:.1}% pruned)",
        (1.0 - delivered as f64 / offered as f64) * 100.0
    );
}
