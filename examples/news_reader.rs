//! News RSS reader: a dense author-similarity graph (Table 4's UniBin case).
//!
//! ```sh
//! cargo run --example news_reader
//! ```
//!
//! News agencies cluster by editorial line — "generally, news agents form
//! clusters (e.g., by their political views) such that in each cluster the
//! news agents are similar to each other from a user's perspective". A wire
//! story syndicated across one cluster should surface once; the same story
//! from a different cluster is a genuinely different perspective and stays.

use std::sync::Arc;

use firehose::core::advisor::{recommend, AdvisorInputs, ThroughputClass};
use firehose::prelude::*;

fn main() {
    // Two dense clusters of outlets: {0,1,2} and {3,4}.
    let outlets = [
        "WireOne",
        "MetroDaily",
        "CityHerald",
        "TheContrarian",
        "DailySkeptic",
    ];
    let graph = Arc::new(UndirectedGraph::from_edges(
        5,
        [(0, 1), (0, 2), (1, 2), (3, 4)],
    ));

    // A reader aggregating feeds tolerates large λa (dense G) and reads in
    // batches: λt = 2h.
    let thresholds = Thresholds::new(18, minutes(120), 0.8).expect("valid");
    let choice = recommend(AdvisorInputs {
        lambda_t: thresholds.lambda_t,
        lambda_a: thresholds.lambda_a,
        throughput: ThroughputClass::High,
        ram_critical: false,
    });
    println!("advisor: dense similarity graph -> {choice}\n");

    let mut engine = UniBin::new(EngineConfig::new(thresholds), graph);

    let wire = "Central bank holds rates steady, signals patience on inflation path";
    let feed = [
        Post::new(1, 0, minutes(0), format!("{wire} http://t.co/wire0001")),
        // Syndicated copies inside the same cluster: pruned.
        Post::new(2, 1, minutes(7), format!("{wire} http://t.co/wire0002")),
        Post::new(
            3,
            2,
            minutes(12),
            format!("{wire} - full analysis inside http://t.co/wire0003"),
        ),
        // The other cluster runs the same wire text: different viewpoint, kept.
        Post::new(4, 3, minutes(15), format!("{wire} http://t.co/wire0004")),
        Post::new(5, 4, minutes(21), format!("{wire} http://t.co/wire0005")),
        // Fresh story.
        Post::new(
            6,
            1,
            minutes(30),
            "Port authority approves expansion of the eastern container terminal".into(),
        ),
    ];

    for post in &feed {
        let verdict = engine.offer(post);
        let min = post.timestamp / minutes(1);
        match verdict.covered_by() {
            None => println!(
                "t+{min:>3}m  {:<13} SHOW   {}",
                outlets[post.author as usize], post.text
            ),
            Some(by) => println!(
                "t+{min:>3}m  {:<13} prune  (syndicated copy of post {by})",
                outlets[post.author as usize]
            ),
        }
    }

    let m = engine.metrics();
    println!("\n{} of {} items shown", m.posts_emitted, m.posts_processed);
    assert_eq!(
        m.posts_emitted, 3,
        "one copy per cluster plus the fresh story"
    );
}
