//! Quickstart: diversify a handful of posts across all three dimensions.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a four-author similarity graph by hand, feeds seven posts through
//! a [`UniBin`] engine at the paper's default thresholds, and prints the
//! real-time decision for each post with the reason.

use std::sync::Arc;

use firehose::prelude::*;

fn main() {
    // Authors: 0 = CNN, 1 = CNN Breaking, 2 = Fox News, 3 = a food blogger.
    // CNN and CNN Breaking share most followers, so they are similar; Fox is
    // dissimilar to both (different audience), the blogger to everyone.
    let graph = Arc::new(UndirectedGraph::from_edges(4, [(0, 1)]));
    let names = ["@CNN", "@CNNBrk", "@FoxNews", "@pasta_daily"];

    // λc = 18 bits, λt = 30 minutes, λa = 0.7 — the paper's defaults.
    let config = EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).expect("valid"));
    let mut engine = UniBin::new(config, graph);

    let posts = [
        Post::new(1, 0, minutes(0), "Ferry carrying 450 passengers sinks off the coast, hundreds missing http://t.co/aaa111".into()),
        // Same newsroom, same story, re-shortened URL two minutes later.
        Post::new(2, 1, minutes(2), "Ferry carrying 450 passengers sinks off the coast, hundreds missing http://t.co/bbb222".into()),
        // Dissimilar author, same story: the reader may want Fox's angle.
        Post::new(3, 2, minutes(4), "Ferry carrying 450 passengers sinks off the coast, hundreds missing http://t.co/ccc333".into()),
        // Unrelated content from a similar author.
        Post::new(4, 1, minutes(6), "Markets close higher as tech stocks rally for a third day".into()),
        // CNN repeats itself *after* the time window: of interest again.
        Post::new(5, 0, minutes(40), "Ferry carrying 450 passengers sinks off the coast, hundreds missing http://t.co/ddd444".into()),
        // ... and repeats itself *within* the window: pruned.
        Post::new(6, 0, minutes(50), "Ferry carrying 450 passengers sinks off the coast, hundreds missing http://t.co/eee555".into()),
        Post::new(7, 3, minutes(51), "This 20 minute cacio e pepe will change your life, recipe inside".into()),
    ];

    println!("λc=18 bits, λt=30 min, λa=0.7\n");
    for post in &posts {
        let verdict = engine.offer(post);
        let minute = post.timestamp / minutes(1);
        match verdict {
            Decision::Emitted => {
                println!(
                    "t+{minute:>2}min  {:<13} SHOW   {}",
                    names[post.author as usize], post.text
                );
            }
            Decision::Covered { by } => {
                println!(
                    "t+{minute:>2}min  {:<13} prune  (covered by post {by})",
                    names[post.author as usize]
                );
            }
        }
    }

    let m = engine.metrics();
    println!(
        "\n{} of {} posts shown ({:.0}% pruned), {} pairwise comparisons",
        m.posts_emitted,
        m.posts_processed,
        (1.0 - m.emit_ratio()) * 100.0,
        m.comparisons
    );
}
