//! Keeping the author similarity graph fresh: weekly batch vs online
//! maintenance.
//!
//! ```sh
//! cargo run --example incremental_graph
//! ```
//!
//! The paper precomputes author similarity offline because it "changes
//! slowly over time (e.g., once every week)". This example bootstraps the
//! incremental [`SimilarityIndex`] from a follower graph, streams a day of
//! follow/unfollow events into it, and shows that (a) its snapshot equals a
//! from-scratch batch rebuild, and (b) the events actually moved the graph —
//! so a service using the index never serves week-old similarity.

use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph};
use firehose::graph::{build_similarity_graph, FollowerGraph, SimilarityIndex};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let m = social.author_count();

    // Bootstrap: the weekly batch job.
    let t0 = std::time::Instant::now();
    let mut index = SimilarityIndex::from_graph(&social.graph);
    println!(
        "bootstrapped incremental index from {} follows in {:.1?}",
        social.graph.edge_count(),
        t0.elapsed()
    );
    let before = index.to_similarity_graph(0.7);

    // A day of follow churn: 2,000 events, 70% follows / 30% unfollows.
    let mut rng = StdRng::seed_from_u64(99);
    let mut applied = 0u32;
    let t0 = std::time::Instant::now();
    for _ in 0..2_000 {
        let u = rng.random_range(0..m as u32);
        let f = rng.random_range(0..m as u32);
        let changed = if rng.random_bool(0.7) {
            index.add_follow(u, f)
        } else {
            index.remove_follow(u, f)
        };
        applied += u32::from(changed);
    }
    println!(
        "applied {applied} effective events in {:.1?} (amortized {:.1?}/event)",
        t0.elapsed(),
        t0.elapsed() / 2_000
    );

    // The similarity graph moved with the events...
    let after = index.to_similarity_graph(0.7);
    println!(
        "similarity graph: {} edges before churn, {} after",
        before.edge_count(),
        after.edge_count()
    );
    assert_ne!(before, after, "a day of churn should move the graph");

    // ...and matches a from-scratch batch rebuild over the final relation.
    let mut final_graph = FollowerGraph::new(m);
    for u in 0..m as u32 {
        for &f in index.followees(u) {
            final_graph.add_follow(u, f);
        }
    }
    let batch = build_similarity_graph(&final_graph, 0.7);
    assert_eq!(
        after, batch,
        "incremental snapshot must equal the batch rebuild"
    );
    println!("incremental snapshot == batch rebuild ✓");

    // Spot query: who is similar to author 10 right now?
    let similar = index.similar_authors(10, 0.3);
    println!(
        "author 10 currently has {} similar authors (top: {:?})",
        similar.len(),
        &similar[..similar.len().min(5)]
    );
}
