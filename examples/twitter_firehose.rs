//! The headline scenario: a Twitter-scale synthetic day through all three
//! SPSD engines.
//!
//! ```sh
//! cargo run --release --example twitter_firehose
//! ```
//!
//! Generates a community-structured follower graph and a day of posts with
//! injected near-duplicates (see `firehose-datagen`), precomputes the author
//! similarity graph offline (as the paper prescribes), then compares
//! UniBin / NeighborBin / CliqueBin on the same stream and asks the advisor
//! which engine fits this workload.

use std::sync::Arc;
use std::time::Instant;

use firehose::core::advisor::{recommend, AdvisorInputs, ThroughputClass};
use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose::graph::build_similarity_graph;
use firehose::prelude::*;

fn main() {
    // A scaled-down firehose so the example finishes in seconds; bump
    // `authors` (and run --release) for the full-size experience.
    let social = SyntheticSocialGraph::generate(SocialGenConfig::bench_scale().with_authors(2_000));
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(8),
            ..WorkloadConfig::default()
        },
    );
    println!(
        "generated {} posts from {} authors ({:.1}% near-duplicates injected)",
        workload.len(),
        social.author_count(),
        workload.duplicate_fraction() * 100.0
    );

    // Offline step (the paper recomputes this "once every week").
    let t0 = Instant::now();
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    println!(
        "author similarity graph: {} edges, avg {:.1} similar authors each ({:.1?})\n",
        graph.edge_count(),
        graph.average_degree(),
        t0.elapsed()
    );

    let thresholds = Thresholds::paper_defaults();
    println!(
        "{:<13} {:>9} {:>12} {:>14} {:>12} {:>8}",
        "engine", "time", "peak RAM", "comparisons", "insertions", "shown"
    );
    for kind in AlgorithmKind::ALL {
        let mut engine = build_engine(kind, EngineConfig::new(thresholds), Arc::clone(&graph));
        let t0 = Instant::now();
        for post in &workload.posts {
            engine.offer(post);
        }
        let elapsed = t0.elapsed();
        let m = engine.metrics();
        println!(
            "{:<13} {:>9.1?} {:>9} KiB {:>14} {:>12} {:>7.1}%",
            kind.to_string(),
            elapsed,
            m.peak_memory_bytes / 1024,
            m.comparisons,
            m.insertions,
            m.emit_ratio() * 100.0
        );
    }

    let choice = recommend(AdvisorInputs {
        lambda_t: thresholds.lambda_t,
        lambda_a: thresholds.lambda_a,
        throughput: ThroughputClass::High,
        ram_critical: false,
    });
    println!("\nadvisor (Table 4): for a Twitter-like workload use {choice}");
}
