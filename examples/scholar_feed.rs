//! Google-Scholar-style publication feed: low throughput, long windows
//! (Table 4's other UniBin case).
//!
//! ```sh
//! cargo run --example scholar_feed
//! ```
//!
//! Posts are new-paper alerts; authors are research groups connected by
//! co-authorship overlap. Throughput is a few items per day, and a reader
//! doesn't want two versions of the same preprint within a month.

use std::sync::Arc;

use firehose::core::advisor::{recommend, AdvisorInputs, ThroughputClass};
use firehose::prelude::*;
use firehose::stream::days;

fn main() {
    // Research groups: 0,1 share most co-authors; 2 is an unrelated lab.
    let groups = ["SystemsLab", "DB-Group", "BioStat"];
    let graph = Arc::new(UndirectedGraph::from_edges(3, [(0, 1)]));

    // λt = 30 days: a re-announced preprint within a month is noise.
    let thresholds = Thresholds::new(18, days(30), 0.7).expect("valid");
    let choice = recommend(AdvisorInputs {
        lambda_t: thresholds.lambda_t,
        lambda_a: thresholds.lambda_a,
        throughput: ThroughputClass::Low,
        ram_critical: false,
    });
    println!("advisor: low-throughput scholarly feed -> {choice}\n");
    let mut engine = UniBin::new(EngineConfig::new(thresholds), graph);

    let title = "Streaming diversification of social post feeds with coverage guarantees";
    let feed = [
        Post::new(1, 0, days(0), format!("New preprint: {title} http://t.co/arxiv001")),
        // The collaborating group announces the same paper two days later.
        Post::new(2, 1, days(2), format!("New preprint: {title} http://t.co/arxiv002")),
        // Camera-ready re-announcement three weeks later, same groups.
        Post::new(3, 0, days(23), format!("New preprint: {title} http://t.co/arxiv003")),
        // The unrelated lab publishes something else entirely.
        Post::new(4, 2, days(24), "New preprint: Bayesian hazard models for longitudinal cohort data http://t.co/arxiv004".into()),
        // Two months later the journal version appears: window expired, shown.
        Post::new(5, 1, days(70), format!("Journal version out: {title} http://t.co/arxiv005")),
    ];

    for post in &feed {
        let verdict = engine.offer(post);
        let day = post.timestamp / hours(24);
        match verdict.covered_by() {
            None => println!(
                "day {day:>2}  {:<11} SHOW   {}",
                groups[post.author as usize], post.text
            ),
            Some(by) => println!(
                "day {day:>2}  {:<11} prune  (same work as post {by})",
                groups[post.author as usize]
            ),
        }
    }

    let m = engine.metrics();
    println!(
        "\n{} of {} alerts shown",
        m.posts_emitted, m.posts_processed
    );
    assert_eq!(m.posts_emitted, 3);
}
