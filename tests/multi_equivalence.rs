//! M-SPSD correctness: the per-user (`M_*`), shared-component (`S_*`) and
//! parallel sharded strategies must deliver identical per-user streams for
//! every algorithm kind — and each user's stream must equal what a dedicated
//! single-user engine over her subscriptions would produce.

use std::sync::Arc;

use firehose::prelude::*;
use proptest::prelude::*;

fn posts_strategy(m: u32) -> impl Strategy<Value = Vec<Post>> {
    proptest::collection::vec(
        (
            0..m,
            0u64..300,
            proptest::sample::select(vec![
                "alpha beta gamma delta epsilon zeta",
                "alpha beta gamma delta epsilon eta",
                "one two three four five six seven",
                "completely different content right here now",
            ]),
        ),
        0..60,
    )
    .prop_map(|items| {
        let mut ts = 0u64;
        items
            .into_iter()
            .enumerate()
            .map(|(i, (author, gap, text))| {
                ts += gap;
                Post::new(i as u64, author, ts, text.to_string())
            })
            .collect()
    })
}

fn graph_strategy(m: u32) -> impl Strategy<Value = UndirectedGraph> {
    proptest::collection::vec((0..m, 0..m), 0..30)
        .prop_map(move |edges| UndirectedGraph::from_edges(m as usize, edges))
}

fn subscriptions_strategy(m: u32, users: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::vec(0..m, 1..(m as usize).min(9)),
        1..users,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// M, S and P agree for every algorithm kind.
    #[test]
    fn strategies_agree(
        posts in posts_strategy(8),
        graph in graph_strategy(8),
        sets in subscriptions_strategy(8, 7),
        lambda_t in 1u64..800,
    ) {
        let config = EngineConfig::new(Thresholds::new(18, lambda_t, 0.7).unwrap());
        let subs = Subscriptions::new(8, sets).unwrap();
        for kind in AlgorithmKind::ALL {
            let mut independent = IndependentMulti::new(kind, config, &graph, subs.clone());
            let mut shared = SharedMulti::new(kind, config, &graph, subs.clone());
            let mut parallel = ParallelShared::new(kind, config, &graph, subs.clone(), 3).unwrap();

            let m_out: Vec<_> = posts.iter().map(|p| independent.offer(p)).collect();
            let s_out: Vec<_> = posts.iter().map(|p| shared.offer(p)).collect();
            let p_out = parallel.process_stream(&posts);
            prop_assert_eq!(&m_out, &s_out, "M vs S diverged for {}", kind);
            prop_assert_eq!(&s_out, &p_out, "S vs P diverged for {}", kind);
        }
    }

    /// Each user's multi-engine stream equals a dedicated single-user engine
    /// over the subgraph induced by her subscriptions.
    #[test]
    fn per_user_streams_match_dedicated_engines(
        posts in posts_strategy(8),
        graph in graph_strategy(8),
        sets in subscriptions_strategy(8, 5),
    ) {
        let config = EngineConfig::paper_defaults();
        let subs = Subscriptions::new(8, sets).unwrap();
        let mut shared =
            SharedMulti::new(AlgorithmKind::UniBin, config, &graph, subs.clone());
        let deliveries: Vec<_> = posts.iter().map(|p| shared.offer(p)).collect();

        let graph = Arc::new(graph);
        for u in 0..subs.user_count() as u32 {
            // Dedicated engine over the user's induced similarity subgraph.
            let gi = Arc::new(graph.induced_subgraph(subs.authors_of(u)));
            let mut engine =
                build_engine(AlgorithmKind::UniBin, config, gi);
            let expected: Vec<u64> = posts
                .iter()
                .filter(|p| subs.is_subscribed(u, p.author))
                .filter(|p| engine.offer(p).is_emitted())
                .map(|p| p.id)
                .collect();
            let got: Vec<u64> = posts
                .iter()
                .zip(&deliveries)
                .filter(|(_, d)| d.delivered_to.contains(&u))
                .map(|(p, _)| p.id)
                .collect();
            prop_assert_eq!(got, expected, "user {} stream diverged", u);
        }
    }

    /// Users subscribed to nothing relevant receive nothing; delivery lists
    /// only ever contain subscribers.
    #[test]
    fn deliveries_respect_subscriptions(
        posts in posts_strategy(8),
        graph in graph_strategy(8),
        sets in subscriptions_strategy(8, 6),
    ) {
        let config = EngineConfig::paper_defaults();
        let subs = Subscriptions::new(8, sets).unwrap();
        let mut shared =
            SharedMulti::new(AlgorithmKind::CliqueBin, config, &graph, subs.clone());
        for post in &posts {
            let d = shared.offer(post);
            for &u in &d.delivered_to {
                prop_assert!(
                    subs.is_subscribed(u, post.author),
                    "user {} got a post from unsubscribed author {}",
                    u,
                    post.author
                );
            }
        }
    }
}
