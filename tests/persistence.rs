//! Persistence round-trips across crates: offline artifacts through
//! `firehose::graph::io`, engine state through `firehose::core::snapshot`,
//! composed the way a deployment would use them.

use std::sync::Arc;

use firehose::core::snapshot::{
    restore_neighborbin, restore_unibin, snapshot_neighborbin, snapshot_unibin,
};
use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose::graph::io::{
    read_cover, read_follower, read_undirected, write_cover, write_follower, write_undirected,
};
use firehose::graph::{build_similarity_graph, greedy_clique_cover, GraphTopology};
use firehose::prelude::*;
use proptest::prelude::*;

fn pipeline_fixture() -> (SyntheticSocialGraph, Workload) {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(3),
            ..Default::default()
        },
    );
    (social, workload)
}

#[test]
fn offline_artifacts_roundtrip_on_real_data() {
    let (social, _) = pipeline_fixture();

    // Follower graph.
    let mut buf = Vec::new();
    write_follower(&social.graph, &mut buf).unwrap();
    let follower = read_follower(&mut buf.as_slice()).unwrap();
    assert_eq!(follower.edge_count(), social.graph.edge_count());

    // Similarity graph built from the *loaded* follower graph must equal the
    // one built from the original.
    let original = build_similarity_graph(&social.graph, 0.7);
    let reloaded = build_similarity_graph(&follower, 0.7);
    assert_eq!(original, reloaded);

    // Similarity graph and cover round-trips.
    let mut buf = Vec::new();
    write_undirected(&original, &mut buf).unwrap();
    let graph2 = read_undirected(&mut buf.as_slice()).unwrap();
    assert_eq!(graph2, original);

    let cover = greedy_clique_cover(&original);
    let mut buf = Vec::new();
    write_cover(&cover, original.node_count(), &mut buf).unwrap();
    let cover2 = read_cover(&mut buf.as_slice()).unwrap();
    cover2.validate(&graph2).unwrap();

    // Topology statistics survive the round-trip.
    let t1 = GraphTopology::measure(&original, &cover);
    let t2 = GraphTopology::measure(&graph2, &cover2);
    assert_eq!(t1, t2);
}

#[test]
fn engine_checkpoint_resumes_identically_on_real_workload() {
    let (social, workload) = pipeline_fixture();
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    let config = EngineConfig::new(Thresholds::paper_defaults());
    let (first, second) = workload.posts.split_at(workload.len() / 2);

    // UniBin.
    let mut engine = UniBin::new(config, Arc::clone(&graph));
    for p in first {
        engine.offer(p);
    }
    let mut buf = Vec::new();
    snapshot_unibin(&engine, &mut buf).unwrap();
    let mut restored = restore_unibin(&mut buf.as_slice(), Arc::clone(&graph)).unwrap();
    for p in second {
        assert_eq!(
            restored.offer(p),
            engine.offer(p),
            "UniBin diverged at post {}",
            p.id
        );
    }
    assert_eq!(restored.metrics(), engine.metrics());

    // NeighborBin.
    let mut engine = NeighborBin::new(config, Arc::clone(&graph));
    for p in first {
        engine.offer(p);
    }
    let mut buf = Vec::new();
    snapshot_neighborbin(&engine, &mut buf).unwrap();
    let mut restored = restore_neighborbin(&mut buf.as_slice(), Arc::clone(&graph)).unwrap();
    for p in second {
        assert_eq!(
            restored.offer(p),
            engine.offer(p),
            "NeighborBin diverged at post {}",
            p.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot/restore at an arbitrary cut point never changes the rest of
    /// the stream's decisions.
    #[test]
    fn snapshot_at_any_point_is_transparent(
        cut in 0usize..60,
        seed in 0u64..50,
    ) {
        let graph = Arc::new(firehose::graph::UndirectedGraph::from_edges(
            6,
            [(0, 1), (1, 2), (3, 4)],
        ));
        let config = EngineConfig::new(Thresholds::new(18, 120_000, 0.7).unwrap());
        let posts: Vec<firehose::stream::Post> = (0..60u64)
            .map(|i| {
                firehose::stream::Post::new(
                    i,
                    ((i + seed) % 6) as u32,
                    i * 10_000,
                    format!("subject {} body text", (i + seed) % 9),
                )
            })
            .collect();
        let cut = cut.min(posts.len());

        let mut engine = UniBin::new(config, Arc::clone(&graph));
        for p in &posts[..cut] {
            engine.offer(p);
        }
        let mut buf = Vec::new();
        snapshot_unibin(&engine, &mut buf).unwrap();
        let mut restored = restore_unibin(&mut buf.as_slice(), Arc::clone(&graph)).unwrap();
        for p in &posts[cut..] {
            prop_assert_eq!(restored.offer(p), engine.offer(p));
        }
    }
}
