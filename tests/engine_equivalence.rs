//! The central correctness property of Section 4: UniBin, NeighborBin and
//! CliqueBin are *exact* index optimizations — all three must emit the same
//! diversified sub-stream, and that sub-stream must match a brute-force
//! reference implementation of the coverage semantics.

use std::sync::Arc;

use firehose::core::covers;
use firehose::prelude::*;
use firehose::stream::PostRecord;
use proptest::prelude::*;

/// Brute-force SPSD: scan all previously emitted records.
fn reference_spsd(
    records: &[PostRecord],
    thresholds: &Thresholds,
    graph: &UndirectedGraph,
) -> Vec<bool> {
    let mut emitted: Vec<PostRecord> = Vec::new();
    records
        .iter()
        .map(|r| {
            let covered = emitted.iter().any(|e| covers(e, r, thresholds, graph));
            if !covered {
                emitted.push(*r);
            }
            !covered
        })
        .collect()
}

fn run_engine(
    kind: AlgorithmKind,
    records: &[PostRecord],
    thresholds: Thresholds,
    graph: &Arc<UndirectedGraph>,
) -> Vec<bool> {
    let mut engine = build_engine(kind, EngineConfig::new(thresholds), Arc::clone(graph));
    records
        .iter()
        .map(|&r| engine.offer_record(r).is_emitted())
        .collect()
}

/// A random stream over `m` authors: timestamps increase by 0..gap steps,
/// fingerprints drawn from a small pool so content collisions actually occur.
fn stream_strategy(m: u32) -> impl Strategy<Value = Vec<PostRecord>> {
    proptest::collection::vec(
        (
            0..m,
            0u64..500,
            proptest::sample::select(vec![0u64, 1, 0xFF, 0xFF00, u64::MAX, 0xF0F0F0F0]),
        ),
        0..80,
    )
    .prop_map(|items| {
        let mut ts = 0u64;
        items
            .into_iter()
            .enumerate()
            .map(|(i, (author, gap, fingerprint))| {
                ts += gap;
                PostRecord {
                    id: i as u64,
                    author,
                    timestamp: ts,
                    fingerprint,
                }
            })
            .collect()
    })
}

fn graph_strategy(m: u32) -> impl Strategy<Value = UndirectedGraph> {
    proptest::collection::vec((0..m, 0..m), 0..40)
        .prop_map(move |edges| UndirectedGraph::from_edges(m as usize, edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All three engines match the brute-force reference on arbitrary
    /// streams, graphs and thresholds.
    #[test]
    fn engines_match_reference(
        records in stream_strategy(12),
        graph in graph_strategy(12),
        lambda_c in 0u32..24,
        lambda_t in 1u64..2_000,
        ) {
        let thresholds = Thresholds::new(lambda_c, lambda_t, 0.7).unwrap();
        let graph = Arc::new(graph);
        let expected = reference_spsd(&records, &thresholds, &graph);
        for kind in AlgorithmKind::ALL {
            let got = run_engine(kind, &records, thresholds, &graph);
            prop_assert_eq!(&got, &expected, "{} diverged from reference", kind);
        }
    }

    /// The coverage invariant: every pruned post is covered by an *earlier
    /// emitted* post within the window; no emitted post is covered by an
    /// earlier emitted post.
    #[test]
    fn coverage_invariant_holds(
        records in stream_strategy(10),
        graph in graph_strategy(10),
        lambda_t in 1u64..1_000,
    ) {
        let thresholds = Thresholds::new(8, lambda_t, 0.7).unwrap();
        let graph = Arc::new(graph);
        let decisions = run_engine(AlgorithmKind::UniBin, &records, thresholds, &graph);

        let mut emitted: Vec<PostRecord> = Vec::new();
        for (r, &keep) in records.iter().zip(&decisions) {
            let covered_by_earlier = emitted.iter().any(|e| covers(e, r, &thresholds, &graph));
            if keep {
                prop_assert!(
                    !covered_by_earlier,
                    "emitted post {} is covered by an earlier emission",
                    r.id
                );
                emitted.push(*r);
            } else {
                prop_assert!(
                    covered_by_earlier,
                    "pruned post {} has no covering emission",
                    r.id
                );
            }
        }
    }

    /// Engines are deterministic: the same stream twice produces the same
    /// decisions and the same counters.
    ///
    /// (Note: emitted-set *cardinality* is deliberately NOT asserted to be
    /// monotone in the thresholds — greedy online diversification is not
    /// monotone: pruning a post removes it from future comparisons, which
    /// can cascade either way.)
    #[test]
    fn engines_are_deterministic(
        records in stream_strategy(10),
        graph in graph_strategy(10),
        lambda_c in 0u32..24,
        lambda_t in 1u64..1_000,
    ) {
        let thresholds = Thresholds::new(lambda_c, lambda_t, 0.7).unwrap();
        let graph = Arc::new(graph);
        for kind in AlgorithmKind::ALL {
            let a = run_engine(kind, &records, thresholds, &graph);
            let b = run_engine(kind, &records, thresholds, &graph);
            prop_assert_eq!(a, b, "{} is nondeterministic", kind);
        }
    }
}

/// The same property over *realistic* inputs: a seeded synthetic social
/// graph, a generated 1k+-post day of traffic with injected near-duplicates,
/// and fingerprints produced by the real text → SimHash pipeline (rather
/// than the small hand-picked fingerprint pool of the proptest strategies
/// above). All three engines must emit the identical sub-stream, and their
/// memory/eviction accounting must match a from-first-principles count of
/// what each index stores: per emitted post still inside the λt window,
/// UniBin holds 1 copy, NeighborBin `degree+1` copies (self + each graph
/// neighbor), CliqueBin one copy per clique of the author (or 1 in its self
/// bin when isolated).
#[test]
fn randomized_workloads_emit_identical_substreams() {
    use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
    use firehose::graph::{build_similarity_graph, greedy_clique_cover};
    use firehose::stream::hours;

    for seed in [0u64, 0xC0FFEE, 9_2016] {
        let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale().with_seed(seed));
        // Stretch the test-scale stream to a full day so well over 1k posts
        // flow through every engine.
        let config = WorkloadConfig {
            duration: hours(24),
            ..WorkloadConfig::default()
        }
        .with_seed(seed);
        let workload = Workload::generate(&social, config);
        assert!(
            workload.len() >= 1_000,
            "workload too small: {} posts",
            workload.len()
        );

        let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
        let cover = greedy_clique_cover(&graph);
        let thresholds = Thresholds::new(18, firehose::stream::minutes(30), 0.7).unwrap();
        // Presize from the true stream rate so the capacity-hint path is
        // exercised too — hints must not change any decision or counter.
        let span_s = (workload.posts.last().unwrap().timestamp
            - workload.posts.first().unwrap().timestamp) as f64
            / 1_000.0;
        let config = EngineConfig::builder(thresholds)
            .expected_rate(workload.len() as f64 / span_s.max(1e-9))
            .build();

        let mut engines: Vec<_> = AlgorithmKind::ALL
            .into_iter()
            .map(|kind| build_engine(kind, config, Arc::clone(&graph)))
            .collect();
        let mut emitted = [0u64; 3];
        let mut emitted_posts: Vec<(u32, u64)> = Vec::new(); // (author, ts)
        for post in &workload.posts {
            let decisions: Vec<bool> = engines
                .iter_mut()
                .map(|e| e.offer(post).is_emitted())
                .collect();
            assert!(
                decisions.iter().all(|&d| d == decisions[0]),
                "engines diverged on post {} (seed {seed}): UniBin={} NeighborBin={} CliqueBin={}",
                post.id,
                decisions[0],
                decisions[1],
                decisions[2]
            );
            for (count, &d) in emitted.iter_mut().zip(&decisions) {
                *count += d as u64;
            }
            if decisions[0] {
                emitted_posts.push((post.author, post.timestamp));
            }
        }
        // The run must have exercised both outcomes to mean anything.
        assert!(emitted[0] > 0, "nothing emitted (seed {seed})");
        assert!(
            emitted[0] < workload.len() as u64,
            "nothing pruned (seed {seed}) — duplicate injection is broken"
        );
        for (e, kind) in engines.iter().zip(AlgorithmKind::ALL) {
            assert_eq!(
                e.metrics().posts_emitted,
                emitted[0],
                "{kind} emitted-counter disagrees with its decisions"
            );
        }

        // Memory / eviction accounting. Eviction is lazy (bins not probed
        // since expiry still hold stale records), so flush everything to the
        // last timestamp first; the surviving copies are then exactly the
        // emitted posts whose timestamp is ≥ last − λt, fanned out per index.
        let last_ts = workload.posts.last().unwrap().timestamp;
        let cutoff = last_ts.saturating_sub(thresholds.lambda_t);
        let live: Vec<(u32, u64)> = emitted_posts
            .iter()
            .copied()
            .filter(|&(_, ts)| ts >= cutoff)
            .collect();
        let expected_copies = [
            live.len() as u64,
            live.iter()
                .map(|&(a, _)| graph.degree(a) as u64 + 1)
                .sum::<u64>(),
            live.iter()
                .map(|&(a, _)| (cover.cliques_of(a).len() as u64).max(1))
                .sum::<u64>(),
        ];
        for ((e, kind), expected) in engines
            .iter_mut()
            .zip(AlgorithmKind::ALL)
            .zip(expected_copies)
        {
            e.evict_expired(last_ts);
            let m = *e.metrics();
            assert_eq!(
                m.copies_stored, expected,
                "{kind} live-copy count (seed {seed})"
            );
            assert_eq!(
                e.memory_bytes(),
                expected * PostRecord::SIZE_BYTES as u64,
                "{kind} memory_bytes (seed {seed})"
            );
            assert_eq!(
                m.evictions,
                m.insertions - m.copies_stored,
                "{kind} eviction count must conserve insertions (seed {seed})"
            );
            assert!(
                m.peak_memory_bytes >= e.memory_bytes(),
                "{kind} peak below live memory (seed {seed})"
            );
        }
    }
}

#[test]
fn empty_stream_is_fine() {
    let graph = Arc::new(UndirectedGraph::new(4));
    for kind in AlgorithmKind::ALL {
        let engine = build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&graph));
        assert_eq!(engine.metrics().posts_processed, 0);
        assert_eq!(engine.memory_bytes(), 0);
    }
}

#[test]
fn single_post_always_emitted() {
    let graph = Arc::new(UndirectedGraph::new(2));
    let record = PostRecord {
        id: 9,
        author: 1,
        timestamp: 42,
        fingerprint: 0xDEAD,
    };
    for kind in AlgorithmKind::ALL {
        let mut engine = build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&graph));
        assert!(engine.offer_record(record).is_emitted(), "{kind}");
    }
}
