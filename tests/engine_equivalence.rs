//! The central correctness property of Section 4: UniBin, NeighborBin and
//! CliqueBin are *exact* index optimizations — all three must emit the same
//! diversified sub-stream, and that sub-stream must match a brute-force
//! reference implementation of the coverage semantics.

use std::sync::Arc;

use firehose::core::engine::{build_engine, AlgorithmKind};
use firehose::core::{covers, EngineConfig, Thresholds};
use firehose::graph::UndirectedGraph;
use firehose::stream::PostRecord;
use proptest::prelude::*;

/// Brute-force SPSD: scan all previously emitted records.
fn reference_spsd(
    records: &[PostRecord],
    thresholds: &Thresholds,
    graph: &UndirectedGraph,
) -> Vec<bool> {
    let mut emitted: Vec<PostRecord> = Vec::new();
    records
        .iter()
        .map(|r| {
            let covered = emitted.iter().any(|e| covers(e, r, thresholds, graph));
            if !covered {
                emitted.push(*r);
            }
            !covered
        })
        .collect()
}

fn run_engine(
    kind: AlgorithmKind,
    records: &[PostRecord],
    thresholds: Thresholds,
    graph: &Arc<UndirectedGraph>,
) -> Vec<bool> {
    let mut engine = build_engine(kind, EngineConfig::new(thresholds), Arc::clone(graph));
    records.iter().map(|&r| engine.offer_record(r).is_emitted()).collect()
}

/// A random stream over `m` authors: timestamps increase by 0..gap steps,
/// fingerprints drawn from a small pool so content collisions actually occur.
fn stream_strategy(m: u32) -> impl Strategy<Value = Vec<PostRecord>> {
    proptest::collection::vec(
        (0..m, 0u64..500, proptest::sample::select(vec![0u64, 1, 0xFF, 0xFF00, u64::MAX, 0xF0F0F0F0])),
        0..80,
    )
    .prop_map(|items| {
        let mut ts = 0u64;
        items
            .into_iter()
            .enumerate()
            .map(|(i, (author, gap, fingerprint))| {
                ts += gap;
                PostRecord { id: i as u64, author, timestamp: ts, fingerprint }
            })
            .collect()
    })
}

fn graph_strategy(m: u32) -> impl Strategy<Value = UndirectedGraph> {
    proptest::collection::vec((0..m, 0..m), 0..40)
        .prop_map(move |edges| UndirectedGraph::from_edges(m as usize, edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All three engines match the brute-force reference on arbitrary
    /// streams, graphs and thresholds.
    #[test]
    fn engines_match_reference(
        records in stream_strategy(12),
        graph in graph_strategy(12),
        lambda_c in 0u32..24,
        lambda_t in 1u64..2_000,
        ) {
        let thresholds = Thresholds::new(lambda_c, lambda_t, 0.7).unwrap();
        let graph = Arc::new(graph);
        let expected = reference_spsd(&records, &thresholds, &graph);
        for kind in AlgorithmKind::ALL {
            let got = run_engine(kind, &records, thresholds, &graph);
            prop_assert_eq!(&got, &expected, "{} diverged from reference", kind);
        }
    }

    /// The coverage invariant: every pruned post is covered by an *earlier
    /// emitted* post within the window; no emitted post is covered by an
    /// earlier emitted post.
    #[test]
    fn coverage_invariant_holds(
        records in stream_strategy(10),
        graph in graph_strategy(10),
        lambda_t in 1u64..1_000,
    ) {
        let thresholds = Thresholds::new(8, lambda_t, 0.7).unwrap();
        let graph = Arc::new(graph);
        let decisions = run_engine(AlgorithmKind::UniBin, &records, thresholds, &graph);

        let mut emitted: Vec<PostRecord> = Vec::new();
        for (r, &keep) in records.iter().zip(&decisions) {
            let covered_by_earlier = emitted.iter().any(|e| covers(e, r, &thresholds, &graph));
            if keep {
                prop_assert!(
                    !covered_by_earlier,
                    "emitted post {} is covered by an earlier emission",
                    r.id
                );
                emitted.push(*r);
            } else {
                prop_assert!(
                    covered_by_earlier,
                    "pruned post {} has no covering emission",
                    r.id
                );
            }
        }
    }

    /// Engines are deterministic: the same stream twice produces the same
    /// decisions and the same counters.
    ///
    /// (Note: emitted-set *cardinality* is deliberately NOT asserted to be
    /// monotone in the thresholds — greedy online diversification is not
    /// monotone: pruning a post removes it from future comparisons, which
    /// can cascade either way.)
    #[test]
    fn engines_are_deterministic(
        records in stream_strategy(10),
        graph in graph_strategy(10),
        lambda_c in 0u32..24,
        lambda_t in 1u64..1_000,
    ) {
        let thresholds = Thresholds::new(lambda_c, lambda_t, 0.7).unwrap();
        let graph = Arc::new(graph);
        for kind in AlgorithmKind::ALL {
            let a = run_engine(kind, &records, thresholds, &graph);
            let b = run_engine(kind, &records, thresholds, &graph);
            prop_assert_eq!(a, b, "{} is nondeterministic", kind);
        }
    }
}

#[test]
fn empty_stream_is_fine() {
    let graph = Arc::new(UndirectedGraph::new(4));
    for kind in AlgorithmKind::ALL {
        let engine = build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&graph));
        assert_eq!(engine.metrics().posts_processed, 0);
        assert_eq!(engine.memory_bytes(), 0);
    }
}

#[test]
fn single_post_always_emitted() {
    let graph = Arc::new(UndirectedGraph::new(2));
    let record = PostRecord { id: 9, author: 1, timestamp: 42, fingerprint: 0xDEAD };
    for kind in AlgorithmKind::ALL {
        let mut engine =
            build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&graph));
        assert!(engine.offer_record(record).is_emitted(), "{kind}");
    }
}
