//! Loopback integration tests for the TCP/HTTP serving layer.
//!
//! The load-bearing assertion: the decision stream a client reads over a
//! **real socket** is byte-identical to what an identically-configured
//! in-process [`FirehoseService`] emits for the same trace — ingest, churn
//! ops, and per-user streamed deliveries included, against both the shared
//! and the pipelined `sharded:2` strategies. Plus a fuzz case: malformed,
//! truncated, and oversized requests get typed protocol errors and cost the
//! peer its connection, never the server.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use firehose::core::multi::Subscriptions;
use firehose::core::service::{FirehoseService, StrategyKind};
use firehose::core::{EngineConfig, Thresholds};
use firehose::graph::UndirectedGraph;
use firehose::net::server::{decision_line, delivery_line};
use firehose::net::{HttpClient, Server, ServerConfig};
use firehose::obs::Registry;
use firehose::stream::{corpus, Post};

const AUTHORS: usize = 10;

fn graph() -> UndirectedGraph {
    UndirectedGraph::from_edges(AUTHORS, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)])
}

fn subscriptions() -> Subscriptions {
    Subscriptions::new(
        AUTHORS,
        [vec![0, 1, 2], vec![2, 3, 4], vec![5, 6, 7, 8], vec![0, 9]],
    )
    .unwrap()
}

fn service(strategy: StrategyKind) -> FirehoseService {
    let graph = graph();
    FirehoseService::builder(&graph, subscriptions())
        .strategy(strategy)
        .engine_config(EngineConfig::new(Thresholds::new(18, 30_000, 0.7).unwrap()))
        .build()
        .unwrap()
}

/// A deterministic little trace: enough text variety that some posts are
/// suppressed as near-duplicates and some delivered, across all users.
fn posts() -> Vec<Post> {
    let texts = [
        "breaking news about the big game tonight",
        "breaking news about the big game tonight!!",
        "my cat discovered a sunbeam this morning",
        "thoughts on the new compiler release candidate",
        "the big game tonight was truly something else",
        "a completely unrelated musing on sourdough starters",
        "my cat discovered a sunbeam this morning again",
        "compiler release candidate notes, part two",
    ];
    (0..32u64)
        .map(|i| {
            Post::new(
                i + 1,
                (i % AUTHORS as u64) as u32,
                i * 2_000,
                texts[i as usize % texts.len()].to_string(),
            )
        })
        .collect()
}

/// Churn applied mid-trace, in `ChurnOp` text form (`POST /churn` body).
const CHURN: &str = "subscribe\t3\t5\nadd-user\t1,4,9\nunsubscribe\t0\t1\n";

fn boot(strategy: StrategyKind) -> (SocketAddr, firehose::net::ShutdownHandle, ServerJoin) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            allow_shutdown: true,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let registry = Arc::new(Registry::new());
    let svc = service(strategy);
    let join = std::thread::spawn(move || server.serve(svc, registry));
    (addr, handle, join)
}

type ServerJoin =
    std::thread::JoinHandle<Result<firehose::net::ServeReport, firehose::net::NetError>>;

/// Drive the full wire session against `strategy` and assert byte-identity
/// with the in-process facade on the same trace.
fn assert_wire_matches_in_process(strategy: StrategyKind) {
    let posts = posts();
    let split = posts.len() / 2;

    // In-process reference: same batches, same churn position.
    let mut reference = service(strategy);
    let mut expected_decisions = String::new();
    let mut expected_deliveries: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 8];
    let mut sink = |post: &Post, d: &firehose::core::multi::MultiDecision| {
        expected_decisions.push_str(&decision_line(post.id, &d.delivered_to));
        for &u in &d.delivered_to {
            let ring = &mut expected_deliveries[u as usize];
            ring.push(delivery_line(ring.len() as u64, post));
        }
    };
    reference
        .process_batch(posts[..split].iter().cloned(), &mut sink)
        .unwrap();
    for line in CHURN.lines() {
        reference.apply(&line.parse().unwrap()).unwrap();
    }
    reference
        .process_batch(posts[split..].iter().cloned(), &mut sink)
        .unwrap();

    // The same session over the wire.
    let (addr, _handle, join) = boot(strategy);
    let mut client = HttpClient::connect(addr).unwrap();

    let mut body = Vec::new();
    corpus::write_posts(&posts[..split], &mut body).unwrap();
    let first = client.request("POST", "/ingest", &body).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());

    let churn = client.request("POST", "/churn", CHURN.as_bytes()).unwrap();
    assert_eq!(churn.status, 200, "{}", churn.text());
    let churn_lines: Vec<&str> = churn.text().lines().map(|_| "").collect();
    assert_eq!(churn_lines.len(), 3, "one response line per churn op");
    assert!(
        churn.text().lines().all(|l| l.starts_with("ok")),
        "all churn ops valid: {}",
        churn.text()
    );
    // add-user allocated user id 4 on both sides.
    assert!(
        churn.text().lines().any(|l| l == "ok\t4"),
        "{}",
        churn.text()
    );

    let mut body = Vec::new();
    corpus::write_posts(&posts[split..], &mut body).unwrap();
    let second = client.request("POST", "/ingest", &body).unwrap();
    assert_eq!(second.status, 200, "{}", second.text());

    let wire_decisions = format!("{}{}", first.text(), second.text());
    assert_eq!(
        wire_decisions, expected_decisions,
        "wire decisions must be byte-identical to the in-process facade ({strategy:?})"
    );

    // Per-user streams replay the exact delivery lines, seq-prefixed.
    for user in 0..5u32 {
        let expected: Vec<u8> = expected_deliveries[user as usize].concat();
        let resp = client
            .request("GET", &format!("/stream/{user}?from=0&max=1000"), b"")
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body, expected,
            "user {user} stream bytes ({strategy:?})"
        );
    }

    // /metrics exposes engine + serving instruments over the wire.
    let metrics = client.request("GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("firehose_net_posts_ingested_total"), "{text}");
    assert!(text.contains("firehose_posts_processed_total"), "{text}");

    // /healthz reports a healthy serving state.
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"status\":\"ok\""),
        "{}",
        health.text()
    );
    assert!(
        health.text().contains("\"churn_ops\":3"),
        "{}",
        health.text()
    );

    let shutdown = client.request("POST", "/shutdown", b"").unwrap();
    assert_eq!(shutdown.status, 200);
    let report = join.join().unwrap().unwrap();
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.posts_ingested, posts.len() as u64);
}

#[test]
fn wire_decisions_match_in_process_shared() {
    assert_wire_matches_in_process(StrategyKind::Shared);
}

#[test]
fn wire_decisions_match_in_process_sharded() {
    assert_wire_matches_in_process(StrategyKind::Sharded { shards: 2 });
}

#[test]
fn malformed_and_short_read_requests_never_kill_the_server() {
    let (addr, handle, join) = boot(StrategyKind::Shared);

    // 1. Garbage request line → 400, typed error, connection closed.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GARBAGE\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    // 2. Unsupported method → 405.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"DELETE /ingest HTTP/1.1\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

    // 3. Oversized headers → 431 without buffering forever.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let junk = vec![b'x'; 64 * 1024];
    let _ = s.write_all(&junk); // server may close mid-write; either is fine
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");

    // 4. Short read: a request truncated mid-body, then the peer vanishes.
    //    The server must just drop the connection.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly-a-fragment")
        .unwrap();
    drop(s);

    // 5. Declared body over the cap → 413 before any buffering.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"POST /ingest HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");

    // 6. A syntactically valid request with a malformed corpus body → 400,
    //    and the connection stays usable (keep-alive preserved).
    let mut client = HttpClient::connect(addr).unwrap();
    let bad = client
        .request(
            "POST",
            "/ingest",
            b"not\ta\tvalid\tpost\tline\twith\textras\n",
        )
        .unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    let unknown = client.request("GET", "/no/such/route", b"").unwrap();
    assert_eq!(unknown.status, 404);

    // After all that abuse the server still serves normal traffic.
    let posts = posts();
    let mut body = Vec::new();
    corpus::write_posts(&posts[..4], &mut body).unwrap();
    let ok = client.request("POST", "/ingest", &body).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());
    assert_eq!(ok.text().lines().count(), 4);
    let health = client.request("GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);

    handle.shutdown();
    let report = join.join().unwrap().unwrap();
    assert!(
        report.protocol_errors >= 4,
        "typed protocol errors were counted: {report:?}"
    );
}

#[test]
fn stream_long_poll_parks_until_data_arrives() {
    let (addr, handle, join) = boot(StrategyKind::Shared);
    let posts = posts();

    // Reader parked with a wait budget before any posts exist.
    let reader = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.set_read_timeout(Duration::from_secs(10)).unwrap();
        client
            .request("GET", "/stream/0?from=0&max=2&wait_ms=5000", b"")
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(150));

    let mut ingest = HttpClient::connect(addr).unwrap();
    let mut body = Vec::new();
    corpus::write_posts(&posts[..6], &mut body).unwrap();
    let resp = ingest.request("POST", "/ingest", &body).unwrap();
    assert_eq!(resp.status, 200);

    let streamed = reader.join().unwrap();
    assert_eq!(streamed.status, 200);
    let text = streamed.text();
    assert!(
        !text.is_empty(),
        "parked long-poll received deliveries once ingest ran"
    );
    for line in text.lines() {
        let seq: u64 = line.split('\t').next().unwrap().parse().unwrap();
        assert!(seq < 2, "seq-prefixed delivery lines, max=2 honored");
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}
