//! Long-run soak tests — `cargo test -- --ignored` to run.
//!
//! The evaluation streams one day; a deployed engine runs indefinitely.
//! These tests stream a simulated week and check that state stays bounded
//! (the λt window, not the stream length, governs memory) and that the
//! workload calibration is not a single-seed fluke.

use std::sync::Arc;

use firehose::core::engine::{build_engine, AlgorithmKind};
use firehose::core::EngineConfig;
use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose::graph::build_similarity_graph;
use firehose::stream::days;

#[test]
#[ignore = "slow: streams a simulated week"]
fn week_long_stream_keeps_memory_bounded() {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: days(7),
            ..WorkloadConfig::default()
        },
    );
    assert!(
        workload.len() > 10_000,
        "a week should hold plenty of posts"
    );

    for kind in AlgorithmKind::ALL {
        let mut engine = build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&graph));
        // Measure the day-1 peak, then verify the week never exceeds a small
        // multiple of it: the window is ~30 minutes, so day 7 looks like day 1.
        let day1_end = workload.posts.partition_point(|p| p.timestamp < days(1));
        for post in &workload.posts[..day1_end] {
            engine.offer(post);
        }
        let day1_peak = engine.metrics().peak_copies.max(1);
        for post in &workload.posts[day1_end..] {
            engine.offer(post);
        }
        let week_peak = engine.metrics().peak_copies;
        assert!(
            week_peak <= day1_peak * 3,
            "{kind}: week peak {week_peak} vs day-1 peak {day1_peak} — state is growing"
        );
        // Decisions keep flowing: the last day prunes in the usual band.
        let pruned = 1.0 - engine.metrics().emit_ratio();
        assert!(
            (0.02..0.35).contains(&pruned),
            "{kind}: pruning drifted to {pruned}"
        );
    }
}

#[test]
#[ignore = "slow: regenerates the workload under several seeds"]
fn calibration_is_seed_robust() {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    for seed in [1u64, 2, 3, 4, 5] {
        let workload = Workload::generate(
            &social,
            WorkloadConfig {
                duration: firehose::stream::hours(12),
                ..WorkloadConfig::default()
            }
            .with_seed(seed),
        );
        let mut engine = build_engine(
            AlgorithmKind::UniBin,
            EngineConfig::paper_defaults(),
            Arc::clone(&graph),
        );
        for post in &workload.posts {
            engine.offer(post);
        }
        let pruned = 1.0 - engine.metrics().emit_ratio();
        assert!(
            (0.04..0.25).contains(&pruned),
            "seed {seed}: pruning {pruned:.3} outside the calibrated band"
        );
    }
}
