//! Exact vs approximate memory mode: the differential quality contract.
//!
//! [`MemoryMode::Approx`] is *not* decision-identical to exact mode — its
//! contract is the declared [`DeltaBounds`]: one-sided error (it never
//! prunes a post exact mode would have to deliver, so coverage violations
//! stay zero), delivery ratio and residual redundancy within the published
//! deltas, and a real RAM reduction. These tests hold the approximate
//! engines to that contract on seeded synthetic workloads in the regime
//! the mode is declared for (λc = 12 near-duplicates over a 24 h window,
//! the `memory_bench` configuration), and pin down the properties that
//! must stay *exact* even in approximate mode: decision determinism across
//! mid-stream snapshot/checkpoint/restore, with and without subscription
//! churn.

use std::sync::Arc;

use firehose::core::checkpoint::{checkpoint_multi_to_vec, restore_multi_from_slice};
use firehose::core::snapshot::{
    restore_cliquebin, restore_neighborbin, restore_unibin, snapshot_cliquebin,
    snapshot_neighborbin, snapshot_unibin,
};
use firehose::core::{quality, DeltaBounds, QualityGate};
use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose::graph::build_similarity_graph;
use firehose::prelude::*;
use firehose::stream::{hours, AuthorId, Post, PostRecord};
use proptest::prelude::*;

/// Full-recall probe count for λc = 12 (`probes − 1 ≥ λc`, the prefix
/// layout's pigeonhole bound) — same as `memory_bench`.
const PROBES: u32 = 13;
/// Stream size matching the bench's `--smoke` row, where the declared
/// bounds are known to hold with margin.
const TARGET_POSTS: usize = 4_000;

fn thresholds() -> Thresholds {
    Thresholds::new(12, hours(24), 0.7).unwrap()
}

/// Per-kind approx tuning and RAM floor, mirroring `memory_bench`: UniBin
/// holds one engine-wide bin and must clear the headline 10×; the
/// per-author / per-clique engines split the same stream over thousands of
/// small bins whose fixed floors cap the reduction, so they gate at 2×.
fn case(kind: AlgorithmKind) -> (ApproxConfig, f64) {
    let declared = DeltaBounds::declared();
    match kind {
        AlgorithmKind::UniBin => (
            ApproxConfig::new(PROBES, 8, 16).unwrap(),
            declared.min_ram_reduction,
        ),
        AlgorithmKind::NeighborBin | AlgorithmKind::CliqueBin => {
            (ApproxConfig::new(PROBES, 4, 16).unwrap(), 2.0)
        }
    }
}

/// A seeded day of synthetic traffic plus the similarity graph it plays
/// against, sized like the bench's smoke row.
fn seeded_workload(seed: u64) -> (Arc<UndirectedGraph>, Vec<Post>) {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale().with_seed(seed));
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            posts_per_author_per_day: TARGET_POSTS as f64 / social.author_count() as f64,
            ..WorkloadConfig::default()
        }
        .with_seed(seed),
    );
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    (graph, workload.posts)
}

fn run(
    kind: AlgorithmKind,
    config: EngineConfig,
    graph: &Arc<UndirectedGraph>,
    posts: &[Post],
) -> (Vec<bool>, u64) {
    let mut engine = build_engine(kind, config, Arc::clone(graph));
    let decisions = posts.iter().map(|p| engine.offer(p).is_emitted()).collect();
    (decisions, engine.metrics().peak_memory_bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The headline differential property: on seeded workloads every
    /// approximate engine stays within the declared [`DeltaBounds`] of its
    /// exact twin — zero coverage violations (one-sided error), delivery
    /// and redundancy deltas within bounds, RAM floor cleared.
    #[test]
    fn approx_stays_within_declared_bounds_of_exact(seed in any::<u64>()) {
        let (graph, posts) = seeded_workload(seed);
        let t = thresholds();
        let exact_config = EngineConfig::builder(t).build();
        let records: Vec<PostRecord> =
            posts.iter().map(|p| p.to_record(exact_config.simhash)).collect();

        for kind in AlgorithmKind::ALL {
            let (approx_cfg, min_ram) = case(kind);
            let approx_config = EngineConfig::builder(t)
                .memory(MemoryMode::Approx(approx_cfg))
                .build();

            let (exact_decisions, exact_peak) = run(kind, exact_config, &graph, &posts);
            let (approx_decisions, approx_peak) = run(kind, approx_config, &graph, &posts);

            let exact_report = quality::evaluate(&records, &exact_decisions, &t, &graph);
            let approx_report = quality::evaluate(&records, &approx_decisions, &t, &graph);
            prop_assert_eq!(
                approx_report.coverage_violations, 0,
                "{} (seed {}): approx pruned a post with no genuine cover",
                kind, seed
            );

            let gate = QualityGate::new(DeltaBounds {
                min_ram_reduction: min_ram,
                ..DeltaBounds::declared()
            });
            let verdict = gate.verdict(&exact_report, &approx_report, exact_peak, approx_peak);
            prop_assert!(
                verdict.pass,
                "{} (seed {}) failed the declared gate:\n{}",
                kind, seed, verdict
            );
        }
    }
}

/// Approximate-mode decisions must be *deterministic* across a mid-stream
/// snapshot/restore: the restored engine and the uninterrupted one make
/// identical decisions on the rest of a realistic workload — the tiered
/// store's retention layout (active bucket, decimated closed buckets) is
/// part of snapshotted state, not an artifact of process lifetime.
#[test]
fn approx_snapshot_midstream_is_decision_identical() {
    let (graph, posts) = seeded_workload(0xBEEF);
    let t = thresholds();
    let mid = posts.len() / 2;
    for kind in AlgorithmKind::ALL {
        let (approx_cfg, _) = case(kind);
        let config = EngineConfig::builder(t)
            .memory(MemoryMode::Approx(approx_cfg))
            .build();
        let mut buf = Vec::new();
        let (mut original, mut restored): (Box<dyn Diversifier>, Box<dyn Diversifier>) = match kind
        {
            AlgorithmKind::UniBin => {
                let mut engine = UniBin::new(config, Arc::clone(&graph));
                for p in &posts[..mid] {
                    engine.offer(p);
                }
                snapshot_unibin(&engine, &mut buf).unwrap();
                let restored = restore_unibin(&mut buf.as_slice(), Arc::clone(&graph)).unwrap();
                (Box::new(engine), Box::new(restored))
            }
            AlgorithmKind::NeighborBin => {
                let mut engine = NeighborBin::new(config, Arc::clone(&graph));
                for p in &posts[..mid] {
                    engine.offer(p);
                }
                snapshot_neighborbin(&engine, &mut buf).unwrap();
                let restored =
                    restore_neighborbin(&mut buf.as_slice(), Arc::clone(&graph)).unwrap();
                (Box::new(engine), Box::new(restored))
            }
            AlgorithmKind::CliqueBin => {
                let mut engine = CliqueBin::new(config, Arc::clone(&graph));
                for p in &posts[..mid] {
                    engine.offer(p);
                }
                snapshot_cliquebin(&engine, &mut buf).unwrap();
                let cover = Arc::new(firehose::graph::greedy_clique_cover(&graph));
                let restored =
                    restore_cliquebin(&mut buf.as_slice(), Arc::clone(&graph), cover).unwrap();
                (Box::new(engine), Box::new(restored))
            }
        };
        for p in &posts[mid..] {
            assert_eq!(
                restored.offer(p).is_emitted(),
                original.offer(p).is_emitted(),
                "{kind}: restored approx engine diverged at post {}",
                p.id
            );
        }
        assert_eq!(
            restored.metrics(),
            original.metrics(),
            "{kind}: counters diverged after restore"
        );
    }
}

// ---------------------------------------------------------------------------
// Multi-user strategies: churn + checkpoint in approximate mode.
// ---------------------------------------------------------------------------

const AUTHORS: usize = 12;

fn multi_graph() -> UndirectedGraph {
    UndirectedGraph::from_edges(AUTHORS, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (8, 9)])
}

fn multi_subs() -> Subscriptions {
    Subscriptions::new(
        AUTHORS,
        vec![
            vec![0, 1, 3],
            vec![2, 5],
            vec![4, 8, 9],
            vec![10],
            vec![0, 7, 11],
            vec![6],
        ],
    )
    .unwrap()
}

/// Deterministic multi-user stream in the declared near-duplicate regime:
/// posts every ~20 s across a 24 h window (so the λt = 24 h window never
/// expires and the approximate store's retention actually matters), mostly
/// unique content plus a 25 % rate of short-lag duplicates (4 or 8 minutes
/// back — inside the active bucket's full-fidelity span). The author cycle
/// has period 12, so a lag of 12 or 24 posts lands on the *same author* and
/// the copy is a genuine cover for exact mode too.
fn multi_posts(n: u64) -> Vec<Post> {
    let mut posts: Vec<Post> = Vec::with_capacity(n as usize);
    for i in 0..n {
        // `i % 5` dup condition with lag 12/24 keeps the base itself unique
        // (`i - lag ≢ 0 mod 5`): the cover is a freshly delivered post a few
        // minutes back, not the head of an hours-long duplicate chain.
        let text = if i % 5 == 0 && i >= 24 {
            let lag = if i % 10 == 0 { 24 } else { 12 };
            posts[(i - lag) as usize].text.clone()
        } else {
            // Every token is distinct per post — no shared template words,
            // so distinct posts land ~32 bits apart and only literal copies
            // fall within λc.
            format!(
                "a{}q b{}r c{}s d{}t e{}u",
                i * 7 % 9_973,
                i * 13 % 9_973,
                i * 29 % 9_973,
                i * 37 % 9_973,
                i * 53 % 9_973
            )
        };
        posts.push(Post::new(
            i,
            ((i * 5 + 3) % AUTHORS as u64) as AuthorId,
            i * 19_997,
            text,
        ));
    }
    posts
}

fn multi_config(memory: MemoryMode) -> EngineConfig {
    EngineConfig::builder(thresholds()).memory(memory).build()
}

fn approx_multi(subs: Subscriptions) -> SharedMulti {
    SharedMulti::builder(
        AlgorithmKind::UniBin,
        multi_config(MemoryMode::Approx(
            ApproxConfig::new(PROBES, 8, 16).unwrap(),
        )),
        &multi_graph(),
        subs,
    )
    .build()
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Churn + mid-stream checkpoint/restore in approximate mode is
    /// deterministic: a checkpoint taken halfway through a churning stream
    /// restores (into a strategy built from the *initial* table) to
    /// delivery-identical decisions on the rest of the stream, including
    /// further churn applied to both sides.
    #[test]
    fn approx_checkpoint_across_churn_is_delivery_identical(
        ops in proptest::collection::vec((0u32..6, 0u32..AUTHORS as u32, any::<bool>()), 0..24),
    ) {
        let posts = multi_posts(600);
        let mid = posts.len() / 2;
        let (first_ops, rest_ops) = ops.split_at(ops.len() / 2);

        let mut original = approx_multi(multi_subs());
        let mut op_stream = first_ops.iter().cycle();
        for (i, p) in posts[..mid].iter().enumerate() {
            if i % 40 == 0 && !first_ops.is_empty() {
                let &(u, a, sub) = op_stream.next().unwrap();
                if sub {
                    let _ = original.subscribe(u, a);
                } else {
                    let _ = original.unsubscribe(u, a);
                }
            }
            original.offer(p);
        }

        let bytes = checkpoint_multi_to_vec(&original, 7).unwrap();
        let mut restored = approx_multi(multi_subs());
        let manifest = restore_multi_from_slice(&bytes, &mut restored).unwrap();
        prop_assert_eq!(manifest.generation, 7);

        let mut op_stream = rest_ops.iter().cycle();
        for (i, p) in posts[mid..].iter().enumerate() {
            if i % 40 == 0 && !rest_ops.is_empty() {
                let &(u, a, sub) = op_stream.next().unwrap();
                if sub {
                    let _ = original.subscribe(u, a);
                    let _ = restored.subscribe(u, a);
                } else {
                    let _ = original.unsubscribe(u, a);
                    let _ = restored.unsubscribe(u, a);
                }
            }
            prop_assert_eq!(
                restored.offer(p).delivered_to,
                original.offer(p).delivered_to,
                "restored approx strategy diverged at post {}",
                p.id
            );
        }
        prop_assert_eq!(original.memory_bytes(), restored.memory_bytes());
    }
}

/// Exact vs approximate through the multi-user strategy under live churn:
/// the total delivered volume stays within the declared delivery-ratio
/// delta, and the approximate side ends the day with strictly less window
/// state — the single-engine bounds survive the subscription-churn algebra
/// (component splits/merges rebuild approximate engines too).
#[test]
fn approx_multi_under_churn_stays_within_delivery_delta() {
    let posts = multi_posts(6_000);
    let churn: [(u32, u32, bool); 6] = [
        (3, 4, true),
        (1, 0, true),
        (0, 1, false),
        (5, 6, false),
        (2, 11, true),
        (4, 0, false),
    ];

    let mut exact = SharedMulti::builder(
        AlgorithmKind::UniBin,
        multi_config(MemoryMode::Exact),
        &multi_graph(),
        multi_subs(),
    )
    .build()
    .unwrap();
    let mut approx = approx_multi(multi_subs());

    let mut exact_deliveries = 0u64;
    let mut approx_deliveries = 0u64;
    let mut op_stream = churn.iter().cycle();
    for (i, p) in posts.iter().enumerate() {
        if i % 150 == 0 {
            let &(u, a, sub) = op_stream.next().unwrap();
            if sub {
                let _ = exact.subscribe(u, a);
                let _ = approx.subscribe(u, a);
            } else {
                let _ = exact.unsubscribe(u, a);
                let _ = approx.unsubscribe(u, a);
            }
        }
        exact_deliveries += exact.offer(p).delivered_to.len() as u64;
        approx_deliveries += approx.offer(p).delivered_to.len() as u64;
    }

    let delta = (approx_deliveries as f64 - exact_deliveries as f64).abs() / posts.len() as f64;
    let bound = DeltaBounds::declared().max_delivery_ratio_delta;
    assert!(
        delta <= bound,
        "churned delivery delta {delta:.4} exceeds declared bound {bound} \
         (exact {exact_deliveries}, approx {approx_deliveries})"
    );
    assert!(
        approx.memory_bytes() < exact.memory_bytes(),
        "approx mode holds no less window state than exact ({} vs {} bytes)",
        approx.memory_bytes(),
        exact.memory_bytes()
    );
}
