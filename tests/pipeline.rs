//! End-to-end pipeline tests on a realistic (small-scale) synthetic
//! workload: generator → similarity graph → engines → metrics, checking the
//! qualitative relationships the paper's evaluation rests on.

use std::sync::Arc;

use firehose::datagen::{SocialGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig};
use firehose::graph::{build_similarity_graph, greedy_clique_cover};
use firehose::prelude::*;
use firehose::simhash::{simhash, HammingIndex, SimHashOptions};

struct Setup {
    graph: Arc<UndirectedGraph>,
    workload: Workload,
}

fn setup() -> Setup {
    let social = SyntheticSocialGraph::generate(SocialGenConfig::test_scale());
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(6),
            ..WorkloadConfig::default()
        },
    );
    let graph = Arc::new(build_similarity_graph(&social.graph, 0.7));
    Setup { graph, workload }
}

fn run(setup: &Setup, kind: AlgorithmKind) -> firehose::core::EngineMetrics {
    let mut engine = build_engine(
        kind,
        EngineConfig::paper_defaults(),
        Arc::clone(&setup.graph),
    );
    for post in &setup.workload.posts {
        engine.offer(post);
    }
    *engine.metrics()
}

#[test]
fn all_engines_emit_identical_streams_on_real_workload() {
    let s = setup();
    let emitted: Vec<Vec<u64>> = AlgorithmKind::ALL
        .into_iter()
        .map(|kind| {
            let mut engine =
                build_engine(kind, EngineConfig::paper_defaults(), Arc::clone(&s.graph));
            s.workload
                .posts
                .iter()
                .filter(|p| engine.offer(p).is_emitted())
                .map(|p| p.id)
                .collect()
        })
        .collect();
    assert_eq!(emitted[0], emitted[1], "UniBin vs NeighborBin");
    assert_eq!(emitted[0], emitted[2], "UniBin vs CliqueBin");
    assert!(!emitted[0].is_empty());
}

#[test]
fn workload_pruning_is_in_the_papers_regime() {
    let s = setup();
    let metrics = run(&s, AlgorithmKind::UniBin);
    let pruned = 1.0 - metrics.emit_ratio();
    // The paper prunes ≈10% at default thresholds; tolerate generator noise
    // at the tiny test scale.
    assert!(
        (0.02..0.30).contains(&pruned),
        "pruning {pruned:.3} outside plausible band"
    );
}

#[test]
fn table3_orderings_on_real_workload() {
    let s = setup();
    let uni = run(&s, AlgorithmKind::UniBin);
    let nb = run(&s, AlgorithmKind::NeighborBin);
    let cb = run(&s, AlgorithmKind::CliqueBin);

    // RAM: Uni < Clique < Neighbor.
    assert!(
        uni.peak_copies < cb.peak_copies,
        "UniBin must use least RAM"
    );
    assert!(
        cb.peak_copies < nb.peak_copies,
        "CliqueBin must beat NeighborBin on RAM"
    );
    // Insertions: Uni < Clique < Neighbor.
    assert!(uni.insertions < cb.insertions);
    assert!(cb.insertions < nb.insertions);
    // Comparisons: Neighbor is the floor.
    assert!(
        nb.comparisons < uni.comparisons,
        "NeighborBin must beat UniBin on comparisons"
    );
    // All process the same stream and emit the same count.
    assert_eq!(uni.posts_emitted, nb.posts_emitted);
    assert_eq!(uni.posts_emitted, cb.posts_emitted);
}

#[test]
fn smaller_lambda_t_means_less_work() {
    let s = setup();
    let run_with = |lt| {
        let config = EngineConfig::new(Thresholds::new(18, lt, 0.7).unwrap());
        let mut engine = build_engine(AlgorithmKind::UniBin, config, Arc::clone(&s.graph));
        for post in &s.workload.posts {
            engine.offer(post);
        }
        *engine.metrics()
    };
    let short = run_with(minutes(5));
    let long = run_with(minutes(60));
    assert!(short.comparisons < long.comparisons);
    assert!(short.peak_copies <= long.peak_copies);
}

#[test]
fn injected_duplicates_are_what_gets_pruned() {
    let s = setup();
    let mut engine = build_engine(
        AlgorithmKind::UniBin,
        EngineConfig::paper_defaults(),
        Arc::clone(&s.graph),
    );
    let mut pruned_dup = 0usize;
    let mut pruned_fresh = 0usize;
    for (i, post) in s.workload.posts.iter().enumerate() {
        if !engine.offer(post).is_emitted() {
            if s.workload.duplicate_of[i].is_some() {
                pruned_dup += 1;
            } else {
                pruned_fresh += 1;
            }
        }
    }
    assert!(
        pruned_dup > pruned_fresh,
        "pruning should hit injected near-duplicates first ({pruned_dup} vs {pruned_fresh})"
    );
}

#[test]
fn clique_cover_scales_on_real_similarity_graph() {
    let s = setup();
    let cover = greedy_clique_cover(&s.graph);
    cover.validate(&s.graph).expect("valid cover");
    assert!(cover.count() > 0);
    // Sanity: the per-author membership (c) stays within an order of
    // magnitude of the degree — no pathological blow-up.
    let c = cover.avg_cliques_per_member();
    let d = s.graph.average_degree();
    assert!(c < d * 2.0, "cover exploded: c={c:.1} vs d={d:.1}");
}

#[test]
fn manku_index_agrees_with_linear_scan_on_real_fingerprints() {
    let s = setup();
    let fingerprints: Vec<u64> = s
        .workload
        .posts
        .iter()
        .take(400)
        .map(|p| simhash(&p.text, SimHashOptions::paper()))
        .collect();
    let mut index = HammingIndex::new(6).unwrap();
    for &fp in &fingerprints {
        index.insert(fp);
    }
    let mut got = Vec::new();
    for &q in fingerprints.iter().take(50) {
        index.query_into(q, &mut got);
        let expected: Vec<u32> = fingerprints
            .iter()
            .enumerate()
            .filter(|&(_, &fp)| firehose::simhash::hamming_distance(fp, q) <= 6)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(got, expected);
    }
}
