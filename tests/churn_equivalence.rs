//! Churn equivalence: live subscription management must converge to exactly
//! what a freshly built strategy over the final subscription table produces.
//!
//! Three levels, from strongest to weakest guarantee:
//!
//! 1. **Structural** — churn applied *before any posts* yields a strategy
//!    whose entire stream is decision-identical to a fresh build from the
//!    final table (the component split/merge algebra is exact).
//! 2. **Post-quiet-gap** — churn interleaved *mid-stream* yields identical
//!    decisions once `λt` of stream time separates the churn from the probe
//!    (stale window records cannot cover across the gap).
//! 3. **Warm-start window** — inside `λt` of a churn op, a warm-started
//!    engine may legitimately diverge from a cold rebuild: affected users
//!    keep their recently-shown posts as coverage.
//!
//! Plus checkpoint-across-churn: a checkpoint taken mid-churn restores (into
//! a strategy built from the *initial* table, and across shard counts) to
//! identical future decisions.

use firehose::core::checkpoint::{checkpoint_multi_to_vec, restore_multi_from_slice};
use firehose::core::engine::AlgorithmKind;
use firehose::core::multi::{
    IndependentMulti, MultiDecision, MultiDiversifier, ParallelShared, ShardedMulti, SharedMulti,
    Subscriptions,
};
use firehose::core::{EngineConfig, Thresholds};
use firehose::datagen::{generate_churn_trace, ChurnEvent, ChurnGenConfig, ChurnTraceEntry};
use firehose::graph::UndirectedGraph;
use firehose::stream::{AuthorId, Post};
use proptest::prelude::*;

const AUTHORS: usize = 12;
const LAMBDA_T: u64 = 30_000;

fn graph() -> UndirectedGraph {
    UndirectedGraph::from_edges(AUTHORS, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (8, 9)])
}

fn config() -> EngineConfig {
    EngineConfig::new(Thresholds::new(18, LAMBDA_T, 0.7).unwrap())
}

fn initial_sets() -> Vec<Vec<AuthorId>> {
    vec![
        vec![0, 1, 3],
        vec![2, 5],
        vec![4, 8, 9],
        vec![10],
        vec![0, 7, 11],
        vec![6],
    ]
}

fn subs() -> Subscriptions {
    Subscriptions::new(AUTHORS, initial_sets()).unwrap()
}

/// Deterministic stream segment: `n` posts starting at (`first_id`,
/// `start_ts`), cycling authors, five near-duplicate text groups.
fn posts(n: u64, first_id: u64, start_ts: u64) -> Vec<Post> {
    (0..n)
        .map(|i| {
            Post::new(
                first_id + i,
                ((i * 5 + 3) % AUTHORS as u64) as AuthorId,
                start_ts + i * 997,
                format!("breaking news item in content group {}", i % 5),
            )
        })
        .collect()
}

#[derive(Clone, Copy, Debug)]
enum Variant {
    M,
    S,
    P(usize),
    Sh(usize),
}

const VARIANTS: [Variant; 7] = [
    Variant::M,
    Variant::S,
    Variant::P(1),
    Variant::P(2),
    Variant::P(4),
    Variant::Sh(2),
    Variant::Sh(4),
];

fn build(
    kind: AlgorithmKind,
    variant: Variant,
    subscriptions: Subscriptions,
    warm: bool,
) -> Box<dyn MultiDiversifier + Send> {
    let graph = graph();
    match variant {
        Variant::M => Box::new(
            IndependentMulti::builder(kind, config(), &graph, subscriptions)
                .warm_start(warm)
                .build()
                .unwrap(),
        ),
        Variant::S => Box::new(
            SharedMulti::builder(kind, config(), &graph, subscriptions)
                .warm_start(warm)
                .build()
                .unwrap(),
        ),
        Variant::P(threads) => Box::new(
            ParallelShared::builder(kind, config(), &graph, subscriptions)
                .threads(threads)
                .warm_start(warm)
                .build()
                .unwrap(),
        ),
        Variant::Sh(shards) => Box::new(
            ShardedMulti::builder(kind, config(), &graph, subscriptions)
                .shards(shards)
                .warm_start(warm)
                .build()
                .unwrap(),
        ),
    }
}

fn apply(multi: &mut dyn MultiDiversifier, event: &ChurnEvent) {
    match event {
        ChurnEvent::Subscribe(u, a) => {
            multi.subscribe(*u as u32, *a).unwrap();
        }
        ChurnEvent::Unsubscribe(u, a) => {
            multi.unsubscribe(*u as u32, *a).unwrap();
        }
        ChurnEvent::AddUser(authors) => {
            multi.add_user(authors).unwrap();
        }
        ChurnEvent::RemoveUser(u) => {
            multi.remove_user(*u as u32).unwrap();
        }
    }
}

fn offer_all(multi: &mut dyn MultiDiversifier, posts: &[Post]) -> Vec<MultiDecision> {
    // Exercise the buffer-reusing entry point on one side so both paths are
    // under test.
    let mut out = Vec::with_capacity(posts.len());
    let mut scratch = MultiDecision::default();
    for post in posts {
        multi.offer_into(post, &mut scratch);
        out.push(scratch.clone());
    }
    out
}

/// Level 1: any seeded op sequence applied before the first post is
/// decision-identical to a fresh build from the resulting table — every
/// kind, every strategy, warm and cold.
#[test]
fn churn_before_posts_matches_fresh_build() {
    let trace = generate_churn_trace(
        AUTHORS,
        &initial_sets(),
        1,
        ChurnGenConfig {
            ops: 40,
            ..Default::default()
        },
    );
    let stream = posts(150, 1, 0);
    for kind in AlgorithmKind::ALL {
        for variant in VARIANTS {
            for warm in [true, false] {
                let mut churned = build(kind, variant, subs(), warm);
                for entry in &trace {
                    apply(churned.as_mut(), &entry.event);
                }
                assert!(churned.churn_stats().ops_total() > 0);

                let mut fresh = build(kind, variant, churned.subscriptions().clone(), warm);
                let got = offer_all(churned.as_mut(), &stream);
                let want: Vec<MultiDecision> = stream.iter().map(|p| fresh.offer(p)).collect();
                assert_eq!(
                    got, want,
                    "{kind} {variant:?} warm={warm}: churned-then-stream diverged from fresh build"
                );
            }
        }
    }
}

/// Level 2: churn interleaved mid-stream converges — after a λt quiet gap,
/// the churned strategy's decisions equal a fresh build from the final
/// table (which never saw the pre-gap stream at all).
#[test]
fn churn_mid_stream_matches_fresh_after_quiet_gap() {
    let first_half = posts(100, 1, 0);
    let trace = generate_churn_trace(
        AUTHORS,
        &initial_sets(),
        first_half.len() as u64,
        ChurnGenConfig {
            ops: 30,
            ..Default::default()
        },
    );
    let gap_start = first_half.last().unwrap().timestamp + LAMBDA_T + 1_000;
    let second_half = posts(120, 1_000, gap_start);

    for kind in AlgorithmKind::ALL {
        for variant in VARIANTS {
            for warm in [true, false] {
                let mut churned = build(kind, variant, subs(), warm);
                let mut next = 0;
                for (i, post) in first_half.iter().enumerate() {
                    while next < trace.len() && trace[next].after_posts <= i as u64 {
                        apply(churned.as_mut(), &trace[next].event);
                        next += 1;
                    }
                    churned.offer(post);
                }
                for entry in &trace[next..] {
                    apply(churned.as_mut(), &entry.event);
                }

                let mut fresh = build(kind, variant, churned.subscriptions().clone(), warm);
                let got = offer_all(churned.as_mut(), &second_half);
                let want: Vec<MultiDecision> = second_half.iter().map(|p| fresh.offer(p)).collect();
                assert_eq!(
                    got, want,
                    "{kind} {variant:?} warm={warm}: post-gap stream diverged from fresh build"
                );
            }
        }
    }
}

/// Level 3: inside λt, warm start is a *feature* — the newly wired engine
/// keeps the user's recently-shown posts as coverage, so a near-duplicate
/// right after a subscribe is suppressed where a cold rebuild re-shows it.
#[test]
fn warm_start_diverges_from_cold_within_lambda_t() {
    let subscriptions = Subscriptions::new(2, [vec![0]]).unwrap();
    let graph = UndirectedGraph::from_edges(2, [(0, 1)]);
    let run = |warm: bool| {
        let mut multi = SharedMulti::builder(
            AlgorithmKind::UniBin,
            config(),
            &graph,
            subscriptions.clone(),
        )
        .warm_start(warm)
        .build()
        .unwrap();
        let seen = multi.offer(&Post::new(1, 0, 0, "identical breaking story".into()));
        assert_eq!(seen.delivered_to, [0]);
        multi.subscribe(0, 1).unwrap();
        // Near-duplicate from the newly-followed, similar author, within λt.
        multi.offer(&Post::new(2, 1, 5_000, "identical breaking story".into()))
    };
    assert_eq!(
        run(true).delivered_to,
        Vec::<u32>::new(),
        "warm start must keep post 1 as coverage"
    );
    assert_eq!(
        run(false).delivered_to,
        [0],
        "cold rebuild forgets the window and re-delivers"
    );
}

/// A subscribe that bridges two populated singleton components must gather
/// warm-start seeds from BOTH released engines. Regression test: each
/// engine's `window_records` used to sort the *whole* shared buffer, so the
/// second engine's pass shuffled the first engine's already-globalized
/// records into its own translation range — an out-of-bounds panic (or a
/// silent mistranslation) whenever post ids interleaved across components.
#[test]
fn merge_collects_seeds_from_two_released_engines() {
    let graph = UndirectedGraph::from_edges(6, [(3, 4), (4, 5)]);
    let subscriptions = Subscriptions::new(6, [vec![3, 5]]).unwrap();
    let mut multi = SharedMulti::builder(AlgorithmKind::UniBin, config(), &graph, subscriptions)
        .warm_start(true)
        .build()
        .unwrap();
    // Components {3} and {5}; ids 1 and 3 land in {3}, id 2 in {5}, so the
    // id-sorted seed buffer interleaves the two engines' records.
    let delivered = [
        multi.offer(&Post::new(
            1,
            3,
            0,
            "quarterly earnings call transcript".into(),
        )),
        multi.offer(&Post::new(
            2,
            5,
            1_000,
            "marathon route closes downtown".into(),
        )),
        multi.offer(&Post::new(
            3,
            3,
            2_000,
            "volcano erupts on remote island".into(),
        )),
    ];
    for d in &delivered {
        assert_eq!(d.delivered_to, [0], "every setup post must enter a window");
    }

    multi.subscribe(0, 4).unwrap();
    let stats = multi.churn_stats();
    assert_eq!(stats.engines_spawned, 1);
    assert_eq!(stats.engines_retired, 2);
    assert_eq!(stats.warm_starts, 1);
    // The merged engine inherited all three records: a near-duplicate of
    // each, posted by the bridging author within λt, is suppressed.
    for (id, text) in [
        (4, "quarterly earnings call transcript"),
        (5, "marathon route closes downtown"),
        (6, "volcano erupts on remote island"),
    ] {
        assert_eq!(
            multi
                .offer(&Post::new(id, 4, 3_000 + id, text.into()))
                .delivered_to,
            Vec::<u32>::new(),
            "post {id} must be covered by an inherited seed"
        );
    }
}

/// Regression: a merge-inducing subscribe against *live window content*
/// must register a warm start — on every strategy variant and through the
/// `FirehoseService` facade. The churn bench reported `warm_starts: 0`
/// across 1,642 spawns for several releases because it replayed churn
/// against an idle service (empty windows yield no seeds, so the warm path
/// never fired); this pins the behavior the bench now measures.
#[test]
fn merge_inducing_subscribe_records_warm_start() {
    let seed_post = || Post::new(1, 0, 1_000, "breaking story everyone reposts".into());
    for kind in AlgorithmKind::ALL {
        for variant in VARIANTS {
            let subscriptions = Subscriptions::new(AUTHORS, [vec![0]]).unwrap();
            let mut multi = build(kind, variant, subscriptions, true);
            assert_eq!(multi.offer(&seed_post()).delivered_to, [0]);
            assert_eq!(multi.churn_stats().warm_starts, 0);
            // Graph edge (0, 1): adding author 1 merges it into user 0's
            // populated component, spawning a seeded replacement engine.
            multi.subscribe(0, 1).unwrap();
            let stats = multi.churn_stats();
            assert!(
                stats.warm_starts > 0,
                "{kind} {variant:?}: spawned {} engines but warm-started none",
                stats.engines_spawned
            );
        }
    }

    // Same scenario through the service facade (what churn_bench drives).
    let mut service = firehose::core::FirehoseService::builder(
        &graph(),
        Subscriptions::new(AUTHORS, [vec![0]]).unwrap(),
    )
    .engine_config(config())
    .build()
    .unwrap();
    service.process(seed_post(), |_, _| {}).unwrap();
    assert_eq!(service.churn_stats().warm_starts, 0);
    service.subscribe(0, 1).unwrap();
    assert!(
        service.churn_stats().warm_starts > 0,
        "service facade must warm-start the merged engine"
    );
}

/// Checkpoint-across-churn: a checkpoint taken after posts + churn restores
/// into a strategy built from the *initial* table (the embedded
/// subscription table wins) and continues decision-identically.
#[test]
fn checkpoint_across_churn_restores_identical_decisions() {
    let first_half = posts(80, 1, 0);
    let second_half = posts(80, 1_000, first_half.last().unwrap().timestamp + 997);
    let trace = generate_churn_trace(
        AUTHORS,
        &initial_sets(),
        1,
        ChurnGenConfig {
            ops: 25,
            ..Default::default()
        },
    );
    for variant in [Variant::S, Variant::P(2), Variant::Sh(2)] {
        let mut original = build(AlgorithmKind::UniBin, variant, subs(), true);
        for post in &first_half {
            original.offer(post);
        }
        for entry in &trace {
            apply(original.as_mut(), &entry.event);
        }
        let buf = checkpoint_multi_to_vec(original.as_ref(), 7).unwrap();

        // The restore target starts from the INITIAL table; the checkpoint
        // carries the churned one.
        let mut restored = build(AlgorithmKind::UniBin, variant, subs(), true);
        let manifest = restore_multi_from_slice(&buf, restored.as_mut()).unwrap();
        assert_eq!(manifest.generation, 7);
        assert_eq!(
            restored.churn_stats(),
            original.churn_stats(),
            "churn ledger must survive restore"
        );
        assert_eq!(restored.subscriptions(), original.subscriptions());
        for post in &second_half {
            assert_eq!(
                restored.offer(post).delivered_to,
                original.offer(post).delivered_to,
                "{variant:?}: post-restore decisions diverged"
            );
        }
    }
}

/// Shard-count independence: the engine-state bytes of a churned
/// `ParallelShared` load into a different thread count (and into
/// `SharedMulti`) with identical future decisions.
#[test]
fn churned_state_restores_across_shard_counts() {
    let first_half = posts(60, 1, 0);
    let second_half = posts(60, 1_000, first_half.last().unwrap().timestamp + 997);
    let trace = generate_churn_trace(
        AUTHORS,
        &initial_sets(),
        1,
        ChurnGenConfig {
            ops: 20,
            ..Default::default()
        },
    );
    let mut original = build(AlgorithmKind::UniBin, Variant::P(2), subs(), true);
    for post in &first_half {
        original.offer(post);
    }
    for entry in &trace {
        apply(original.as_mut(), &entry.event);
    }
    let mut state = Vec::new();
    original.save_state(&mut state).unwrap();

    for target in [Variant::P(4), Variant::P(1), Variant::S, Variant::Sh(3)] {
        let mut restored = build(AlgorithmKind::UniBin, target, subs(), true);
        let mut r: &[u8] = &state;
        restored.load_state(&mut r).unwrap();
        assert!(r.is_empty(), "state must be consumed exactly");
        assert_eq!(restored.subscriptions(), original.subscriptions());
        let got = offer_all(restored.as_mut(), &second_half);
        let mut continued = build(AlgorithmKind::UniBin, Variant::P(2), subs(), true);
        let mut r: &[u8] = &state;
        continued.load_state(&mut r).unwrap();
        let want = offer_all(continued.as_mut(), &second_half);
        assert_eq!(got, want, "{target:?}: cross-shard restore diverged");
    }
}

/// Replay `stream` with `trace` ops interleaved at their recorded
/// positions (trailing ops applied after the stream), collecting every
/// decision.
fn run_interleaved(
    multi: &mut dyn MultiDiversifier,
    stream: &[Post],
    trace: &[ChurnTraceEntry],
) -> Vec<MultiDecision> {
    let mut decisions = Vec::with_capacity(stream.len());
    let mut next = 0;
    for (i, post) in stream.iter().enumerate() {
        while next < trace.len() && trace[next].after_posts <= i as u64 {
            apply(multi, &trace[next].event);
            next += 1;
        }
        decisions.push(multi.offer(post));
    }
    for entry in &trace[next..] {
        apply(multi, &entry.event);
    }
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharded equivalence under interleaving: for seeded random churn
    /// traces woven into the post stream, `ShardedMulti` at 1/2/4 shards
    /// produces decision-for-decision and ledger-identical runs to
    /// `SharedMulti` — including when the sharded run is interrupted by a
    /// mid-stream checkpoint that restores into a *fresh* sharded instance
    /// (built from the initial table) which then finishes the stream.
    #[test]
    fn sharded_interleaved_churn_matches_shared_multi(
        seed in 0u64..1_000_000,
        ops in 6usize..24,
        n_posts in 50u64..110,
    ) {
        let stream = posts(n_posts, 1, 0);
        let trace = generate_churn_trace(
            AUTHORS,
            &initial_sets(),
            n_posts,
            ChurnGenConfig { seed, ops, ..Default::default() },
        );
        let checkpoint_at = (n_posts / 2) as usize;

        let mut reference = build(AlgorithmKind::UniBin, Variant::S, subs(), true);
        let expected = run_interleaved(reference.as_mut(), &stream, &trace);

        for shards in [1usize, 2, 4] {
            let mut sh = build(AlgorithmKind::UniBin, Variant::Sh(shards), subs(), true);
            let mut got = Vec::with_capacity(stream.len());
            let mut next = 0;
            for (i, post) in stream.iter().enumerate() {
                while next < trace.len() && trace[next].after_posts <= i as u64 {
                    apply(sh.as_mut(), &trace[next].event);
                    next += 1;
                }
                got.push(sh.offer(post));
                if i + 1 == checkpoint_at {
                    // Mid-stream handoff: checkpoint, then continue on a
                    // freshly built instance restored from those bytes.
                    let buf = checkpoint_multi_to_vec(sh.as_ref(), 1).unwrap();
                    let mut restored =
                        build(AlgorithmKind::UniBin, Variant::Sh(shards), subs(), true);
                    restore_multi_from_slice(&buf, restored.as_mut()).unwrap();
                    sh = restored;
                }
            }
            for entry in &trace[next..] {
                apply(sh.as_mut(), &entry.event);
            }
            prop_assert_eq!(&got, &expected, "shards={}: decisions diverged", shards);
            prop_assert_eq!(
                sh.churn_stats(),
                reference.churn_stats(),
                "shards={}: churn ledger diverged",
                shards
            );
            prop_assert_eq!(sh.subscriptions(), reference.subscriptions());
        }
    }
}
