//! Self-healing equivalence: a supervised sharded [`FirehoseService`]
//! (checkpoints + replay log) whose workers are killed mid-stream must
//! deliver **byte-identical decisions** to an unfaulted `S_*` run of the
//! same posts and churn ops.
//!
//! The proptest interleaves seeded churn traces into the post stream,
//! checkpoints on a cadence, and schedules deterministic shard kills (one
//! guaranteed to land mid-stream on shard 0, plus seed-derived extras) at
//! 1, 2 and 4 shards. Whatever the interleaving, the healed run and the
//! unfaulted run must agree post for post — recovery is allowed to cost
//! time, never fidelity.

use firehose::core::engine::AlgorithmKind;
use firehose::core::multi::{MultiDecision, Subscriptions};
use firehose::core::{CheckpointPolicy, EngineConfig, FirehoseService, StrategyKind, Thresholds};
use firehose::datagen::{generate_churn_trace, ChurnEvent, ChurnGenConfig, ChurnTraceEntry};
use firehose::graph::UndirectedGraph;
use firehose::stream::{AuthorId, Post, ShardFaultKind, ShardFaultPlan};
use proptest::prelude::*;

const AUTHORS: usize = 12;
const LAMBDA_T: u64 = 30_000;

fn graph() -> UndirectedGraph {
    UndirectedGraph::from_edges(AUTHORS, [(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (8, 9)])
}

fn config() -> EngineConfig {
    EngineConfig::new(Thresholds::new(18, LAMBDA_T, 0.7).unwrap())
}

fn initial_sets() -> Vec<Vec<AuthorId>> {
    vec![
        vec![0, 1, 3],
        vec![2, 5],
        vec![4, 8, 9],
        vec![10],
        vec![0, 7, 11],
        vec![6],
    ]
}

fn subs() -> Subscriptions {
    Subscriptions::new(AUTHORS, initial_sets()).unwrap()
}

/// Deterministic stream segment: `n` posts cycling authors, five
/// near-duplicate text groups.
fn posts(n: u64) -> Vec<Post> {
    (0..n)
        .map(|i| {
            Post::new(
                1 + i,
                ((i * 5 + 3) % AUTHORS as u64) as AuthorId,
                i * 997,
                format!("breaking news item in content group {}", i % 5),
            )
        })
        .collect()
}

fn apply(service: &mut FirehoseService, event: &ChurnEvent) {
    match event {
        ChurnEvent::Subscribe(u, a) => {
            service.subscribe(*u as u32, *a).unwrap();
        }
        ChurnEvent::Unsubscribe(u, a) => {
            service.unsubscribe(*u as u32, *a).unwrap();
        }
        ChurnEvent::AddUser(authors) => {
            service.add_user(authors.iter().copied()).unwrap();
        }
        ChurnEvent::RemoveUser(u) => {
            service.remove_user(*u as u32).unwrap();
        }
    }
}

/// Feed `stream` with `trace` ops interleaved at their recorded positions,
/// collecting every delivered decision in order.
fn run_interleaved(
    service: &mut FirehoseService,
    stream: &[Post],
    trace: &[ChurnTraceEntry],
) -> Vec<MultiDecision> {
    let mut decisions = Vec::with_capacity(stream.len());
    let mut next = 0;
    for (i, post) in stream.iter().enumerate() {
        while next < trace.len() && trace[next].after_posts <= i as u64 {
            apply(service, &trace[next].event);
            next += 1;
        }
        service
            .process(post.clone(), |_, decision| decisions.push(decision.clone()))
            .expect("supervised service must heal, not fail");
    }
    for entry in &trace[next..] {
        apply(service, &entry.event);
    }
    decisions
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("fh-resilience-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For seeded random churn traces woven into the stream, a supervised
    /// sharded service at 1/2/4 shards — checkpointing on a cadence and
    /// killed by a deterministic fault schedule — delivers exactly the
    /// decisions of an unfaulted `S_*` service, and converges to the same
    /// subscription table.
    #[test]
    fn killed_sharded_service_matches_unfaulted_run(
        seed in 0u64..1_000_000,
        ops in 5usize..16,
        n_posts in 40u64..90,
    ) {
        let graph = graph();
        let stream = posts(n_posts);
        let trace = generate_churn_trace(
            AUTHORS,
            &initial_sets(),
            n_posts,
            ChurnGenConfig { seed, ops, ..Default::default() },
        );

        let mut reference = FirehoseService::builder(&graph, subs())
            .strategy(StrategyKind::Shared)
            .algorithm(AlgorithmKind::UniBin)
            .engine_config(config())
            .build()
            .unwrap();
        let expected = run_interleaved(&mut reference, &stream, &trace);
        // Deploys count toward a worker's request total; the guaranteed
        // kill must land past shard 0's deploy wave to hit the stream.
        let engines = reference.churn_stats().initial_engines;

        for shards in [1usize, 2, 4] {
            let deploys = engines.div_ceil(shards as u64);
            let plan = ShardFaultPlan::single(0, deploys + 5, ShardFaultKind::Panic)
                .then(seed as usize % shards, deploys + 10 + seed % 30, ShardFaultKind::Panic)
                .then(
                    (seed / 3) as usize % shards,
                    deploys + 15 + (seed / 7) % 40,
                    ShardFaultKind::Panic,
                );
            let dir = tempdir(&format!("{seed}-{shards}"));
            let mut faulted = FirehoseService::builder(&graph, subs())
                .strategy(StrategyKind::Sharded { shards })
                .algorithm(AlgorithmKind::UniBin)
                .engine_config(config())
                .checkpoints(
                    &dir,
                    CheckpointPolicy {
                        every_offers: (n_posts / 4).max(1),
                        every_millis: None,
                        keep: 3,
                    },
                )
                .chaos(plan)
                .build()
                .unwrap();
            let got = run_interleaved(&mut faulted, &stream, &trace);

            prop_assert_eq!(&got, &expected, "shards={}: decisions diverged", shards);
            prop_assert_eq!(
                faulted.subscriptions(),
                reference.subscriptions(),
                "shards={}: subscription tables diverged",
                shards
            );
            let r = faulted.resilience_stats();
            prop_assert!(
                r.restarts >= 1,
                "shards={}: the scheduled kill never fired mid-stream",
                shards
            );
            prop_assert!(r.recoveries >= 1, "shards={}: no heal ran", shards);
            drop(faulted);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
