//! Backward compatibility against committed binary fixtures.
//!
//! `tests/fixtures/` holds snapshots and checkpoints captured from the
//! pre-churn code (`main` before the FHSNAP04 bump): FHSNAP03 single-engine
//! snapshots for all three kinds, and FHCKPT01 multi checkpoints whose
//! state sections use the legacy position-ordered blob layout (no magic, no
//! subscription table, no churn ledger). The current readers must restore
//! all of them and continue decision-identically — a format bump must never
//! orphan deployed checkpoint directories.
//!
//! Fixture recipe (frozen; do NOT regenerate with current code): 6-author
//! graph `[(0,1),(0,5),(3,4)]`, thresholds `(18, 30_000 ms, 0.5)`, posts
//! `id=i, author=i%6, ts=i*5000, text="content group {i%9}"` for `i in
//! 0..60`, first 30 offered before capture; subscriptions
//! `[[0,1,3,5],[0,1,3,4,5],[2]]`; multi checkpoints at generation 5.

use std::path::PathBuf;
use std::sync::Arc;

use firehose::core::checkpoint::restore_multi_from_slice;
use firehose::core::engine::{AlgorithmKind, CliqueBin, Diversifier, NeighborBin, UniBin};
use firehose::core::multi::{IndependentMulti, MultiDiversifier, SharedMulti, Subscriptions};
use firehose::core::snapshot::{restore_cliquebin, restore_neighborbin, restore_unibin};
use firehose::core::{EngineConfig, Thresholds};
use firehose::graph::{greedy_clique_cover, UndirectedGraph};
use firehose::stream::Post;

type MultiFactory = fn() -> Box<dyn MultiDiversifier>;

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn graph() -> Arc<UndirectedGraph> {
    Arc::new(UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]))
}

fn config() -> EngineConfig {
    EngineConfig::new(Thresholds::new(18, 30_000, 0.5).unwrap())
}

fn posts() -> Vec<Post> {
    (0..60u64)
        .map(|i| {
            Post::new(
                i,
                (i % 6) as u32,
                i * 5_000,
                format!("content group {}", i % 9),
            )
        })
        .collect()
}

fn subscriptions() -> Subscriptions {
    Subscriptions::new(6, vec![vec![0, 1, 3, 5], vec![0, 1, 3, 4, 5], vec![2]]).unwrap()
}

/// Every FHSNAP03 engine snapshot restores under the FHSNAP04 reader and
/// continues exactly where the pre-bump engine left off.
#[test]
fn fhsnap03_engine_snapshots_restore_and_continue() {
    let stream = posts();
    for kind in AlgorithmKind::ALL {
        let name = format!("fhsnap03_{}.bin", kind.to_string().to_lowercase());
        let bytes = fixture(&name);
        let mut restored: Box<dyn Diversifier> = match kind {
            AlgorithmKind::UniBin => {
                Box::new(restore_unibin(&mut &bytes[..], graph()).expect("restore FHSNAP03"))
            }
            AlgorithmKind::NeighborBin => {
                Box::new(restore_neighborbin(&mut &bytes[..], graph()).expect("restore FHSNAP03"))
            }
            AlgorithmKind::CliqueBin => {
                let cover = Arc::new(greedy_clique_cover(&graph()));
                Box::new(
                    restore_cliquebin(&mut &bytes[..], graph(), cover).expect("restore FHSNAP03"),
                )
            }
        };
        assert_eq!(restored.metrics().posts_processed, 30, "{name}");

        let mut fresh: Box<dyn Diversifier> = match kind {
            AlgorithmKind::UniBin => Box::new(UniBin::new(config(), graph())),
            AlgorithmKind::NeighborBin => Box::new(NeighborBin::new(config(), graph())),
            AlgorithmKind::CliqueBin => Box::new(CliqueBin::new(config(), graph())),
        };
        for p in &stream[..30] {
            fresh.offer(p);
        }
        for p in &stream[30..] {
            assert_eq!(
                restored.offer(p).is_emitted(),
                fresh.offer(p).is_emitted(),
                "{name}: decision diverged at post {}",
                p.id
            );
        }
        assert_eq!(
            restored.metrics().posts_emitted,
            fresh.metrics().posts_emitted
        );
    }
}

/// Legacy (pre-FHSNAP04) multi checkpoints — position-ordered engine blobs
/// with no embedded subscription table — restore into a freshly built
/// strategy and continue decision-identically.
#[test]
fn legacy_multi_checkpoints_restore_and_continue() {
    let stream = posts();
    let cases: [(&str, MultiFactory); 2] = [
        ("fhckpt_legacy_s_unibin.bin", || {
            Box::new(SharedMulti::new(
                AlgorithmKind::UniBin,
                config(),
                &UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]),
                subscriptions(),
            ))
        }),
        ("fhckpt_legacy_m_unibin.bin", || {
            Box::new(IndependentMulti::new(
                AlgorithmKind::UniBin,
                config(),
                &UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]),
                subscriptions(),
            ))
        }),
    ];
    for (name, build) in cases {
        let bytes = fixture(name);
        let mut restored = build();
        let manifest = restore_multi_from_slice(&bytes, restored.as_mut())
            .unwrap_or_else(|e| panic!("{name}: legacy restore failed: {e}"));
        assert_eq!(manifest.generation, 5, "{name}");
        // Pre-churn checkpoints carry no ledger: everything starts at zero.
        assert_eq!(restored.churn_stats().ops_total(), 0, "{name}");

        let mut fresh = build();
        for p in &stream[..30] {
            fresh.offer(p);
        }
        for p in &stream[30..] {
            assert_eq!(
                restored.offer(p).delivered_to,
                fresh.offer(p).delivered_to,
                "{name}: delivery diverged at post {}",
                p.id
            );
        }
        // Churn still works on a legacy-restored strategy.
        restored.subscribe(2, 4).unwrap();
        assert_eq!(restored.churn_stats().subscribes, 1, "{name}");
    }
}
