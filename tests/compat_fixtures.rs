//! Backward compatibility against committed binary fixtures.
//!
//! `tests/fixtures/` holds snapshots and checkpoints captured from older
//! code: FHSNAP03 single-engine snapshots for all three kinds and FHCKPT01
//! multi checkpoints (legacy position-ordered blobs, no magic, no
//! subscription table, no churn ledger) from `main` before the FHSNAP04
//! bump, plus `fhsnap04_exact_*` snapshots captured from the pre-approx
//! FHSNAP04 writer (the wire-serving release, before the memory-mode
//! sentinel existed). The current readers must restore all of them and
//! continue decision-identically — a format bump must never orphan deployed
//! checkpoint directories — and the pre-approx FHSNAP04 snapshots must
//! restore into [`MemoryMode::Exact`] with byte-identical re-capture, since
//! exact-mode snapshots are declared byte-stable across the approx release.
//!
//! Fixture recipe (frozen; do NOT regenerate with current code): 6-author
//! graph `[(0,1),(0,5),(3,4)]`, thresholds `(18, 30_000 ms, 0.5)`, posts
//! `id=i, author=i%6, ts=i*5000, text="content group {i%9}"` for `i in
//! 0..60`, first 30 offered before capture; subscriptions
//! `[[0,1,3,5],[0,1,3,4,5],[2]]`; multi checkpoints at generation 5.

use std::path::PathBuf;
use std::sync::Arc;

use firehose::core::checkpoint::restore_multi_from_slice;
use firehose::core::engine::{AlgorithmKind, CliqueBin, Diversifier, NeighborBin, UniBin};
use firehose::core::multi::{IndependentMulti, MultiDiversifier, SharedMulti, Subscriptions};
use firehose::core::snapshot::{
    restore_cliquebin, restore_neighborbin, restore_unibin, snapshot_cliquebin,
    snapshot_neighborbin, snapshot_unibin,
};
use firehose::core::{EngineConfig, MemoryMode, Thresholds};
use firehose::graph::{greedy_clique_cover, UndirectedGraph};
use firehose::stream::Post;

type MultiFactory = fn() -> Box<dyn MultiDiversifier>;

fn fixture(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn graph() -> Arc<UndirectedGraph> {
    Arc::new(UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]))
}

fn config() -> EngineConfig {
    EngineConfig::new(Thresholds::new(18, 30_000, 0.5).unwrap())
}

fn posts() -> Vec<Post> {
    (0..60u64)
        .map(|i| {
            Post::new(
                i,
                (i % 6) as u32,
                i * 5_000,
                format!("content group {}", i % 9),
            )
        })
        .collect()
}

fn subscriptions() -> Subscriptions {
    Subscriptions::new(6, vec![vec![0, 1, 3, 5], vec![0, 1, 3, 4, 5], vec![2]]).unwrap()
}

/// Every FHSNAP03 engine snapshot restores under the FHSNAP04 reader and
/// continues exactly where the pre-bump engine left off.
#[test]
fn fhsnap03_engine_snapshots_restore_and_continue() {
    let stream = posts();
    for kind in AlgorithmKind::ALL {
        let name = format!("fhsnap03_{}.bin", kind.to_string().to_lowercase());
        let bytes = fixture(&name);
        let mut restored: Box<dyn Diversifier> = match kind {
            AlgorithmKind::UniBin => {
                Box::new(restore_unibin(&mut &bytes[..], graph()).expect("restore FHSNAP03"))
            }
            AlgorithmKind::NeighborBin => {
                Box::new(restore_neighborbin(&mut &bytes[..], graph()).expect("restore FHSNAP03"))
            }
            AlgorithmKind::CliqueBin => {
                let cover = Arc::new(greedy_clique_cover(&graph()));
                Box::new(
                    restore_cliquebin(&mut &bytes[..], graph(), cover).expect("restore FHSNAP03"),
                )
            }
        };
        assert_eq!(restored.metrics().posts_processed, 30, "{name}");

        let mut fresh: Box<dyn Diversifier> = match kind {
            AlgorithmKind::UniBin => Box::new(UniBin::new(config(), graph())),
            AlgorithmKind::NeighborBin => Box::new(NeighborBin::new(config(), graph())),
            AlgorithmKind::CliqueBin => Box::new(CliqueBin::new(config(), graph())),
        };
        for p in &stream[..30] {
            fresh.offer(p);
        }
        for p in &stream[30..] {
            assert_eq!(
                restored.offer(p).is_emitted(),
                fresh.offer(p).is_emitted(),
                "{name}: decision diverged at post {}",
                p.id
            );
        }
        assert_eq!(
            restored.metrics().posts_emitted,
            fresh.metrics().posts_emitted
        );
    }
}

/// Legacy (pre-FHSNAP04) multi checkpoints — position-ordered engine blobs
/// with no embedded subscription table — restore into a freshly built
/// strategy and continue decision-identically.
#[test]
fn legacy_multi_checkpoints_restore_and_continue() {
    let stream = posts();
    let cases: [(&str, MultiFactory); 2] = [
        ("fhckpt_legacy_s_unibin.bin", || {
            Box::new(SharedMulti::new(
                AlgorithmKind::UniBin,
                config(),
                &UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]),
                subscriptions(),
            ))
        }),
        ("fhckpt_legacy_m_unibin.bin", || {
            Box::new(IndependentMulti::new(
                AlgorithmKind::UniBin,
                config(),
                &UndirectedGraph::from_edges(6, [(0, 1), (0, 5), (3, 4)]),
                subscriptions(),
            ))
        }),
    ];
    for (name, build) in cases {
        let bytes = fixture(name);
        let mut restored = build();
        let manifest = restore_multi_from_slice(&bytes, restored.as_mut())
            .unwrap_or_else(|e| panic!("{name}: legacy restore failed: {e}"));
        assert_eq!(manifest.generation, 5, "{name}");
        // Pre-churn checkpoints carry no ledger: everything starts at zero.
        assert_eq!(restored.churn_stats().ops_total(), 0, "{name}");

        let mut fresh = build();
        for p in &stream[..30] {
            fresh.offer(p);
        }
        for p in &stream[30..] {
            assert_eq!(
                restored.offer(p).delivered_to,
                fresh.offer(p).delivered_to,
                "{name}: delivery diverged at post {}",
                p.id
            );
        }
        // Churn still works on a legacy-restored strategy.
        restored.subscribe(2, 4).unwrap();
        assert_eq!(restored.churn_stats().subscribes, 1, "{name}");
    }
}

/// FHSNAP04 snapshots captured *before* the approximate-memory release (no
/// memory-mode sentinel in the config header) restore into
/// [`MemoryMode::Exact`] and continue decision-identically — the typed
/// `MemoryMode` API must not orphan any deployed exact snapshot.
#[test]
fn fhsnap04_pre_approx_snapshots_restore_into_exact_mode() {
    let stream = posts();
    for kind in AlgorithmKind::ALL {
        let name = format!("fhsnap04_exact_{}.bin", kind.to_string().to_lowercase());
        let bytes = fixture(&name);
        let mut restored: Box<dyn Diversifier> = match kind {
            AlgorithmKind::UniBin => {
                Box::new(restore_unibin(&mut &bytes[..], graph()).expect("restore FHSNAP04"))
            }
            AlgorithmKind::NeighborBin => {
                Box::new(restore_neighborbin(&mut &bytes[..], graph()).expect("restore FHSNAP04"))
            }
            AlgorithmKind::CliqueBin => {
                let cover = Arc::new(greedy_clique_cover(&graph()));
                Box::new(
                    restore_cliquebin(&mut &bytes[..], graph(), cover).expect("restore FHSNAP04"),
                )
            }
        };
        assert_eq!(
            restored.config().memory,
            MemoryMode::Exact,
            "{name}: pre-approx snapshot must restore as exact mode"
        );
        assert_eq!(restored.metrics().posts_processed, 30, "{name}");

        let mut fresh: Box<dyn Diversifier> = match kind {
            AlgorithmKind::UniBin => Box::new(UniBin::new(config(), graph())),
            AlgorithmKind::NeighborBin => Box::new(NeighborBin::new(config(), graph())),
            AlgorithmKind::CliqueBin => Box::new(CliqueBin::new(config(), graph())),
        };
        for p in &stream[..30] {
            fresh.offer(p);
        }
        for p in &stream[30..] {
            assert_eq!(
                restored.offer(p).is_emitted(),
                fresh.offer(p).is_emitted(),
                "{name}: decision diverged at post {}",
                p.id
            );
        }
    }
}

/// The current exact-mode writer is byte-identical to the pre-approx
/// FHSNAP04 writer: replaying the fixture recipe through today's engines
/// reproduces the committed fixture bytes exactly. This is what lets the
/// memory-mode sentinel claim "exact snapshots unchanged" — any layout
/// drift (sentinel leaking into exact mode, reordered fields) fails here.
#[test]
fn current_exact_writer_matches_pre_approx_fixture_bytes() {
    let stream = posts();
    for kind in AlgorithmKind::ALL {
        let name = format!("fhsnap04_exact_{}.bin", kind.to_string().to_lowercase());
        let expected = fixture(&name);
        let mut buf = Vec::new();
        match kind {
            AlgorithmKind::UniBin => {
                let mut engine = UniBin::new(config(), graph());
                for p in &stream[..30] {
                    engine.offer(p);
                }
                snapshot_unibin(&engine, &mut buf).unwrap();
            }
            AlgorithmKind::NeighborBin => {
                let mut engine = NeighborBin::new(config(), graph());
                for p in &stream[..30] {
                    engine.offer(p);
                }
                snapshot_neighborbin(&engine, &mut buf).unwrap();
            }
            AlgorithmKind::CliqueBin => {
                let mut engine = CliqueBin::new(config(), graph());
                for p in &stream[..30] {
                    engine.offer(p);
                }
                snapshot_cliquebin(&engine, &mut buf).unwrap();
            }
        }
        assert_eq!(
            buf, expected,
            "{name}: exact-mode snapshot bytes drifted from the pre-approx writer"
        );
    }
}
