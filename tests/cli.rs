//! End-to-end tests of the `firehose` CLI: generate → build-graph → cover →
//! run → explain over real files in a temp directory.

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_firehose");

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("firehose_cli_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run_ok(args: &[&str]) -> (String, String) {
    let output = Command::new(BIN).args(args).output().expect("spawn CLI");
    assert!(
        output.status.success(),
        "firehose {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn run_err(args: &[&str]) -> String {
    let output = Command::new(BIN).args(args).output().expect("spawn CLI");
    assert!(
        !output.status.success(),
        "firehose {args:?} unexpectedly succeeded"
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn full_pipeline() {
    let dir = TempDir::new("pipeline");
    let posts = dir.path("posts.tsv");
    let follower = dir.path("follower.fhf");
    let graph = dir.path("sim.fhg");
    let cover = dir.path("cover.fhc");
    let out = dir.path("diversified.tsv");

    let (_, err) = run_ok(&[
        "generate",
        "--authors",
        "300",
        "--hours",
        "3",
        "--seed",
        "7",
        "--out-posts",
        &posts,
        "--out-follower",
        &follower,
    ]);
    assert!(err.contains("300 authors"), "{err}");

    let (_, err) = run_ok(&["build-graph", "--follower", &follower, "--out", &graph]);
    assert!(err.contains("similarity graph"), "{err}");

    let (_, err) = run_ok(&["cover", "--graph", &graph, "--out", &cover]);
    assert!(err.contains("clique edge cover"), "{err}");

    // Run all three algorithms; they must emit identical counts.
    let mut emitted_counts = Vec::new();
    for algorithm in ["unibin", "neighborbin", "cliquebin"] {
        let (_, err) = run_ok(&[
            "run",
            "--posts",
            &posts,
            "--graph",
            &graph,
            "--algorithm",
            algorithm,
            "--out",
            &out,
        ]);
        let line = err.lines().last().unwrap_or_default().to_string();
        let emitted: u64 = line
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(" of").next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable stats line: {line}"));
        emitted_counts.push(emitted);
        let diversified = std::fs::read_to_string(&out).expect("output written");
        assert_eq!(diversified.lines().count() as u64, emitted);
    }
    assert_eq!(emitted_counts[0], emitted_counts[1]);
    assert_eq!(emitted_counts[0], emitted_counts[2]);

    // Quality: the run output must be a valid diversification.
    let (stdout, _) = run_ok(&[
        "quality",
        "--posts",
        &posts,
        "--delivered",
        &out,
        "--graph",
        &graph,
    ]);
    assert!(
        stdout.contains("coverage violations (lost posts): 0"),
        "{stdout}"
    );
    assert!(stdout.contains("VALID diversification"), "{stdout}");

    // Explain a pair.
    let (stdout, _) = run_ok(&[
        "explain", "--posts", &posts, "--graph", &graph, "--first", "0", "--second", "1",
    ]);
    assert!(stdout.contains("verdict:"), "{stdout}");
    assert!(stdout.contains("content"), "{stdout}");
}

#[test]
fn helpful_errors() {
    let err = run_err(&["run", "--graph", "nowhere.fhg"]);
    assert!(err.contains("missing required --posts"), "{err}");

    let err = run_err(&["frobnicate"]);
    assert!(err.contains("unknown command"), "{err}");

    let err = run_err(&["run", "--posts"]);
    assert!(err.contains("flag without value"), "{err}");

    let dir = TempDir::new("errors");
    let missing = dir.path("missing.tsv");
    let err = run_err(&["run", "--posts", &missing, "--graph", &missing]);
    assert!(err.contains("cannot open"), "{err}");
}

#[test]
fn run_rejects_mismatched_graph() {
    let dir = TempDir::new("mismatch");
    let posts = dir.path("posts.tsv");
    let follower = dir.path("follower.fhf");
    let graph = dir.path("sim.fhg");
    run_ok(&[
        "generate",
        "--authors",
        "300",
        "--hours",
        "1",
        "--out-posts",
        &posts,
        "--out-follower",
        &follower,
    ]);
    run_ok(&["build-graph", "--follower", &follower, "--out", &graph]);

    // A corpus referencing authors beyond the graph must be rejected.
    std::fs::write(&posts, "1\t9999\t0\tsome text here\n").unwrap();
    let err = run_err(&["run", "--posts", &posts, "--graph", &graph]);
    assert!(err.contains("author 9999"), "{err}");
}

#[test]
fn help_prints_usage() {
    let (stdout, _) = run_ok(&["help"]);
    assert!(stdout.contains("usage: firehose"));
    assert!(stdout.contains("build-graph"));
}
