//! `firehose` — command-line front end for the diversification pipeline.
//!
//! ```text
//! firehose generate    --authors 2000 --hours 8 --out-posts posts.tsv --out-follower follower.fhf
//! firehose build-graph --follower follower.fhf --lambda-a 0.7 --out similarity.fhg
//! firehose cover       --graph similarity.fhg --out cover.fhc
//! firehose run         --posts posts.tsv --graph similarity.fhg --algorithm cliquebin \
//!                      --lambda-c 18 --lambda-t-mins 30 --out diversified.tsv
//! firehose explain     --posts posts.tsv --graph similarity.fhg --first 12 --second 40
//! ```
//!
//! Files use the formats of `firehose_graph::io` (graphs, covers) and
//! `firehose_stream::corpus` (posts TSV). `run` works on any corpus a user
//! brings, not just generated ones.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;
use std::sync::Arc;

use firehose::core::checkpoint::{CheckpointManager, CheckpointPolicy};
use firehose::core::engine::{build_engine, AlgorithmKind, Diversifier};
use firehose::core::multi::Subscriptions;
use firehose::core::quality;
use firehose::core::service::{
    read_churn_trace, FirehoseService, OverloadConfig, OverloadPolicy, RateLimitConfig,
    StrategyKind, TracedOp,
};
use firehose::core::{
    explain, restore_latest_valid, EngineConfig, MemoryMode, RestoreError, Thresholds,
};
use firehose::datagen::{
    generate_churn_trace, generate_subscriptions, ChurnGenConfig, SocialGenConfig,
    SubscriptionGenConfig, SyntheticSocialGraph, Workload, WorkloadConfig,
};
use firehose::graph::io as graph_io;
use firehose::graph::{build_similarity_graph_parallel, greedy_clique_cover, UndirectedGraph};
use firehose::net::{Server, ServerConfig};
use firehose::obs::Registry;
use firehose::simhash::SimHashOptions;
use firehose::stream::{corpus, guard_stream, hours, minutes, GuardConfig, GuardPolicy, Post};

/// Minimal `--flag value` argument map (every flag takes exactly one value).
struct Args {
    command: String,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(mut argv: std::env::Args) -> Result<Self, String> {
        let _program = argv.next();
        let command = argv.next().ok_or_else(usage)?;
        let rest: Vec<String> = argv.collect();
        if !rest.len().is_multiple_of(2) {
            return Err(format!("flag without value in {rest:?}"));
        }
        let mut flags = Vec::new();
        for pair in rest.chunks_exact(2) {
            let flag = pair[0]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", pair[0]))?;
            flags.push((flag.to_string(), pair[1].clone()));
        }
        Ok(Self { command, flags })
    }

    fn get(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, flag: &str) -> Result<&str, String> {
        self.get(flag)
            .ok_or_else(|| format!("missing required --{flag}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad --{flag} {v:?}: {e}")),
        }
    }
}

fn usage() -> String {
    "usage: firehose <generate|build-graph|cover|run|serve|explain|quality> [--flag value]...\n\
     \n\
     generate     --out-posts FILE --out-follower FILE [--authors N] [--hours H] [--seed S]\n\
     \t[--users N --out-subscriptions FILE] [--churn-ops N --out-churn FILE]\n\
     build-graph  --follower FILE --out FILE [--lambda-a F] [--threads N]\n\
     cover        --graph FILE --out FILE\n\
     run          --posts FILE --graph FILE [--algorithm unibin|neighborbin|cliquebin]\n\
     \t[--lambda-c N] [--lambda-t-mins N] [--lambda-a F] [--memory exact|approx[:BUDGET]]\n\
     \t[--out FILE] [--quiet true]\n\
     \t[--checkpoint-dir DIR] [--checkpoint-every OFFERS] [--checkpoint-secs S]\n\
     \t[--guard strict|clamp|reorder] [--reorder-bound-ms N]\n\
     \t[--subscriptions FILE [--strategy independent|shared|parallel[:N]|sharded[:N]]\n\
     \t[--shards N] [--churn-trace FILE]\n\
     \t[--overload block|shed|reject[:CAPACITY]] [--rate-limit POSTS_PER_SEC]]\n\
     serve        --graph FILE --subscriptions FILE [--listen ADDR:PORT]\n\
     \t[--algorithm ...] [--lambda-c N] [--lambda-t-mins N] [--lambda-a F]\n\
     \t[--memory exact|approx[:BUDGET]]\n\
     \t[--strategy independent|shared|parallel[:N]|sharded[:N]] [--shards N]\n\
     \t[--guard strict|clamp|reorder] [--reorder-bound-ms N]\n\
     \t[--overload block|shed|reject[:CAPACITY]] [--rate-limit POSTS_PER_SEC]\n\
     \t[--checkpoint-dir DIR] [--max-conns N] [--stream-buffer N]\n\
     \t[--idle-secs S] [--allow-shutdown true]\n\
     explain      --posts FILE --graph FILE --first POST_ID --second POST_ID\n\
     \t[--lambda-c N] [--lambda-t-mins N] [--lambda-a F]\n\
     quality      --posts FILE --delivered FILE --graph FILE\n\
     \t[--lambda-c N] [--lambda-t-mins N] [--lambda-a F]"
        .to_string()
}

fn thresholds_from(args: &Args) -> Result<Thresholds, String> {
    let lambda_c: u32 = args.parse_or("lambda-c", 18)?;
    let lambda_t_mins: u64 = args.parse_or("lambda-t-mins", 30)?;
    let lambda_a: f64 = args.parse_or("lambda-a", 0.7)?;
    Thresholds::new(lambda_c, minutes(lambda_t_mins), lambda_a).map_err(|e| e.to_string())
}

/// Full engine configuration: thresholds plus the coverage memory mode from
/// `--memory exact|approx[:BUDGET]` (default exact).
fn engine_config_from(args: &Args) -> Result<EngineConfig, String> {
    let thresholds = thresholds_from(args)?;
    let memory: MemoryMode = match args.get("memory") {
        Some(spec) => spec.parse().map_err(|e| format!("{e}"))?,
        None => MemoryMode::Exact,
    };
    Ok(EngineConfig::builder(thresholds).memory(memory).build())
}

fn open_reader(path: &str) -> Result<BufReader<File>, String> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot open {path}: {e}"))
}

fn create_writer(path: &str) -> Result<BufWriter<File>, String> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| format!("cannot create {path}: {e}"))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let authors: usize = args.parse_or("authors", 2_000)?;
    let hours_n: u64 = args.parse_or("hours", 8)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let out_posts = args.require("out-posts")?;
    let out_follower = args.require("out-follower")?;

    // The calibrated windows assume a ring much larger than the wide window;
    // below ~3000 authors switch to the proportionally smaller test-scale
    // geometry so the similarity graph keeps a sane density.
    let social_config = if authors >= 3_000 {
        SocialGenConfig::paper_scale()
    } else {
        SocialGenConfig::test_scale()
    }
    .with_authors(authors)
    .with_seed(seed);
    let social = SyntheticSocialGraph::generate(social_config);
    let workload = Workload::generate(
        &social,
        WorkloadConfig {
            duration: hours(hours_n),
            seed,
            ..Default::default()
        },
    );

    corpus::write_posts(&workload.posts, &mut create_writer(out_posts)?)
        .map_err(|e| e.to_string())?;
    graph_io::write_follower(&social.graph, &mut create_writer(out_follower)?)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} posts from {} authors to {out_posts}; follower graph ({} follows) to {out_follower}",
        workload.len(),
        social.author_count(),
        social.graph.edge_count()
    );

    // Optional M-SPSD inputs: a subscription table and a churn trace
    // replayable with `run --subscriptions ... --churn-trace ...`.
    if let Some(out_subs) = args.get("out-subscriptions") {
        let users: usize = args.parse_or("users", authors / 2)?;
        let sets = generate_subscriptions(
            authors,
            users,
            SubscriptionGenConfig {
                seed,
                ..Default::default()
            },
        );
        let mut w = create_writer(out_subs)?;
        write_subscription_sets(&sets, &mut w).map_err(|e| e.to_string())?;
        eprintln!("wrote {users} subscription sets to {out_subs}");

        if let Some(out_churn) = args.get("out-churn") {
            let ops: usize = args.parse_or("churn-ops", 100)?;
            let trace = generate_churn_trace(
                authors,
                &sets,
                workload.len() as u64,
                ChurnGenConfig {
                    seed,
                    ops,
                    ..Default::default()
                },
            );
            let mut w = create_writer(out_churn)?;
            for entry in &trace {
                writeln!(w, "{entry}").map_err(|e| e.to_string())?;
            }
            eprintln!("wrote {ops} churn ops to {out_churn}");
        }
    } else if args.get("out-churn").is_some() {
        return Err("--out-churn requires --out-subscriptions".into());
    }
    Ok(())
}

/// Subscription-sets text format: one user per line, comma-separated author
/// ids (`-` for an empty set); `#` comments and blank lines ignored.
fn write_subscription_sets(
    sets: &[Vec<firehose::stream::AuthorId>],
    w: &mut impl Write,
) -> std::io::Result<()> {
    for set in sets {
        if set.is_empty() {
            writeln!(w, "-")?;
        } else {
            let line: Vec<String> = set.iter().map(|a| a.to_string()).collect();
            writeln!(w, "{}", line.join(","))?;
        }
    }
    Ok(())
}

fn read_subscription_sets(path: &str) -> Result<Vec<Vec<firehose::stream::AuthorId>>, String> {
    use std::io::BufRead;
    let mut sets = Vec::new();
    for (lineno, line) in open_reader(path)?.lines().enumerate() {
        let line = line.map_err(|e| format!("{path} line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "-" {
            sets.push(Vec::new());
            continue;
        }
        let set = line
            .split(',')
            .map(|a| {
                a.trim()
                    .parse()
                    .map_err(|e| format!("{path} line {}: bad author {a:?}: {e}", lineno + 1))
            })
            .collect::<Result<_, _>>()?;
        sets.push(set);
    }
    Ok(sets)
}

fn cmd_build_graph(args: &Args) -> Result<(), String> {
    let follower_path = args.require("follower")?;
    let out = args.require("out")?;
    let lambda_a: f64 = args.parse_or("lambda-a", 0.7)?;
    let threads: usize = args.parse_or(
        "threads",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    )?;

    let follower =
        graph_io::read_follower(&mut open_reader(follower_path)?).map_err(|e| e.to_string())?;
    let graph = build_similarity_graph_parallel(&follower, lambda_a, threads);
    graph_io::write_undirected(&graph, &mut create_writer(out)?).map_err(|e| e.to_string())?;
    eprintln!(
        "similarity graph at λa={lambda_a}: {} authors, {} edges, avg degree {:.1} -> {out}",
        graph.node_count(),
        graph.edge_count(),
        graph.average_degree()
    );
    Ok(())
}

fn cmd_cover(args: &Args) -> Result<(), String> {
    let graph_path = args.require("graph")?;
    let out = args.require("out")?;
    let graph =
        graph_io::read_undirected(&mut open_reader(graph_path)?).map_err(|e| e.to_string())?;
    let cover = greedy_clique_cover(&graph);
    graph_io::write_cover(&cover, graph.node_count(), &mut create_writer(out)?)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "clique edge cover: {} cliques, avg size {:.1}, {:.1} cliques/author -> {out}",
        cover.count(),
        cover.avg_clique_size(),
        cover.avg_cliques_per_member()
    );
    Ok(())
}

fn load_graph_for_posts(graph_path: &str, posts: &[Post]) -> Result<Arc<UndirectedGraph>, String> {
    let graph =
        graph_io::read_undirected(&mut open_reader(graph_path)?).map_err(|e| e.to_string())?;
    if let Some(max_author) = posts.iter().map(|p| p.author).max() {
        if max_author as usize >= graph.node_count() {
            return Err(format!(
                "posts reference author {max_author} but the graph has only {} authors",
                graph.node_count()
            ));
        }
    }
    Ok(Arc::new(graph))
}

fn algorithm_from(args: &Args) -> Result<AlgorithmKind, String> {
    match args.get("algorithm").unwrap_or("unibin") {
        "unibin" => Ok(AlgorithmKind::UniBin),
        "neighborbin" => Ok(AlgorithmKind::NeighborBin),
        "cliquebin" => Ok(AlgorithmKind::CliqueBin),
        other => Err(format!("unknown --algorithm {other:?}")),
    }
}

fn guard_config_from(args: &Args) -> Result<Option<GuardConfig>, String> {
    let Some(policy) = args.get("guard") else {
        return Ok(None);
    };
    let bound_ms: u64 = args.parse_or("reorder-bound-ms", 0)?;
    let policy = match policy {
        "strict" => GuardPolicy::Strict,
        "clamp" => GuardPolicy::Clamp,
        "reorder" => GuardPolicy::Reorder { bound_ms },
        other => return Err(format!("unknown --guard {other:?}")),
    };
    Ok(Some(GuardConfig::new(policy)))
}

/// `--overload block|shed|reject[:CAPACITY]` — admission policy for the
/// service ingest queue, with an optional queue capacity suffix.
fn overload_config_from(args: &Args) -> Result<Option<OverloadConfig>, String> {
    let Some(spec) = args.get("overload") else {
        return Ok(None);
    };
    let (policy, capacity) = match spec.split_once(':') {
        Some((p, cap)) => {
            let capacity: usize = cap
                .parse()
                .map_err(|e| format!("bad --overload capacity {cap:?}: {e}"))?;
            if capacity == 0 {
                return Err("--overload capacity must be at least 1".into());
            }
            (p, capacity)
        }
        None => (spec, OverloadConfig::default().capacity),
    };
    let policy: OverloadPolicy = policy
        .parse()
        .map_err(|e| format!("bad --overload {spec:?}: {e}"))?;
    Ok(Some(OverloadConfig { policy, capacity }))
}

fn checkpoint_policy_from(args: &Args) -> Result<CheckpointPolicy, String> {
    let every_offers: u64 =
        args.parse_or("checkpoint-every", CheckpointPolicy::default().every_offers)?;
    let secs: u64 = args.parse_or("checkpoint-secs", 5)?;
    Ok(CheckpointPolicy {
        every_offers,
        every_millis: (secs > 0).then_some(secs * 1_000),
        keep: 3,
    })
}

/// `run --subscriptions ...`: the multi-user service path. The whole
/// pipeline — guard, strategy, checkpoints, live churn — runs behind one
/// [`FirehoseService`]; `--churn-trace` replays subscription churn at the
/// recorded stream positions (op positions count *input* posts fed to the
/// service).
fn cmd_run_multi(args: &Args) -> Result<(), String> {
    let posts_path = args.require("posts")?;
    let graph_path = args.require("graph")?;
    let subs_path = args.require("subscriptions")?;
    let algorithm = algorithm_from(args)?;
    let engine_config = engine_config_from(args)?;
    let quiet: bool = args.parse_or("quiet", false)?;
    let mut strategy: StrategyKind = args.get("strategy").unwrap_or("shared").parse()?;
    if let Some(n) = args.get("shards") {
        // `--shards N` is shorthand for `--strategy sharded:N`.
        strategy = StrategyKind::Sharded {
            shards: n.parse().map_err(|e| format!("bad --shards {n:?}: {e}"))?,
        };
    }

    let posts = corpus::read_posts(&mut open_reader(posts_path)?).map_err(|e| e.to_string())?;
    let graph = load_graph_for_posts(graph_path, &posts)?;
    let sets = read_subscription_sets(subs_path)?;
    let user_count = sets.len();
    let subscriptions =
        Subscriptions::new(graph.node_count(), sets).map_err(|e| format!("{subs_path}: {e}"))?;

    let mut builder = FirehoseService::builder(&graph, subscriptions)
        .strategy(strategy)
        .algorithm(algorithm)
        .engine_config(engine_config);
    if let Some(guard) = guard_config_from(args)? {
        builder = builder.guard(guard);
    }
    if let Some(overload) = overload_config_from(args)? {
        builder = builder.overload(overload);
    }
    if let Some(pps) = args.get("rate-limit") {
        let pps: f64 = pps
            .parse()
            .map_err(|e| format!("bad --rate-limit {pps:?}: {e}"))?;
        if !pps.is_finite() || pps <= 0.0 {
            return Err("--rate-limit must be a positive posts-per-second rate".into());
        }
        builder = builder.rate_limit(RateLimitConfig::per_author(pps));
    }
    if let Some(dir) = args.get("checkpoint-dir") {
        builder = builder.checkpoints(dir, checkpoint_policy_from(args)?);
    }
    let mut service = builder.build().map_err(|e| e.to_string())?;

    let trace: Vec<TracedOp> = match args.get("churn-trace") {
        Some(path) => read_churn_trace(open_reader(path)?).map_err(|e| format!("{path}: {e}"))?,
        None => Vec::new(),
    };
    let mut next_op = 0;

    let started = std::time::Instant::now();
    let mut emitted: Vec<Post> = Vec::new();
    let mut deliveries: u64 = 0;
    for (i, post) in posts.iter().enumerate() {
        while next_op < trace.len() && trace[next_op].after_posts <= i as u64 {
            let op = &trace[next_op].op;
            service
                .apply(op)
                .map_err(|e| format!("churn trace op {}: {e}", trace[next_op]))?;
            next_op += 1;
        }
        service
            .process(post.clone(), |post, decision| {
                if !decision.delivered_to.is_empty() {
                    deliveries += decision.delivered_to.len() as u64;
                    emitted.push(post.clone());
                }
            })
            .map_err(|e| format!("service error: {e}"))?;
    }
    for entry in &trace[next_op..] {
        service
            .apply(&entry.op)
            .map_err(|e| format!("churn trace op {entry}: {e}"))?;
    }
    service
        .flush(|post, decision| {
            if !decision.delivered_to.is_empty() {
                deliveries += decision.delivered_to.len() as u64;
                emitted.push(post.clone());
            }
        })
        .map_err(|e| format!("service error: {e}"))?;
    let elapsed = started.elapsed();

    if let Some(stats) = service.guard_stats() {
        eprintln!(
            "ingest guard: {} admitted, {} quarantined, {} timestamps clamped, {} reordered",
            stats.admitted,
            stats.quarantined_total(),
            stats.clamped_timestamps,
            stats.reordered
        );
    }
    let o = service.overload_stats();
    if o.shed + o.rejected + o.rate_limited > 0 {
        eprintln!(
            "overload: {} shed, {} rejected, {} rate limited",
            o.shed, o.rejected, o.rate_limited
        );
    }
    let r = service.resilience_stats();
    if r.restarts > 0 || r.recoveries > 0 {
        eprintln!(
            "resilience: {} shard restarts, {} recoveries, {} offers lost in flight, {} posts lost, {} posts replayed",
            r.restarts, r.recoveries, r.lost_offers, r.lost_posts, r.replayed_posts
        );
    }
    if let Some(out) = args.get("out") {
        corpus::write_posts(&emitted, &mut create_writer(out)?).map_err(|e| e.to_string())?;
    } else if !quiet {
        let stdout = std::io::stdout();
        let mut lock = BufWriter::new(stdout.lock());
        for post in &emitted {
            writeln!(
                lock,
                "{}\t{}\t{}\t{}",
                post.id, post.author, post.timestamp, post.text
            )
            .map_err(|e| e.to_string())?;
        }
    }

    let c = service.churn_stats();
    if c.ops_total() > 0 {
        eprintln!(
            "churn: {} ops ({} subscribes, {} unsubscribes, {} users added, {} removed); {} engines spawned, {} retired, {} warm starts",
            c.ops_total(),
            c.subscribes,
            c.unsubscribes,
            c.users_added,
            c.users_removed,
            c.engines_spawned,
            c.engines_retired,
            c.warm_starts
        );
    }
    let m = service.metrics();
    eprintln!(
        "{}: {} posts -> {} unique deliveries to {} users ({} total) in {:.1?}; {} engine offers, {} comparisons, peak {} records",
        service.name(),
        posts.len(),
        emitted.len(),
        user_count,
        deliveries,
        elapsed,
        m.posts_processed,
        m.comparisons,
        m.peak_copies
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    if args.get("subscriptions").is_some() {
        return cmd_run_multi(args);
    }
    let posts_path = args.require("posts")?;
    let graph_path = args.require("graph")?;
    let algorithm = algorithm_from(args)?;
    let engine_config = engine_config_from(args)?;
    let quiet: bool = args.parse_or("quiet", false)?;

    let mut posts = corpus::read_posts(&mut open_reader(posts_path)?).map_err(|e| e.to_string())?;
    let graph = load_graph_for_posts(graph_path, &posts)?;

    // Hostile-input mode: sanitize through the ingest guard first, so the
    // engine (and any checkpoint/replay) sees the deterministic admitted
    // stream the algorithms assume (time-ordered, unique ids).
    if let Some(cfg) = guard_config_from(args)? {
        let cfg = cfg.with_author_count(graph.node_count() as u32);
        let (admitted, stats) = guard_stream(cfg, posts);
        eprintln!(
            "ingest guard: {} admitted, {} quarantined ({}), {} timestamps clamped, {} reordered",
            stats.admitted,
            stats.quarantined_total(),
            stats
                .counts()
                .map(|(reason, n)| format!("{}: {n}", reason.as_str()))
                .collect::<Vec<_>>()
                .join(", "),
            stats.clamped_timestamps,
            stats.reordered
        );
        posts = admitted;
    }

    // Crash-safe mode: restore the newest intact checkpoint generation (if
    // any), then auto-checkpoint at the configured cadence while running.
    let mut manager = None;
    let mut resume_at = 0usize;
    let mut engine = match args.get("checkpoint-dir") {
        None => build_engine(algorithm, engine_config, graph),
        Some(dir) => {
            let policy = checkpoint_policy_from(args)?;
            let mut mgr = CheckpointManager::new(dir, policy).map_err(|e| e.to_string())?;
            let engine = match restore_latest_valid(
                std::path::Path::new(dir),
                algorithm,
                Arc::clone(&graph),
                None,
            ) {
                Ok(restored) => {
                    for s in &restored.skipped {
                        eprintln!(
                            "warning: skipped corrupt checkpoint generation {}: {}",
                            s.generation, s.error
                        );
                    }
                    resume_at = (restored.manifest.posts_processed as usize).min(posts.len());
                    mgr.note_restored(&restored.manifest);
                    eprintln!(
                        "resumed from checkpoint generation {} ({} posts already processed)",
                        restored.manifest.generation, restored.manifest.posts_processed
                    );
                    restored.engine
                }
                Err(RestoreError::NoValidCheckpoint { skipped }) => {
                    for s in &skipped {
                        eprintln!(
                            "warning: skipped corrupt checkpoint generation {}: {}",
                            s.generation, s.error
                        );
                    }
                    build_engine(algorithm, engine_config, graph)
                }
                Err(RestoreError::Io(e)) => {
                    return Err(format!("cannot read checkpoint directory {dir}: {e}"))
                }
            };
            manager = Some(mgr);
            engine
        }
    };

    let started = std::time::Instant::now();
    let mut emitted: Vec<&Post> = Vec::new();
    for post in &posts[resume_at..] {
        if engine.offer(post).is_emitted() {
            emitted.push(post);
        }
        if let Some(mgr) = &mut manager {
            mgr.maybe_save(engine.as_ref())
                .map_err(|e| format!("checkpoint failed: {e}"))?;
        }
    }
    if let Some(mgr) = &mut manager {
        // Final checkpoint so a re-run resumes at end-of-stream.
        if posts.len() > resume_at {
            mgr.save(engine.as_ref())
                .map_err(|e| format!("checkpoint failed: {e}"))?;
        }
    }
    let elapsed = started.elapsed();

    if let Some(out) = args.get("out") {
        let owned: Vec<Post> = emitted.iter().map(|&p| p.clone()).collect();
        corpus::write_posts(&owned, &mut create_writer(out)?).map_err(|e| e.to_string())?;
    } else if !quiet {
        let stdout = std::io::stdout();
        let mut lock = BufWriter::new(stdout.lock());
        for post in &emitted {
            writeln!(
                lock,
                "{}\t{}\t{}\t{}",
                post.id, post.author, post.timestamp, post.text
            )
            .map_err(|e| e.to_string())?;
        }
    }

    let m = engine.metrics();
    eprintln!(
        "{}: {} of {} posts emitted ({:.1}% pruned) in {:.1?}; {} comparisons, {} insertions, peak {} records",
        engine.name(),
        m.posts_emitted,
        m.posts_processed,
        (1.0 - m.emit_ratio()) * 100.0,
        elapsed,
        m.comparisons,
        m.insertions,
        m.peak_copies
    );
    Ok(())
}

/// `serve`: put the multi-user service behind the TCP/HTTP front end. The
/// service is configured exactly like `run --subscriptions ...` (same
/// strategy/guard/overload/checkpoint flags), so decisions over the wire are
/// byte-identical to the in-process path on the same trace.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let graph_path = args.require("graph")?;
    let subs_path = args.require("subscriptions")?;
    let listen = args.get("listen").unwrap_or("127.0.0.1:7878");
    let algorithm = algorithm_from(args)?;
    let engine_config = engine_config_from(args)?;
    let mut strategy: StrategyKind = args.get("strategy").unwrap_or("shared").parse()?;
    if let Some(n) = args.get("shards") {
        strategy = StrategyKind::Sharded {
            shards: n.parse().map_err(|e| format!("bad --shards {n:?}: {e}"))?,
        };
    }

    let graph =
        graph_io::read_undirected(&mut open_reader(graph_path)?).map_err(|e| e.to_string())?;
    let graph = Arc::new(graph);
    let sets = read_subscription_sets(subs_path)?;
    let subscriptions =
        Subscriptions::new(graph.node_count(), sets).map_err(|e| format!("{subs_path}: {e}"))?;

    let registry = Arc::new(Registry::new());
    let mut builder = FirehoseService::builder(&graph, subscriptions)
        .strategy(strategy)
        .algorithm(algorithm)
        .engine_config(engine_config);
    if let Some(guard) = guard_config_from(args)? {
        builder = builder.guard(guard);
    }
    if let Some(overload) = overload_config_from(args)? {
        builder = builder.overload(overload);
    }
    if let Some(pps) = args.get("rate-limit") {
        let pps: f64 = pps
            .parse()
            .map_err(|e| format!("bad --rate-limit {pps:?}: {e}"))?;
        if !pps.is_finite() || pps <= 0.0 {
            return Err("--rate-limit must be a positive posts-per-second rate".into());
        }
        builder = builder.rate_limit(RateLimitConfig::per_author(pps));
    }
    if let Some(dir) = args.get("checkpoint-dir") {
        builder = builder.checkpoints(dir, checkpoint_policy_from(args)?);
    }
    let service = builder.build().map_err(|e| e.to_string())?;

    let config = ServerConfig {
        max_connections: args.parse_or("max-conns", ServerConfig::default().max_connections)?,
        stream_buffer: args.parse_or("stream-buffer", ServerConfig::default().stream_buffer)?,
        idle_timeout: std::time::Duration::from_secs(args.parse_or("idle-secs", 60u64)?),
        allow_shutdown: args.parse_or("allow-shutdown", false)?,
        ..ServerConfig::default()
    };
    let server = Server::bind(listen, config).map_err(|e| e.to_string())?;
    eprintln!(
        "serving {} ({} users) on http://{}  endpoints: POST /ingest /churn [/shutdown], GET /stream/<user> /metrics /healthz",
        service.name(),
        service.subscriptions().user_count(),
        server.local_addr()
    );
    let report = server.serve(service, registry).map_err(|e| e.to_string())?;
    eprintln!(
        "served {} requests over {} connections ({} rejected); {} posts in, {} deliveries streamed ({} dropped), {} protocol errors",
        report.requests,
        report.connections_accepted,
        report.connections_rejected,
        report.posts_ingested,
        report.deliveries_streamed,
        report.deliveries_dropped,
        report.protocol_errors
    );
    Ok(())
}

fn cmd_quality(args: &Args) -> Result<(), String> {
    let posts_path = args.require("posts")?;
    let delivered_path = args.require("delivered")?;
    let graph_path = args.require("graph")?;
    let thresholds = thresholds_from(args)?;

    let posts = corpus::read_posts(&mut open_reader(posts_path)?).map_err(|e| e.to_string())?;
    let delivered =
        corpus::read_posts(&mut open_reader(delivered_path)?).map_err(|e| e.to_string())?;
    let graph = load_graph_for_posts(graph_path, &posts)?;

    let delivered_ids: std::collections::HashSet<u64> = delivered.iter().map(|p| p.id).collect();
    for post in &delivered {
        if !posts.iter().any(|p| p.id == post.id) {
            return Err(format!(
                "delivered post {} is not in the original stream",
                post.id
            ));
        }
    }
    let records: Vec<firehose::stream::PostRecord> = posts
        .iter()
        .map(|p| p.to_record(SimHashOptions::paper()))
        .collect();
    let decisions: Vec<bool> = posts
        .iter()
        .map(|p| delivered_ids.contains(&p.id))
        .collect();
    let report = quality::evaluate(&records, &decisions, &thresholds, &graph);

    println!(
        "stream: {} posts; delivered: {} ({:.1}%)",
        report.total,
        report.delivered,
        report.delivery_ratio() * 100.0
    );
    println!(
        "coverage violations (lost posts): {}",
        report.coverage_violations
    );
    println!(
        "residual redundancy (duplicate deliveries): {}",
        report.residual_redundancy
    );
    println!(
        "verdict: {}",
        if report.is_valid_diversification() {
            "VALID diversification (Problem 1 requirements met)"
        } else {
            "NOT a valid diversification"
        }
    );
    Ok(())
}

fn cmd_explain(args: &Args) -> Result<(), String> {
    let posts_path = args.require("posts")?;
    let graph_path = args.require("graph")?;
    let first: u64 = args
        .require("first")?
        .parse()
        .map_err(|e| format!("bad --first: {e}"))?;
    let second: u64 = args
        .require("second")?
        .parse()
        .map_err(|e| format!("bad --second: {e}"))?;
    let thresholds = thresholds_from(args)?;

    let posts = corpus::read_posts(&mut open_reader(posts_path)?).map_err(|e| e.to_string())?;
    let graph = load_graph_for_posts(graph_path, &posts)?;
    let find = |id: u64| {
        posts
            .iter()
            .find(|p| p.id == id)
            .ok_or_else(|| format!("post id {id} not found in {posts_path}"))
    };
    let (a, b) = (find(first)?, find(second)?);
    let (ra, rb) = (
        a.to_record(SimHashOptions::paper()),
        b.to_record(SimHashOptions::paper()),
    );
    let explanation = explain(&ra, &rb, &thresholds, &graph);

    println!(
        "post {first} (author {} @ {} ms): {}",
        a.author, a.timestamp, a.text
    );
    println!(
        "post {second} (author {} @ {} ms): {}",
        b.author, b.timestamp, b.text
    );
    println!("{explanation}");
    println!(
        "verdict: the posts {} cover each other{}",
        if explanation.covers { "DO" } else { "do NOT" },
        if explanation.covers {
            String::new()
        } else {
            format!(
                " (blocked by: {})",
                explanation.blocking_dimensions().join(", ")
            )
        }
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args()) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "generate" => cmd_generate(&args),
        "build-graph" => cmd_build_graph(&args),
        "cover" => cmd_cover(&args),
        "run" => cmd_run(&args),
        "serve" => cmd_serve(&args),
        "explain" => cmd_explain(&args),
        "quality" => cmd_quality(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
