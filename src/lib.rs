#![warn(missing_docs)]

//! # firehose
//!
//! A Rust reproduction of *Slowing the Firehose: Multi-Dimensional Diversity
//! on Social Post Streams* (Cheng, Chrobak, Hristidis — EDBT 2016): real-time
//! diversification of social post streams under simultaneous **content**
//! (SimHash), **time** (sliding window) and **author** (social-graph
//! similarity) coverage semantics.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! * [`core`] — the SPSD/M-SPSD engines (UniBin, NeighborBin, CliqueBin and
//!   their multi-user `M_*`/`S_*` variants), the Table 2 cost model and the
//!   Table 4 advisor;
//! * [`text`] — normalization, tokenization, TF-cosine;
//! * [`simhash`] — 64-bit fingerprints, Hamming utilities, the Manku
//!   permuted-table index;
//! * [`graph`] — follower graphs, author similarity, connected components,
//!   greedy clique edge covers;
//! * [`stream`] — the post model and λt-window bins;
//! * [`datagen`] — synthetic Twitter-like workloads and the surrogate user
//!   study;
//! * [`net`] — the zero-dependency TCP/HTTP front end serving ingest,
//!   per-user streams, churn, `/metrics` and `/healthz` over real sockets
//!   (`firehose serve`);
//! * [`obs`] — the dependency-free metrics registry behind `/metrics`.
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use firehose::core::{EngineConfig, Thresholds};
//! use firehose::core::engine::{Diversifier, UniBin};
//! use firehose::graph::UndirectedGraph;
//! use firehose::stream::{minutes, Post};
//! use std::sync::Arc;
//!
//! let graph = Arc::new(UndirectedGraph::from_edges(2, [(0, 1)]));
//! let config = EngineConfig::new(Thresholds::new(18, minutes(30), 0.7).unwrap());
//! let mut engine = UniBin::new(config, graph);
//!
//! let decision = engine.offer(&Post::new(1, 0, 0, "hello stream".into()));
//! assert!(decision.is_emitted());
//! ```

pub use firehose_core as core;
pub use firehose_datagen as datagen;
pub use firehose_graph as graph;
pub use firehose_net as net;
pub use firehose_obs as obs;
pub use firehose_simhash as simhash;
pub use firehose_stream as stream;
pub use firehose_text as text;

/// One-import surface for the common pipeline: everything in
/// [`firehose_core::prelude`] (engines, multi-user strategies, the
/// [`core::service::FirehoseService`] facade, checkpoints) plus the graph,
/// post and ingest-guard types they operate on.
///
/// ```
/// use firehose::prelude::*;
///
/// let graph = UndirectedGraph::from_edges(2, [(0, 1)]);
/// let subscriptions = Subscriptions::new(2, [vec![0, 1]]).unwrap();
/// let mut service = FirehoseService::builder(&graph, subscriptions)
///     .build()
///     .unwrap();
/// let seen = service.offer(&Post::new(1, 0, 0, "hello stream".into()));
/// assert_eq!(seen.delivered_to, [0]);
/// ```
pub mod prelude {
    pub use firehose_core::prelude::*;
    pub use firehose_graph::UndirectedGraph;
    pub use firehose_stream::{
        hours, minutes, AuthorId, GuardConfig, GuardPolicy, IngestGuard, Post, PostId, Timestamp,
    };
}
